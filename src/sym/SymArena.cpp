//===--- SymArena.cpp - Builder/owner of symbolic expressions -------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "sym/SymArena.h"

#include <unordered_set>

using namespace mix;

const SymExpr *SymArena::make(SymKind Kind, const Type *Ty, long long Value,
                              std::vector<const SymExpr *> Ops,
                              const MemNode *Mem) {
  ExprKey K{Kind, Ty, Value, Ops, Mem};
  auto It = InternedExprs.find(K);
  if (It != InternedExprs.end())
    return It->second;
  OwnedExprs.push_back(std::unique_ptr<SymExpr>(
      new SymExpr(Kind, Ty, Value, std::move(Ops), Mem)));
  const SymExpr *E = OwnedExprs.back().get();
  InternedExprs.emplace(std::move(K), E);
  return E;
}

const MemNode *SymArena::makeMem(MemKind Kind, unsigned Id,
                                 const MemNode *Prev, const SymExpr *Addr,
                                 const SymExpr *Val, const MemNode *Else) {
  MemKey K{Kind, Id, Prev, Addr, Val, Else};
  auto It = InternedMems.find(K);
  if (It != InternedMems.end())
    return It->second;
  OwnedMems.push_back(
      std::unique_ptr<MemNode>(new MemNode(Kind, Id, Prev, Addr, Val, Else)));
  const MemNode *M = OwnedMems.back().get();
  InternedMems.emplace(std::move(K), M);
  return M;
}

const SymExpr *SymArena::freshVar(const Type *Ty, bool IsAllocAddr,
                                  std::string Name) {
  unsigned Id = (unsigned)VarInfos.size();
  VarInfos.push_back({Ty, IsAllocAddr, std::move(Name)});
  return make(SymKind::Var, Ty, Id, {}, nullptr);
}

bool SymArena::isAllocAddress(const SymExpr *E) const {
  return E->kind() == SymKind::Var && VarInfos[E->varId()].IsAllocAddr;
}

const std::string &SymArena::varName(unsigned VarId) const {
  assert(VarId < VarInfos.size() && "unknown symbolic variable");
  return VarInfos[VarId].Name;
}

const Type *SymArena::varType(unsigned VarId) const {
  assert(VarId < VarInfos.size() && "unknown symbolic variable");
  return VarInfos[VarId].Ty;
}

const SymExpr *SymArena::intConst(long long Value) {
  return make(SymKind::IntConst, Types.intType(), Value, {}, nullptr);
}

const SymExpr *SymArena::boolConst(bool Value) {
  return make(SymKind::BoolConst, Types.boolType(), Value ? 1 : 0, {},
              nullptr);
}

const SymExpr *SymArena::add(const SymExpr *L, const SymExpr *R) {
  assert(L->type()->isInt() && R->type()->isInt() &&
         "symbolic + requires int operands");
  if (L->isConst() && R->isConst())
    return intConst(L->intValue() + R->intValue());
  return make(SymKind::Add, Types.intType(), 0, {L, R}, nullptr);
}

const SymExpr *SymArena::sub(const SymExpr *L, const SymExpr *R) {
  assert(L->type()->isInt() && R->type()->isInt() &&
         "symbolic - requires int operands");
  if (L->isConst() && R->isConst())
    return intConst(L->intValue() - R->intValue());
  return make(SymKind::Sub, Types.intType(), 0, {L, R}, nullptr);
}

const SymExpr *SymArena::eq(const SymExpr *L, const SymExpr *R) {
  assert(L->type() == R->type() &&
         (L->type()->isInt() || L->type()->isBool()) &&
         "symbolic = requires int or bool operands of equal type");
  if (L->isConst() && R->isConst()) {
    bool Same = L->type()->isInt() ? L->intValue() == R->intValue()
                                   : L->boolValue() == R->boolValue();
    return boolConst(Same);
  }
  if (L == R)
    return boolConst(true);
  return make(SymKind::Eq, Types.boolType(), 0, {L, R}, nullptr);
}

const SymExpr *SymArena::lt(const SymExpr *L, const SymExpr *R) {
  assert(L->type()->isInt() && R->type()->isInt() &&
         "symbolic < requires int operands");
  if (L->isConst() && R->isConst())
    return boolConst(L->intValue() < R->intValue());
  if (L == R)
    return boolConst(false);
  return make(SymKind::Lt, Types.boolType(), 0, {L, R}, nullptr);
}

const SymExpr *SymArena::le(const SymExpr *L, const SymExpr *R) {
  assert(L->type()->isInt() && R->type()->isInt() &&
         "symbolic <= requires int operands");
  if (L->isConst() && R->isConst())
    return boolConst(L->intValue() <= R->intValue());
  if (L == R)
    return boolConst(true);
  return make(SymKind::Le, Types.boolType(), 0, {L, R}, nullptr);
}

const SymExpr *SymArena::notG(const SymExpr *G) {
  assert(G->type()->isBool() && "negation requires a guard");
  if (G->isConst())
    return boolConst(!G->boolValue());
  if (G->kind() == SymKind::Not)
    return G->operand(0);
  return make(SymKind::Not, Types.boolType(), 0, {G}, nullptr);
}

const SymExpr *SymArena::andG(const SymExpr *L, const SymExpr *R) {
  assert(L->type()->isBool() && R->type()->isBool() &&
         "conjunction requires guards");
  if (L->isConst())
    return L->boolValue() ? R : boolConst(false);
  if (R->isConst())
    return R->boolValue() ? L : boolConst(false);
  if (L == R)
    return L;
  return make(SymKind::And, Types.boolType(), 0, {L, R}, nullptr);
}

const SymExpr *SymArena::orG(const SymExpr *L, const SymExpr *R) {
  assert(L->type()->isBool() && R->type()->isBool() &&
         "disjunction requires guards");
  if (L->isConst())
    return L->boolValue() ? boolConst(true) : R;
  if (R->isConst())
    return R->boolValue() ? boolConst(true) : L;
  if (L == R)
    return L;
  return make(SymKind::Or, Types.boolType(), 0, {L, R}, nullptr);
}

const SymExpr *SymArena::ite(const SymExpr *G, const SymExpr *Then,
                             const SymExpr *Else) {
  assert(G->type()->isBool() && "ite guard must be boolean");
  assert(Then->type() == Else->type() && "ite branch types must agree");
  if (G->isConst())
    return G->boolValue() ? Then : Else;
  if (Then == Else)
    return Then;
  return make(SymKind::Ite, Then->type(), 0, {G, Then, Else}, nullptr);
}

const SymExpr *SymArena::select(const MemNode *Mem, const SymExpr *Addr) {
  assert(Addr->type()->isRef() && "select address must be ref-typed");
  const Type *ValueTy = Addr->type()->pointee();

  // Reading a conditional memory distributes over the condition:
  // (g ? m1 : m2)[a] == g ? m1[a] : m2[a].
  if (Mem->kind() == MemKind::Ite)
    return ite(Mem->guard(), select(Mem->thenMemory(), Addr),
               select(Mem->elseMemory(), Addr));

  // McCarthy simplification: scan the log from the newest entry. A
  // syntactically identical address is a definite hit. A *different
  // allocation address* definitely does not alias and is skipped. Any
  // other entry may alias, so the read stays deferred.
  const MemNode *Cursor = Mem;
  while (Cursor) {
    if (Cursor->kind() == MemKind::Base || Cursor->kind() == MemKind::Ite)
      break;
    if (Cursor->address() == Addr) {
      // Definite hit; only usable if the stored value has the annotated
      // type (an ill-typed write is surfaced by the m-ok check instead).
      if (Cursor->value()->type() == ValueTy)
        return Cursor->value();
      break;
    }
    bool BothAllocAddrs =
        isAllocAddress(Addr) && isAllocAddress(Cursor->address());
    if (!BothAllocAddrs)
      break; // possible alias: stop simplifying
    Cursor = Cursor->previous();
  }

  return make(SymKind::Select, ValueTy, 0, {Addr}, Mem);
}

const MemNode *SymArena::freshBaseMemory() {
  // The id is fresh by construction, so the node can never already be
  // interned; allocate it directly instead of paying a guaranteed
  // hash-table miss (and growing the table by one dead entry per run).
  OwnedMems.push_back(std::unique_ptr<MemNode>(new MemNode(
      MemKind::Base, NumBaseMemories++, nullptr, nullptr, nullptr, nullptr)));
  return OwnedMems.back().get();
}

const MemNode *SymArena::update(const MemNode *Prev, const SymExpr *Addr,
                                const SymExpr *Value) {
  assert(Addr->type()->isRef() && "update address must be ref-typed");
  return makeMem(MemKind::Update, 0, Prev, Addr, Value, nullptr);
}

const MemNode *SymArena::alloc(const MemNode *Prev, const SymExpr *Addr,
                               const SymExpr *Value) {
  assert(isAllocAddress(Addr) && "alloc address must be a fresh allocation");
  return makeMem(MemKind::Alloc, 0, Prev, Addr, Value, nullptr);
}

const SymExpr *SymArena::closure(const Type *Ty, const FunExpr *Fun,
                                 SymEnv Env) {
  assert(Ty->isFun() && "closures must have function type");
  unsigned Id = (unsigned)Closures.size();
  Closures.emplace_back(Fun, std::move(Env));
  // Not interned: each closure is a distinct value, keyed by its id.
  OwnedExprs.push_back(std::unique_ptr<SymExpr>(
      new SymExpr(SymKind::Closure, Ty, Id, {}, nullptr)));
  return OwnedExprs.back().get();
}

const FunExpr *SymArena::closureFun(const SymExpr *E) const {
  assert(E->kind() == SymKind::Closure && "closureFun() on non-closure");
  return Closures[E->closureId()].first;
}

const SymEnv &SymArena::closureEnv(const SymExpr *E) const {
  assert(E->kind() == SymKind::Closure && "closureEnv() on non-closure");
  return Closures[E->closureId()].second;
}

void SymArena::collectClosures(const SymExpr *Value,
                               std::vector<const SymExpr *> &Out) const {
  if (!Value)
    return;
  if (Value->kind() == SymKind::Closure) {
    Out.push_back(Value);
    for (const auto &[Name, Captured] : closureEnv(Value)) {
      (void)Name;
      collectClosures(Captured, Out);
    }
    return;
  }
  for (unsigned I = 0, E = Value->numOperands(); I != E; ++I)
    collectClosures(Value->operand(I), Out);
}

void SymArena::collectClosuresInMemory(
    const MemNode *Mem, std::vector<const SymExpr *> &Out) const {
  while (Mem) {
    switch (Mem->kind()) {
    case MemKind::Base:
      return;
    case MemKind::Update:
    case MemKind::Alloc:
      collectClosures(Mem->value(), Out);
      Mem = Mem->previous();
      continue;
    case MemKind::Ite:
      collectClosuresInMemory(Mem->thenMemory(), Out);
      collectClosuresInMemory(Mem->elseMemory(), Out);
      return;
    }
  }
}

namespace {
/// Reachability marker for sweepSince. Traversal stops at pre-mark nodes:
/// expressions are immutable and built bottom-up, so the new epoch can
/// reference the old one but never the other way around.
struct SweepMarker {
  const SymArena &Arena;
  const std::unordered_set<const SymExpr *> &EpochExprs;
  const std::unordered_set<const MemNode *> &EpochMems;
  std::unordered_set<const SymExpr *> LiveExprs;
  std::unordered_set<const MemNode *> LiveMems;

  void markExpr(const SymExpr *E) {
    if (!E || !EpochExprs.count(E) || !LiveExprs.insert(E).second)
      return;
    if (E->kind() == SymKind::Closure) {
      for (const auto &[Name, Captured] : Arena.closureEnv(E)) {
        (void)Name;
        markExpr(Captured);
      }
      return;
    }
    for (unsigned I = 0, N = E->numOperands(); I != N; ++I)
      markExpr(E->operand(I));
    if (E->kind() == SymKind::Select)
      markMem(E->memory());
  }

  void markMem(const MemNode *M) {
    if (!M || !EpochMems.count(M) || !LiveMems.insert(M).second)
      return;
    switch (M->kind()) {
    case MemKind::Base:
      return;
    case MemKind::Update:
    case MemKind::Alloc:
      markExpr(M->address());
      markExpr(M->value());
      markMem(M->previous());
      return;
    case MemKind::Ite:
      markExpr(M->guard());
      markMem(M->thenMemory());
      markMem(M->elseMemory());
      return;
    }
  }
};
} // namespace

size_t SymArena::sweepSince(Mark M,
                            const std::vector<const SymExpr *> &ExprRoots,
                            const std::vector<const MemNode *> &MemRoots,
                            const std::function<void(const SymExpr *)>
                                &OnFreeExpr) {
  if (OwnedExprs.size() <= M.Exprs && OwnedMems.size() <= M.Mems)
    return 0;

  std::unordered_set<const SymExpr *> EpochExprs;
  std::unordered_set<const MemNode *> EpochMems;
  for (size_t I = M.Exprs; I < OwnedExprs.size(); ++I)
    EpochExprs.insert(OwnedExprs[I].get());
  for (size_t I = M.Mems; I < OwnedMems.size(); ++I)
    EpochMems.insert(OwnedMems[I].get());

  SweepMarker Marker{*this, EpochExprs, EpochMems, {}, {}};
  for (const SymExpr *R : ExprRoots)
    Marker.markExpr(R);
  for (const MemNode *R : MemRoots)
    Marker.markMem(R);
  // Closures are pinned: their ids key block caches that outlive runs.
  for (size_t I = M.Exprs; I < OwnedExprs.size(); ++I)
    if (OwnedExprs[I]->kind() == SymKind::Closure)
      Marker.markExpr(OwnedExprs[I].get());

  // Phase 1: drop intern entries and notify, with every node still alive
  // (intern keys hold pointers to other nodes, so no destruction may
  // happen until all dead keys are gone).
  size_t Freed = 0;
  for (size_t I = M.Exprs; I < OwnedExprs.size(); ++I) {
    const SymExpr *E = OwnedExprs[I].get();
    if (Marker.LiveExprs.count(E))
      continue;
    if (OnFreeExpr)
      OnFreeExpr(E);
    InternedExprs.erase(ExprKey{E->Kind, E->Ty, E->Value, E->Ops, E->Mem});
    ++Freed;
  }
  for (size_t I = M.Mems; I < OwnedMems.size(); ++I) {
    const MemNode *N = OwnedMems[I].get();
    if (Marker.LiveMems.count(N))
      continue;
    InternedMems.erase(
        MemKey{N->Kind, N->Id, N->Prev, N->Addr, N->Val, N->Else});
    ++Freed;
  }

  // Phase 2: compact the ownership vectors, destroying dead nodes.
  size_t W = M.Exprs;
  for (size_t I = M.Exprs; I < OwnedExprs.size(); ++I)
    if (Marker.LiveExprs.count(OwnedExprs[I].get()))
      OwnedExprs[W++] = std::move(OwnedExprs[I]);
  OwnedExprs.resize(W);
  W = M.Mems;
  for (size_t I = M.Mems; I < OwnedMems.size(); ++I)
    if (Marker.LiveMems.count(OwnedMems[I].get()))
      OwnedMems[W++] = std::move(OwnedMems[I]);
  OwnedMems.resize(W);
  return Freed;
}

const MemNode *SymArena::iteMem(const SymExpr *G, const MemNode *Then,
                                const MemNode *Else) {
  assert(G->type()->isBool() && "memory ite guard must be boolean");
  if (G->isConst())
    return G->boolValue() ? Then : Else;
  if (Then == Else)
    return Then;
  return makeMem(MemKind::Ite, 0, Then, G, nullptr, Else);
}
