//===--- SymToSmt.h - Symbolic-expression to solver translation -*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates symbolic expressions (guards, path conditions) into solver
/// terms so the SMT facade can decide feasibility and the mix rule's
/// exhaustive() tautology.
///
/// The abstraction is the standard one: integer and boolean structure is
/// translated exactly; reference-typed values become integer-sorted
/// variables (addresses); deferred memory reads m[s] become opaque
/// variables, one per distinct read (hash-consing makes "distinct" precise
/// and syntactic). Opaque abstraction only ever *adds* models, which is
/// the conservative direction for both of the solver's jobs here.
///
/// A translator instance memoizes across calls, so the same alpha maps to
/// the same solver variable in every query of an analysis run.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SYM_SYMTOSMT_H
#define MIX_SYM_SYMTOSMT_H

#include "solver/Term.h"
#include "sym/SymArena.h"

#include <unordered_map>

namespace mix {

/// Stateful translator from SymExpr to smt::Term.
class SymToSmt {
public:
  SymToSmt(SymArena &Syms, smt::TermArena &Terms)
      : Syms(Syms), Terms(Terms) {}

  /// Translates \p E; the resulting term's sort is Bool for boolean-typed
  /// expressions and Int for everything else (ints, refs, functions).
  const smt::Term *translate(const SymExpr *E);

  /// The term arena translations are built in.
  smt::TermArena &terms() { return Terms; }

  /// Every translation performed so far. The concolic driver inverts
  /// this map to turn solver models back into valuations over symbolic
  /// variables and deferred reads.
  const std::unordered_map<const SymExpr *, const smt::Term *> &
  translations() const {
    return Cache;
  }

  /// Forgets the translation of \p E. Called by the arena's expression
  /// GC before an expression is freed, so a later allocation reusing the
  /// address can never hit a stale cached term.
  void evict(const SymExpr *E) { Cache.erase(E); }

private:
  const smt::Term *translateUncached(const SymExpr *E);
  const smt::Term *varTerm(const SymExpr *E);
  const smt::Term *opaqueTerm(const SymExpr *E);

  SymArena &Syms;
  smt::TermArena &Terms;
  std::unordered_map<const SymExpr *, const smt::Term *> Cache;
};

} // namespace mix

#endif // MIX_SYM_SYMTOSMT_H
