//===--- SymExpr.h - Typed symbolic expressions and memories ----*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The symbolic-expression vocabulary of Figure 1:
///
///   s ::= u : tau                   typed symbolic expressions
///   g ::= u : bool                  guards
///   u ::= alpha | v | u + u | s = s | not g | g and g | m[u : tau ref]
///   m ::= mu | m,(s -> s') | m,(s ->a s')
///
/// Every symbolic expression carries its type, exactly as in the paper:
/// "with these type annotations, we can immediately determine the type of
/// a symbolic expression, just like in a concrete evaluator with values."
/// Ill-sorted expressions cannot be built (constructors assert), mirroring
/// the paper's syntactic restriction.
///
/// Extensions (used by the SEIf-Defer rule and Section 2's examples):
/// subtraction, `<`/`<=`, `or`, and conditional expressions `g ? s1 : s2`,
/// plus conditional memories for the deferring executor.
///
/// Expressions and memories are immutable and hash-consed in SymArena, so
/// the syntactic-equivalence tests of the Overwrite-Ok rule are pointer
/// comparisons.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SYM_SYMEXPR_H
#define MIX_SYM_SYMEXPR_H

#include "lang/Type.h"

#include <cassert>
#include <string>
#include <vector>

namespace mix {

class FunExpr;
class MemNode;

/// Constructors of bare symbolic expressions `u`.
enum class SymKind {
  Var,       ///< A symbolic variable alpha.
  IntConst,  ///< A known integer value.
  BoolConst, ///< A known boolean value.
  Add,
  Sub,
  Eq, ///< Integer equality (the paper's s = s).
  Lt,
  Le,
  Not,
  And,
  Or,
  Ite,     ///< g ? s1 : s2 (Section 3.1, "Deferral Versus Execution").
  Select,  ///< m[u : tau ref] — deferred memory read.
  Closure, ///< A function value with its captured environment (Section 2
           ///< extension; needed to execute `let id = fun ... in id 3`).
};

/// A typed symbolic expression `u : tau`. Obtain instances from SymArena;
/// structural equality is pointer equality.
class SymExpr {
public:
  SymKind kind() const { return Kind; }
  /// The type annotation tau of this expression.
  const Type *type() const { return Ty; }

  /// For Var: the symbolic variable id (alpha's index).
  unsigned varId() const {
    assert(Kind == SymKind::Var && "varId() on non-variable");
    return static_cast<unsigned>(Value);
  }

  /// For IntConst / BoolConst: the known value.
  long long intValue() const {
    assert(Kind == SymKind::IntConst && "intValue() on non-int-constant");
    return Value;
  }
  bool boolValue() const {
    assert(Kind == SymKind::BoolConst && "boolValue() on non-bool-constant");
    return Value != 0;
  }

  /// True when this expression is a known concrete value.
  bool isConst() const {
    return Kind == SymKind::IntConst || Kind == SymKind::BoolConst;
  }

  unsigned numOperands() const { return (unsigned)Ops.size(); }
  const SymExpr *operand(unsigned I) const {
    assert(I < Ops.size() && "operand index out of range");
    return Ops[I];
  }

  /// For Select: the memory being read.
  const MemNode *memory() const {
    assert(Kind == SymKind::Select && "memory() on non-select");
    return Mem;
  }
  /// For Select: the address read from.
  const SymExpr *address() const {
    assert(Kind == SymKind::Select && "address() on non-select");
    return Ops[0];
  }

  /// For Closure: the index into SymArena's closure table.
  unsigned closureId() const {
    assert(Kind == SymKind::Closure && "closureId() on non-closure");
    return static_cast<unsigned>(Value);
  }

  /// Renders the expression, e.g. "(a0:int + 3:int):int".
  std::string str() const;

private:
  friend class SymArena;
  SymExpr(SymKind Kind, const Type *Ty, long long Value,
          std::vector<const SymExpr *> Ops, const MemNode *Mem)
      : Kind(Kind), Ty(Ty), Value(Value), Ops(std::move(Ops)), Mem(Mem) {}

  SymKind Kind;
  const Type *Ty;
  long long Value;
  std::vector<const SymExpr *> Ops;
  const MemNode *Mem;
};

/// Constructors of symbolic memories `m`.
enum class MemKind {
  Base,   ///< mu — an arbitrary but consistently typed memory.
  Update, ///< m,(s -> s') — a logged write.
  Alloc,  ///< m,(s ->a s') — a logged allocation (address is fresh).
  Ite,    ///< g ? m1 : m2 — conditional memory (SEIf-Defer extension).
};

/// A symbolic memory. Memories form an immutable log (the paper: "writes
/// and allocations are simply logged during symbolic execution for later
/// inspection"), extended with conditional nodes for the deferring
/// executor.
class MemNode {
public:
  MemKind kind() const { return Kind; }

  /// For Base: the identity of the arbitrary memory mu.
  unsigned baseId() const {
    assert(Kind == MemKind::Base && "baseId() on non-base memory");
    return Id;
  }

  /// For Update / Alloc: the previous memory.
  const MemNode *previous() const {
    assert((Kind == MemKind::Update || Kind == MemKind::Alloc) &&
           "previous() on base/ite memory");
    return Prev;
  }
  /// For Update / Alloc: the written address (a ref-typed expression).
  const SymExpr *address() const {
    assert((Kind == MemKind::Update || Kind == MemKind::Alloc) &&
           "address() on base/ite memory");
    return Addr;
  }
  /// For Update / Alloc: the stored value.
  const SymExpr *value() const {
    assert((Kind == MemKind::Update || Kind == MemKind::Alloc) &&
           "value() on base/ite memory");
    return Val;
  }

  /// For Ite: guard and branches.
  const SymExpr *guard() const {
    assert(Kind == MemKind::Ite && "guard() on non-ite memory");
    return Addr;
  }
  const MemNode *thenMemory() const {
    assert(Kind == MemKind::Ite && "thenMemory() on non-ite memory");
    return Prev;
  }
  const MemNode *elseMemory() const {
    assert(Kind == MemKind::Ite && "elseMemory() on non-ite memory");
    return Else;
  }

  /// Renders the memory log, e.g. "mu0,(a1:int ref -> 3:int)".
  std::string str() const;

private:
  friend class SymArena;
  MemNode(MemKind Kind, unsigned Id, const MemNode *Prev, const SymExpr *Addr,
          const SymExpr *Val, const MemNode *Else)
      : Kind(Kind), Id(Id), Prev(Prev), Addr(Addr), Val(Val), Else(Else) {}

  MemKind Kind;
  unsigned Id;
  const MemNode *Prev;
  const SymExpr *Addr;
  const SymExpr *Val;
  const MemNode *Else;
};

} // namespace mix

#endif // MIX_SYM_SYMEXPR_H
