//===--- SymArena.h - Builder/owner of symbolic expressions -----*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SymArena owns and hash-conses symbolic expressions and memories, and
/// allocates the fresh symbolic variables (alpha) and base memories (mu)
/// the mix rules need. Constructors enforce the typing discipline of
/// Figure 1 (e.g. `u1:int + u2:bool` cannot be built) and fold constants,
/// matching the SEPlus-Conc style of partial evaluation mentioned in the
/// paper.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SYM_SYMARENA_H
#define MIX_SYM_SYMARENA_H

#include "sym/SymExpr.h"

#include "support/Hash.h"

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mix {

class FunExpr;

/// A symbolic environment Sigma: local variables to symbolic values.
using SymEnv = std::map<std::string, const SymExpr *>;

/// Builds, interns, and owns SymExpr / MemNode instances.
class SymArena {
public:
  explicit SymArena(TypeContext &Types) : Types(Types) {}
  SymArena(const SymArena &) = delete;
  SymArena &operator=(const SymArena &) = delete;

  TypeContext &types() { return Types; }

  // --- Symbolic variables (alpha) ----------------------------------------

  /// Allocates a fresh symbolic variable of type \p Ty. \p IsAllocAddr
  /// marks addresses created by SERef, which the paper's memory model
  /// guarantees distinct from all other allocations.
  const SymExpr *freshVar(const Type *Ty, bool IsAllocAddr = false,
                          std::string Name = "");

  /// True when \p E is a symbolic variable created as an allocation
  /// address (the `->a` log entries). Two distinct allocation addresses
  /// never alias.
  bool isAllocAddress(const SymExpr *E) const;

  /// Debug name for variable \p VarId (may be empty).
  const std::string &varName(unsigned VarId) const;
  /// Declared type of variable \p VarId.
  const Type *varType(unsigned VarId) const;
  unsigned numVars() const { return (unsigned)VarInfos.size(); }

  // --- Constants ----------------------------------------------------------

  const SymExpr *intConst(long long Value);
  const SymExpr *boolConst(bool Value);
  const SymExpr *trueGuard() { return boolConst(true); }
  const SymExpr *falseGuard() { return boolConst(false); }

  // --- Operators (typed; constructors assert sort discipline) ------------

  const SymExpr *add(const SymExpr *L, const SymExpr *R);
  const SymExpr *sub(const SymExpr *L, const SymExpr *R);
  const SymExpr *eq(const SymExpr *L, const SymExpr *R);
  const SymExpr *lt(const SymExpr *L, const SymExpr *R);
  const SymExpr *le(const SymExpr *L, const SymExpr *R);
  const SymExpr *notG(const SymExpr *G);
  const SymExpr *andG(const SymExpr *L, const SymExpr *R);
  const SymExpr *orG(const SymExpr *L, const SymExpr *R);
  const SymExpr *ite(const SymExpr *G, const SymExpr *Then,
                     const SymExpr *Else);

  /// A deferred memory read m[addr : tau ref] : tau, with the McCarthy
  /// select-over-update simplification: reads that definitely hit the
  /// newest matching log entry return the stored value, and entries whose
  /// address is a *different allocation* than \p Addr are skipped (the
  /// paper's distinction between arbitrary writes and allocations).
  const SymExpr *select(const MemNode *Mem, const SymExpr *Addr);

  // --- Memories ------------------------------------------------------------

  /// Allocates a fresh arbitrary memory mu.
  const MemNode *freshBaseMemory();
  /// m,(addr -> value): logs a write (any value type; the paper allows
  /// ill-typed writes here, checked later by the `m ok` judgment).
  const MemNode *update(const MemNode *Prev, const SymExpr *Addr,
                        const SymExpr *Value);
  /// m,(addr ->a value): logs an allocation (addr must be a fresh
  /// allocation address variable).
  const MemNode *alloc(const MemNode *Prev, const SymExpr *Addr,
                       const SymExpr *Value);
  /// g ? m1 : m2 (SEIf-Defer extension).
  const MemNode *iteMem(const SymExpr *G, const MemNode *Then,
                        const MemNode *Else);

  // --- Closures -------------------------------------------------------------

  /// Creates a closure value of function type \p Ty capturing \p Env.
  /// Closures are not hash-consed: each call yields a distinct value.
  const SymExpr *closure(const Type *Ty, const FunExpr *Fun, SymEnv Env);

  /// Collects every closure reachable from \p Value (through operands and
  /// captured environments) into \p Out. Used by the mix rules to find
  /// function values escaping a block boundary.
  void collectClosures(const SymExpr *Value,
                       std::vector<const SymExpr *> &Out) const;
  /// Collects every closure stored in \p Mem's log into \p Out.
  void collectClosuresInMemory(const MemNode *Mem,
                               std::vector<const SymExpr *> &Out) const;
  /// The function body of closure \p E.
  const FunExpr *closureFun(const SymExpr *E) const;
  /// The captured environment of closure \p E.
  const SymEnv &closureEnv(const SymExpr *E) const;

  // --- Expression garbage collection ---------------------------------------

  /// Number of owned expressions / memories (arena growth accounting for
  /// the exec.terms.* metrics).
  size_t numExprs() const { return OwnedExprs.size(); }
  size_t numMems() const { return OwnedMems.size(); }

  /// An epoch boundary for sweepSince(): everything allocated after a
  /// mark is a collection candidate.
  struct Mark {
    size_t Exprs = 0;
    size_t Mems = 0;
  };
  Mark mark() const { return {OwnedExprs.size(), OwnedMems.size()}; }

  /// Epoch mark-sweep over the arena: frees expressions and memories
  /// created at or after \p M that are not reachable from \p ExprRoots /
  /// \p MemRoots. Expressions are immutable and built bottom-up, so a
  /// pre-mark node can never reference a post-mark one and the sweep
  /// never has to look at the old epoch. Closure values are never freed
  /// (their ids key block caches across runs), and variable/closure id
  /// tables are never compacted. \p OnFreeExpr runs for every freed
  /// expression *before* anything is destroyed, so callers can evict
  /// translation caches keyed by expression identity. Returns the number
  /// of nodes freed.
  size_t sweepSince(Mark M, const std::vector<const SymExpr *> &ExprRoots,
                    const std::vector<const MemNode *> &MemRoots,
                    const std::function<void(const SymExpr *)> &OnFreeExpr);

private:
  const SymExpr *make(SymKind Kind, const Type *Ty, long long Value,
                      std::vector<const SymExpr *> Ops, const MemNode *Mem);
  const MemNode *makeMem(MemKind Kind, unsigned Id, const MemNode *Prev,
                         const SymExpr *Addr, const SymExpr *Val,
                         const MemNode *Else);

  struct VarInfo {
    const Type *Ty;
    bool IsAllocAddr;
    std::string Name;
  };

  struct ExprKey {
    SymKind Kind;
    const Type *Ty;
    long long Value;
    std::vector<const SymExpr *> Ops;
    const MemNode *Mem;
    bool operator==(const ExprKey &O) const {
      return Kind == O.Kind && Ty == O.Ty && Value == O.Value &&
             Ops == O.Ops && Mem == O.Mem;
    }
  };
  struct ExprKeyHash {
    size_t operator()(const ExprKey &K) const {
      size_t H = hashCombine((size_t)K.Kind, std::hash<const void *>()(K.Ty));
      H = hashCombine(H, (size_t)K.Value);
      for (const SymExpr *Op : K.Ops)
        H = hashCombine(H, std::hash<const void *>()(Op));
      return hashCombine(H, std::hash<const void *>()(K.Mem));
    }
  };

  struct MemKey {
    MemKind Kind;
    unsigned Id;
    const MemNode *Prev;
    const SymExpr *Addr;
    const SymExpr *Val;
    const MemNode *Else;
    bool operator==(const MemKey &O) const {
      return Kind == O.Kind && Id == O.Id && Prev == O.Prev &&
             Addr == O.Addr && Val == O.Val && Else == O.Else;
    }
  };
  struct MemKeyHash {
    size_t operator()(const MemKey &K) const {
      size_t H = hashCombine((size_t)K.Kind, K.Id);
      H = hashCombine(H, std::hash<const void *>()(K.Prev));
      H = hashCombine(H, std::hash<const void *>()(K.Addr));
      H = hashCombine(H, std::hash<const void *>()(K.Val));
      return hashCombine(H, std::hash<const void *>()(K.Else));
    }
  };

  TypeContext &Types;
  std::vector<std::unique_ptr<SymExpr>> OwnedExprs;
  std::vector<std::unique_ptr<MemNode>> OwnedMems;
  std::unordered_map<ExprKey, const SymExpr *, ExprKeyHash> InternedExprs;
  std::unordered_map<MemKey, const MemNode *, MemKeyHash> InternedMems;
  std::vector<VarInfo> VarInfos;
  std::vector<std::pair<const FunExpr *, SymEnv>> Closures;
  unsigned NumBaseMemories = 0;
};

} // namespace mix

#endif // MIX_SYM_SYMARENA_H
