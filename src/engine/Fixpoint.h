//===--- Fixpoint.h - Engine fixpoint scheduling ----------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine-level fixpoint driver. MIXY's qualifier inference (and any
/// future mix with cross-block feedback) evaluates a set of *sites* —
/// symbolic-block calling contexts — until no site's context changes
/// (Section 4.1: start optimistic, re-run until stable). This driver owns
/// the scheduling policy; the domain supplies, type-erased:
///
///   NumSites()        how many sites exist right now (may grow mid-run
///                     as nested analyses discover new calls)
///   Refresh(i)        recompute site i's calling context; true if changed
///   EvaluateWave(S,t) analyze the changed sites S (tag t identifies the
///                     wave for deterministic diagnostic ordering)
///   OnRoundBegin(r)   per-round setup (MIXY: solve the qualifier graph)
///   Edges()           static dependency edges i -> j: re-evaluating i may
///                     change j's context (worklist schedule only)
///
/// Three schedules, all reaching the same least fixpoint of the same
/// monotone constraint system:
///
///  - Serial: Gauss-Seidel — refresh+evaluate one site at a time, each
///    evaluation seeing every earlier one's effects. Byte-identical to
///    the historical single-threaded loop.
///  - Round barrier: Jacobi — refresh all sites against the same state,
///    evaluate the changed ones as one parallel wave, apply at the
///    barrier. The historical --jobs=N schedule.
///  - Worklist: dependency-aware — condense Edges() into SCCs, iterate
///    each SCC internally, and release an SCC's dependents the moment it
///    stabilizes, so independent chains pipeline through the pool instead
///    of waiting for the slowest member of every round. A final
///    round-barrier validation sweep guarantees the least fixpoint even
///    if Edges() under-approximated (and catches sites discovered after
///    the SCC partition was built).
///
/// Wave tags are deterministic functions of the schedule structure, never
/// of thread timing, so a domain that buffers diagnostics per tag and
/// merges in tag order gets a run-to-run stable diagnostic stream.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_ENGINE_FIXPOINT_H
#define MIX_ENGINE_FIXPOINT_H

#include "observe/Metrics.h"
#include "observe/Phase.h"
#include "observe/Trace.h"

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace mix::rt {
class ThreadPool;
}

namespace mix::engine {

struct FixpointConfig {
  /// Bound on rounds (serial/barrier) and on intra-SCC + validation
  /// rounds (worklist).
  unsigned MaxRounds = 16;
  obs::TraceSink *Trace = nullptr;
  /// Span emitted per round; domains keep their historical names
  /// (MIXY passes "mixy.round"/"mixy"). Static strings only: the trace
  /// sink keeps the pointers until it renders, which is after the
  /// analysis — and this config — are gone.
  const char *RoundSpanName = "engine.round";
  const char *SpanCategory = "engine";
  obs::MetricsRegistry *Metrics = nullptr;
  /// Per-request telemetry: every run() variant charges its wall time to
  /// the request's fixpoint phase. Null costs one branch per run.
  obs::RequestTelemetry *Telemetry = nullptr;
};

/// The type-erased domain callbacks (see file comment).
struct FixpointCallbacks {
  std::function<size_t()> NumSites;
  std::function<bool(size_t)> Refresh;
  std::function<void(const std::vector<size_t> &, uint64_t)> EvaluateWave;
  std::function<void(unsigned)> OnRoundBegin;                      // optional
  std::function<std::vector<std::pair<size_t, size_t>>()> Edges;   // worklist
};

/// Counter names (registry-backed; inert without a registry):
///   engine.fixpoint.rounds    rounds/waves that evaluated at least 1 site
///   engine.worklist.reruns    site evaluations beyond each site's first
class FixpointDriver {
public:
  explicit FixpointDriver(FixpointConfig C);

  /// Gauss-Seidel, one site at a time. Returns rounds with changes.
  unsigned runSerial(const FixpointCallbacks &CB);

  /// Jacobi with a parallel wave per round. Returns rounds with changes.
  unsigned runRoundBarrier(const FixpointCallbacks &CB);

  /// Dependency-aware SCC worklist over \p Pool. Returns evaluation
  /// waves (intra-SCC rounds plus validation rounds) with changes.
  unsigned runWorklist(const FixpointCallbacks &CB, rt::ThreadPool &Pool);

private:
  FixpointConfig Cfg;
  obs::Counter CRounds;
  obs::Counter CReruns;
};

} // namespace mix::engine

#endif // MIX_ENGINE_FIXPOINT_H
