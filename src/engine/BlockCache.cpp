//===--- BlockCache.cpp - Sharded block-summary cache -----------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "engine/BlockCache.h"

using namespace mix::engine;

std::string BlockCacheStats::str() const {
  return "hits=" + std::to_string(Hits) + " misses=" + std::to_string(Misses) +
         " inserts=" + std::to_string(Inserts) +
         " dropped=" + std::to_string(DroppedInserts) +
         " evictions=" + std::to_string(Evictions);
}

unsigned mix::engine::blockCacheShardsFor(unsigned Workers) {
  if (Workers <= 1)
    return 1;
  unsigned N = 1;
  while (N < Workers * 4 && N < 256)
    N <<= 1;
  return N;
}
