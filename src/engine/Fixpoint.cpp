//===--- Fixpoint.cpp - Engine fixpoint scheduling --------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "engine/Fixpoint.h"

#include "runtime/ThreadPool.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <set>

using namespace mix::engine;

FixpointDriver::FixpointDriver(FixpointConfig C) : Cfg(std::move(C)) {
  if (Cfg.Metrics) {
    CRounds = Cfg.Metrics->counter("engine.fixpoint.rounds");
    CReruns = Cfg.Metrics->counter("engine.worklist.reruns");
  }
}

unsigned FixpointDriver::runSerial(const FixpointCallbacks &CB) {
  obs::PhaseTimer Timer(Cfg.Telemetry, obs::Phase::Fixpoint);
  unsigned Rounds = 0;
  std::vector<bool> Seen;
  for (unsigned Iter = 0; Iter != Cfg.MaxRounds; ++Iter) {
    obs::TraceSpan Span(Cfg.Trace, Cfg.RoundSpanName,
                        Cfg.SpanCategory);
    if (Cfg.Trace)
      Span.setArgs("{\"round\": " + std::to_string(Iter) + "}");
    if (CB.OnRoundBegin)
      CB.OnRoundBegin(Iter);
    bool Changed = false;
    // Snapshot the count: nested analyses may append sites while we
    // iterate, and those get picked up next round (indexing instead of a
    // range-for also keeps appends from invalidating our position).
    size_t N = CB.NumSites();
    if (Seen.size() < N)
      Seen.resize(N, false);
    for (size_t I = 0; I != N; ++I) {
      if (!CB.Refresh(I))
        continue;
      Changed = true;
      if (Seen[I])
        CReruns.inc();
      Seen[I] = true;
      CB.EvaluateWave({I}, Iter);
    }
    if (!Changed)
      break;
    ++Rounds;
    CRounds.inc();
  }
  return Rounds;
}

unsigned FixpointDriver::runRoundBarrier(const FixpointCallbacks &CB) {
  obs::PhaseTimer Timer(Cfg.Telemetry, obs::Phase::Fixpoint);
  unsigned Rounds = 0;
  std::vector<bool> Seen;
  for (unsigned Iter = 0; Iter != Cfg.MaxRounds; ++Iter) {
    obs::TraceSpan Span(Cfg.Trace, Cfg.RoundSpanName,
                        Cfg.SpanCategory);
    if (Cfg.Trace)
      Span.setArgs("{\"round\": " + std::to_string(Iter) + "}");
    if (CB.OnRoundBegin)
      CB.OnRoundBegin(Iter);
    size_t N = CB.NumSites();
    if (Seen.size() < N)
      Seen.resize(N, false);
    std::vector<size_t> ChangedSites;
    for (size_t I = 0; I != N; ++I)
      if (CB.Refresh(I))
        ChangedSites.push_back(I);
    if (ChangedSites.empty())
      break;
    ++Rounds;
    CRounds.inc();
    for (size_t I : ChangedSites) {
      if (Seen[I])
        CReruns.inc();
      Seen[I] = true;
    }
    CB.EvaluateWave(ChangedSites, Iter);
  }
  return Rounds;
}

namespace {

/// Iterative Tarjan SCC over an adjacency list. Emits SCCs in reverse
/// topological order (every SCC before its predecessors), members sorted
/// ascending. Deterministic: pure function of the adjacency list.
std::vector<std::vector<size_t>>
tarjanSccs(size_t N, const std::vector<std::vector<size_t>> &Adj) {
  std::vector<std::vector<size_t>> Sccs;
  constexpr size_t Unvisited = (size_t)-1;
  std::vector<size_t> Index(N, Unvisited), Low(N, 0);
  std::vector<bool> OnStack(N, false);
  std::vector<size_t> Stack;
  size_t NextIndex = 0;

  struct Frame {
    size_t V;
    size_t Child;
  };
  std::vector<Frame> Frames;

  for (size_t Root = 0; Root != N; ++Root) {
    if (Index[Root] != Unvisited)
      continue;
    Frames.push_back({Root, 0});
    while (!Frames.empty()) {
      // Re-take the reference each iteration: pushes below may
      // reallocate Frames.
      size_t V = Frames.back().V;
      size_t Child = Frames.back().Child;
      if (Child == 0) {
        Index[V] = Low[V] = NextIndex++;
        Stack.push_back(V);
        OnStack[V] = true;
      }
      bool Descended = false;
      const std::vector<size_t> &Out = Adj[V];
      while (Child < Out.size()) {
        size_t W = Out[Child];
        ++Child;
        if (Index[W] == Unvisited) {
          Frames.back().Child = Child;
          Frames.push_back({W, 0});
          Descended = true;
          break;
        }
        if (OnStack[W])
          Low[V] = std::min(Low[V], Index[W]);
      }
      if (Descended)
        continue;
      Frames.back().Child = Child;
      if (Low[V] == Index[V]) {
        std::vector<size_t> Scc;
        for (;;) {
          size_t W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          Scc.push_back(W);
          if (W == V)
            break;
        }
        std::sort(Scc.begin(), Scc.end());
        Sccs.push_back(std::move(Scc));
      }
      Frames.pop_back();
      if (!Frames.empty())
        Low[Frames.back().V] = std::min(Low[Frames.back().V], Low[V]);
    }
  }
  return Sccs;
}

} // namespace

unsigned FixpointDriver::runWorklist(const FixpointCallbacks &CB,
                                     rt::ThreadPool &Pool) {
  obs::PhaseTimer Timer(Cfg.Telemetry, obs::Phase::Fixpoint);
  // The SCC partition is built over the sites known now; sites appended
  // during evaluation are handled by the validation sweep below.
  size_t N0 = CB.NumSites();
  std::vector<std::vector<size_t>> Adj(N0);
  if (CB.Edges) {
    for (auto [From, To] : CB.Edges()) {
      if (From == To || From >= N0 || To >= N0)
        continue;
      Adj[From].push_back(To);
    }
    for (std::vector<size_t> &Out : Adj) {
      std::sort(Out.begin(), Out.end());
      Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
    }
  }

  std::vector<std::vector<size_t>> Sccs = tarjanSccs(N0, Adj);
  size_t NumSccs = Sccs.size();
  // Tarjan emits sinks first; topological position = reversed emission
  // order. Used only to build deterministic wave tags.
  std::vector<size_t> TopoPos(NumSccs);
  for (size_t I = 0; I != NumSccs; ++I)
    TopoPos[I] = NumSccs - 1 - I;

  std::vector<size_t> SccOf(N0);
  for (size_t S = 0; S != NumSccs; ++S)
    for (size_t V : Sccs[S])
      SccOf[V] = S;

  // Condensation: cross-SCC successor sets and predecessor counts.
  std::vector<std::set<size_t>> SuccSets(NumSccs);
  std::vector<unsigned> Pending(NumSccs, 0);
  for (size_t V = 0; V != N0; ++V)
    for (size_t W : Adj[V])
      if (SccOf[V] != SccOf[W])
        SuccSets[SccOf[V]].insert(SccOf[W]);
  for (size_t S = 0; S != NumSccs; ++S)
    for (size_t T : SuccSets[S])
      ++Pending[T];

  unsigned Waves = 0;
  std::vector<bool> Seen(N0, false);
  std::mutex DriverM; // guards Waves/Seen and the counters from workers

  // Coordinator state: an SCC becomes Ready when all its predecessor
  // SCCs are Done. The coordinator (caller thread) submits ready SCCs to
  // the pool and sleeps until everything is Done.
  std::mutex M;
  std::condition_variable Cv;
  std::vector<size_t> Ready;
  size_t Done = 0;
  std::exception_ptr FirstError;
  for (size_t S = 0; S != NumSccs; ++S)
    if (Pending[S] == 0)
      Ready.push_back(S);

  uint64_t TagStride = (uint64_t)Cfg.MaxRounds + 1;
  auto RunScc = [&](size_t S) {
    try {
      const std::vector<size_t> &Members = Sccs[S];
      for (unsigned R = 0; R != Cfg.MaxRounds; ++R) {
        std::vector<size_t> ChangedSites;
        for (size_t I : Members)
          if (CB.Refresh(I))
            ChangedSites.push_back(I);
        if (ChangedSites.empty())
          break;
        {
          std::lock_guard<std::mutex> Lock(DriverM);
          ++Waves;
          CRounds.inc();
          for (size_t I : ChangedSites) {
            if (Seen[I])
              CReruns.inc();
            Seen[I] = true;
          }
        }
        CB.EvaluateWave(ChangedSites, (uint64_t)TopoPos[S] * TagStride + R);
      }
    } catch (...) {
      std::lock_guard<std::mutex> Lock(M);
      if (!FirstError)
        FirstError = std::current_exception();
    }
    // Completion must run even after an exception, or the coordinator
    // never sees Done reach NumSccs.
    std::lock_guard<std::mutex> Lock(M);
    ++Done;
    for (size_t T : SuccSets[S])
      if (--Pending[T] == 0)
        Ready.push_back(T);
    Cv.notify_all();
  };

  std::vector<rt::TaskFuture<void>> Futures;
  {
    std::unique_lock<std::mutex> Lock(M);
    while (Done != NumSccs) {
      while (!Ready.empty()) {
        size_t S = Ready.back();
        Ready.pop_back();
        Lock.unlock();
        Futures.push_back(Pool.submit([&RunScc, S] { RunScc(S); }));
        Lock.lock();
      }
      if (Done == NumSccs)
        break;
      Cv.wait(Lock, [&] { return Done == NumSccs || !Ready.empty(); });
    }
  }
  for (rt::TaskFuture<void> &F : Futures)
    F.get();
  if (FirstError)
    std::rethrow_exception(FirstError);

  // Validation sweep: plain round-barrier rounds on the coordinator
  // thread. For a monotone constraint system this drives any residue —
  // under-approximated edges, sites appended after the partition — to
  // the same least fixpoint the barrier schedule reaches.
  for (unsigned E = 0; E != Cfg.MaxRounds; ++E) {
    obs::TraceSpan Span(Cfg.Trace, Cfg.RoundSpanName,
                        Cfg.SpanCategory);
    if (Cfg.Trace)
      Span.setArgs("{\"round\": " + std::to_string(E) + "}");
    if (CB.OnRoundBegin)
      CB.OnRoundBegin(E);
    size_t N = CB.NumSites();
    if (Seen.size() < N)
      Seen.resize(N, false);
    std::vector<size_t> ChangedSites;
    for (size_t I = 0; I != N; ++I)
      if (CB.Refresh(I))
        ChangedSites.push_back(I);
    if (ChangedSites.empty())
      break;
    {
      std::lock_guard<std::mutex> Lock(DriverM);
      ++Waves;
      CRounds.inc();
      for (size_t I : ChangedSites) {
        if (Seen[I])
          CReruns.inc();
        Seen[I] = true;
      }
    }
    CB.EvaluateWave(ChangedSites, (uint64_t)NumSccs * TagStride + E);
  }
  return Waves;
}
