//===--- BlockCache.h - Sharded block-summary cache -------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 4.3 cache — "we cache the translated types" of each block
/// per compatible calling context — made safe for concurrent block
/// analyses. The key space is sharded and each shard carries its own
/// mutex, so lookups and inserts from different workers only contend when
/// they hash to the same stripe.
///
/// Semantics under races: first insert for a key wins and later inserts
/// of the same key are dropped (block outcomes are deterministic per key,
/// so the dropped value is identical — the insert is "lost" only as work,
/// never as information). An optional per-shard capacity evicts oldest
/// entries first; evictions only cost re-analysis, never soundness, which
/// is exactly the contract of the paper's cache.
///
/// This lives in the shared engine layer (src/engine/) so every mix
/// instantiation — formal MIX, MIXY-for-C, the sign mix — caches block
/// summaries through one implementation.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_ENGINE_BLOCKCACHE_H
#define MIX_ENGINE_BLOCKCACHE_H

#include "observe/Metrics.h"
#include "support/Hash.h"

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace mix::engine {

/// Counter snapshot of one cache (summed over shards).
struct BlockCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Inserts = 0;
  uint64_t DroppedInserts = 0; ///< insert raced an existing entry
  uint64_t Evictions = 0;

  /// "hits=3 misses=5 inserts=5 evictions=0"-style rendering.
  std::string str() const;
};

/// Number of stripes that keeps contention negligible for \p Workers
/// concurrent workers (a power of two comfortably above the worker
/// count).
unsigned blockCacheShardsFor(unsigned Workers);

/// A mutex-striped map from block calling contexts to block summaries.
///
/// \p Hash only selects the stripe; within a stripe, \p Key's operator<
/// orders the entries (the analysis keys already define it).
///
/// Counters are registry-backed (src/observe/): pass a MetricsRegistry
/// and a name prefix to surface "<prefix>hits", "<prefix>misses",
/// "<prefix>inserts", "<prefix>dropped", and "<prefix>evictions" in that
/// registry — the same numbers --stats renders and --trace/--metrics
/// export, by construction. Without a registry the cache owns a private
/// one, so stats() always works.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class BlockCache {
public:
  /// \p Shards is rounded up to a power of two; \p MaxEntriesPerShard of
  /// 0 means unbounded.
  explicit BlockCache(unsigned Shards = 16, size_t MaxEntriesPerShard = 0,
                      Hash Hasher = Hash(),
                      obs::MetricsRegistry *Metrics = nullptr,
                      const std::string &Prefix = "blockcache.")
      : MaxPerShard(MaxEntriesPerShard), Hasher(Hasher) {
    unsigned N = 1;
    while (N < Shards)
      N <<= 1;
    Stripes = std::vector<Shard>(N);
    if (!Metrics) {
      OwnedMetrics = std::make_unique<obs::MetricsRegistry>(N);
      Metrics = OwnedMetrics.get();
    }
    CHits = Metrics->counter(Prefix + "hits");
    CMisses = Metrics->counter(Prefix + "misses");
    CInserts = Metrics->counter(Prefix + "inserts");
    CDropped = Metrics->counter(Prefix + "dropped");
    CEvictions = Metrics->counter(Prefix + "evictions");
  }

  /// Returns the cached summary for \p K, or nullopt on a miss.
  std::optional<Value> lookup(const Key &K) {
    Shard &S = shardFor(K);
    std::unique_lock<std::mutex> Lock(S.M);
    auto It = S.Map.find(K);
    if (It == S.Map.end()) {
      Lock.unlock();
      CMisses.inc();
      return std::nullopt;
    }
    std::optional<Value> Out = It->second;
    Lock.unlock();
    CHits.inc();
    return Out;
  }

  /// Inserts \p K -> \p V. Returns true when this call created the entry;
  /// false when another insert got there first (the existing entry is
  /// kept — summaries are deterministic per key).
  bool insert(const Key &K, Value V) {
    Shard &S = shardFor(K);
    std::unique_lock<std::mutex> Lock(S.M);
    auto [It, Fresh] = S.Map.emplace(K, std::move(V));
    if (!Fresh) {
      Lock.unlock();
      CDropped.inc();
      return false;
    }
    S.Order.push_back(K);
    bool Evicted = false;
    if (MaxPerShard != 0 && S.Map.size() > MaxPerShard) {
      S.Map.erase(S.Order.front());
      S.Order.pop_front();
      Evicted = true;
    }
    Lock.unlock();
    CInserts.inc();
    if (Evicted)
      CEvictions.inc();
    return true;
  }

  /// Entries across all shards.
  size_t size() const {
    size_t N = 0;
    for (const Shard &S : Stripes) {
      std::lock_guard<std::mutex> Lock(S.M);
      N += S.Map.size();
    }
    return N;
  }

  void clear() {
    for (Shard &S : Stripes) {
      std::lock_guard<std::mutex> Lock(S.M);
      S.Map.clear();
      S.Order.clear();
    }
  }

  unsigned shardCount() const { return (unsigned)Stripes.size(); }

  /// Counter totals, read from the backing registry. Call at a barrier
  /// for exact numbers (increments are relaxed atomics on sharded slots).
  BlockCacheStats stats() const {
    BlockCacheStats Total;
    Total.Hits = CHits.value();
    Total.Misses = CMisses.value();
    Total.Inserts = CInserts.value();
    Total.DroppedInserts = CDropped.value();
    Total.Evictions = CEvictions.value();
    return Total;
  }

private:
  struct Shard {
    mutable std::mutex M;
    std::map<Key, Value> Map;
    std::deque<Key> Order; ///< insertion order, for FIFO eviction
  };

  Shard &shardFor(const Key &K) {
    // Avalanche the hash so clustered inputs still spread across stripes
    // when the low bits select the stripe.
    size_t H = (size_t)avalanche64(Hasher(K));
    return Stripes[H & (Stripes.size() - 1)];
  }

  size_t MaxPerShard;
  Hash Hasher;
  std::vector<Shard> Stripes;
  /// Fallback registry when none was supplied (keeps stats() total).
  std::unique_ptr<obs::MetricsRegistry> OwnedMetrics;
  obs::Counter CHits, CMisses, CInserts, CDropped, CEvictions;
};

} // namespace mix::engine

#endif // MIX_ENGINE_BLOCKCACHE_H
