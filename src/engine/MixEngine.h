//===--- MixEngine.h - The shared mix-engine layer --------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's core claim (Section 3) is that MIX is *one* generic
/// recipe: an off-the-shelf checker, an off-the-shelf symbolic executor,
/// and two boundary rules. This header is that recipe's engine room,
/// factored out of the instantiations so the formal MIX checker
/// (src/mix/), MIXY-for-C (src/mixy/), and the sign mix (src/sign/) all
/// run block analyses through the same machinery:
///
///  - the per-context block cache (Section 4.3) for both block sides,
///  - the block stack with recursion cut-off and assumption iteration
///    (Section 4.4): a re-entered block returns the current assumption,
///    and the enclosing evaluation re-runs with the actual result as the
///    updated assumption until the two agree,
///  - hooks for persist replay, provenance stamping, tracing, and
///    per-domain metrics, so cross-cutting subsystems attach once here
///    instead of once per instantiation.
///
/// An AnalysisDomain parameter describes what varies between the mixes:
///
///   struct Domain {
///     using Key = ...;          // block + calling context; == and <
///     using KeyHash = ...;      // stripe selector for the caches
///     using SymOutcome = ...;   // symbolic-block summary; ==
///     using TypedOutcome = ...; // typed-block summary; ==
///     static constexpr const char *Name = "...";  // metrics namespace
///   };
///
/// The engine deliberately does not know how a block is *evaluated* —
/// the domain passes an Eval callback per run (the executor invocation
/// for symbolic blocks, the checker invocation for typed blocks). That
/// keeps the boundary translations, which are the interesting per-domain
/// code, in the instantiations where the paper puts them.
///
/// The dependency-aware fixpoint scheduler that drives block re-runs
/// lives next door in engine/Fixpoint.h.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_ENGINE_MIXENGINE_H
#define MIX_ENGINE_MIXENGINE_H

#include "engine/BlockCache.h"
#include "observe/Metrics.h"
#include "support/Hash.h"

#include <functional>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

namespace mix::engine {

/// A ready-made domain key for AST-based domains: a block's node plus a
/// rendered calling-context signature (Section 4.3's "calling context").
/// The formal MIX checker keys on (BlockExpr, Gamma signature); the sign
/// mix keys on (BlockExpr, SignEnv signature). Domains with richer
/// contexts (MIXY's qualifier seeds) define their own key types.
struct NodeContextKey {
  const void *Node = nullptr;
  std::string Sig;

  bool operator==(const NodeContextKey &O) const {
    return Node == O.Node && Sig == O.Sig;
  }
  bool operator<(const NodeContextKey &O) const {
    return std::tie(Node, Sig) < std::tie(O.Node, O.Sig);
  }

  struct Hash {
    size_t operator()(const NodeContextKey &K) const {
      return hashCombine(std::hash<const void *>()(K.Node),
                         std::hash<std::string>()(K.Sig));
    }
  };
};

/// The per-run callbacks a domain supplies to MixEngine::runSymbolic /
/// runTyped. Only Eval is required; every other hook defaults to a
/// no-op, so simple domains pay nothing for the extension points the
/// richer ones (MIXY's persistence and provenance) need.
///
/// Call order for one block run:
///
///   cache lookup  -> OnCacheHit(value), return           (hit)
///   stack scan    -> OnRecursion(), return assumption    (re-entry)
///   Replay()      -> cache insert, return                (persist hit)
///   push(Init())  -> OnEvalBegin()
///   iterate       -> OnIteration(i); Eval()              (Section 4.4)
///   pop           -> OnEvalEnd(value)  [stack is the caller's again]
///   cache insert when ShouldCache(value)
template <typename V> struct RunHooks {
  /// One evaluation of the block against the current assumption.
  std::function<V()> Eval;
  /// Initial assumption for a fresh stack entry (defaults to V{}).
  std::function<V()> Init;
  /// Cross-run replay (the persistent cache): a non-nullopt result is
  /// used in place of evaluation and inserted into the in-memory cache.
  std::function<std::optional<V>()> Replay;
  /// An in-memory cache hit is about to be returned.
  std::function<void(const V &)> OnCacheHit;
  /// The block re-entered itself (Section 4.4 cut-off).
  std::function<void()> OnRecursion;
  /// An evaluation iteration is starting (0-based).
  std::function<void(unsigned)> OnIteration;
  /// The block was pushed; runs before the first iteration.
  std::function<void()> OnEvalBegin;
  /// The block was popped; runs before the cache insert, with the stack
  /// restored to the caller's view (so provenance can stamp it).
  std::function<void(const V &)> OnEvalEnd;
  /// Whether the final value may be cached (defaults to yes). Domains
  /// that report diagnostics per evaluation return false for failure
  /// outcomes so later calls re-diagnose instead of silently hitting.
  std::function<bool(const V &)> ShouldCache;
  /// Extra stop condition for assumption iteration: returning false ends
  /// the loop even if the assumption has not stabilized (e.g. a failed
  /// evaluation that re-running cannot improve).
  std::function<bool(const V &)> KeepIterating;
};

/// Live engine counters (all registry-backed; inert without a registry):
///   engine.<domain>.blocks       block evaluations begun (cache misses)
///   engine.<domain>.recursions   Section 4.4 stack cut-offs
///   engine.cache.<domain>.hits   in-memory cache hits, both block sides
struct EngineCounters {
  obs::Counter Blocks;
  obs::Counter Recursions;
  obs::Counter CacheHits;
};

/// The generic mix engine: block cache + block stack + assumption
/// iteration, parameterized over an AnalysisDomain.
///
/// Thread model: the caches are internally sharded and safe to share;
/// the block stack is the *caller's* (passed per call), so parallel
/// drivers hand each worker its own stack — recursion cannot span
/// threads because a block's nested blocks run on the worker that runs
/// the block.
template <typename Domain> class MixEngine {
public:
  using Key = typename Domain::Key;
  using KeyHash = typename Domain::KeyHash;
  using SymOutcome = typename Domain::SymOutcome;
  using TypedOutcome = typename Domain::TypedOutcome;

  /// One in-flight block analysis (Section 4.4): the key, whether a
  /// nested analysis re-entered it, and the current assumption for
  /// whichever side the block is on.
  struct StackEntry {
    Key K{};
    bool Symbolic = true;
    bool Recursive = false;
    SymOutcome Sym{};
    TypedOutcome Typed{};
  };
  using BlockStack = std::vector<StackEntry>;

  struct Config {
    /// Cache block results per calling context (Section 4.3).
    bool EnableCache = true;
    /// Assumption-iteration bound (Section 4.4).
    unsigned MaxRecursionIterations = 8;
    /// Cache stripes (see blockCacheShardsFor).
    unsigned Shards = 1;
    obs::MetricsRegistry *Metrics = nullptr;
    /// Counter prefixes of the two caches. MIXY keeps its historical
    /// "mixy.cache.sym." / "mixy.cache.typed." names through these.
    std::string SymCachePrefix;
    std::string TypedCachePrefix;
  };

  explicit MixEngine(Config C)
      : Cfg(std::move(C)),
        SymCache(Cfg.Shards, 0, KeyHash(), Cfg.Metrics,
                 Cfg.SymCachePrefix.empty()
                     ? "engine.cache." + std::string(Domain::Name) + ".sym."
                     : Cfg.SymCachePrefix),
        TypedCache(Cfg.Shards, 0, KeyHash(), Cfg.Metrics,
                   Cfg.TypedCachePrefix.empty()
                       ? "engine.cache." + std::string(Domain::Name) +
                             ".typed."
                       : Cfg.TypedCachePrefix) {
    if (Cfg.Metrics) {
      std::string D(Domain::Name);
      Counters.Blocks = Cfg.Metrics->counter("engine." + D + ".blocks");
      Counters.Recursions =
          Cfg.Metrics->counter("engine." + D + ".recursions");
      Counters.CacheHits = Cfg.Metrics->counter("engine.cache." + D + ".hits");
    }
  }

  /// Runs (or reuses) the symbolic-side analysis of \p K on \p Stack.
  SymOutcome runSymbolic(const Key &K, BlockStack &Stack,
                         const RunHooks<SymOutcome> &H) {
    return runImpl<SymOutcome>(K, Stack, H, SymCache, &StackEntry::Sym,
                               /*Symbolic=*/true);
  }

  /// Runs (or reuses) the typed-side analysis of \p K on \p Stack.
  TypedOutcome runTyped(const Key &K, BlockStack &Stack,
                        const RunHooks<TypedOutcome> &H) {
    return runImpl<TypedOutcome>(K, Stack, H, TypedCache, &StackEntry::Typed,
                                 /*Symbolic=*/false);
  }

  BlockCacheStats symCacheStats() const { return SymCache.stats(); }
  BlockCacheStats typedCacheStats() const { return TypedCache.stats(); }
  const EngineCounters &counters() const { return Counters; }

  void clearCaches() {
    SymCache.clear();
    TypedCache.clear();
  }

private:
  template <typename V>
  V runImpl(const Key &K, BlockStack &Stack, const RunHooks<V> &H,
            BlockCache<Key, V, KeyHash> &Cache, V StackEntry::*Slot,
            bool Symbolic) {
    if (Cfg.EnableCache) {
      if (auto Cached = Cache.lookup(K)) {
        Counters.CacheHits.inc();
        if (H.OnCacheHit)
          H.OnCacheHit(*Cached);
        return *Cached;
      }
    }

    // Recursion detection (Section 4.4): the same block with a
    // compatible calling context is already in flight on this stack.
    // Mark the entry so its owner iterates, and answer with the
    // assumption.
    for (StackEntry &Entry : Stack) {
      if (Entry.Symbolic == Symbolic && Entry.K == K) {
        Entry.Recursive = true;
        Counters.Recursions.inc();
        if (H.OnRecursion)
          H.OnRecursion();
        return Entry.*Slot;
      }
    }

    // Cross-run replay (the persistent cache), after the recursion check
    // so a recursive re-entry still returns the in-flight assumption
    // exactly as a cold run would.
    if (H.Replay) {
      if (std::optional<V> Replayed = H.Replay()) {
        if (Cfg.EnableCache && (!H.ShouldCache || H.ShouldCache(*Replayed)))
          Cache.insert(K, *Replayed);
        return *Replayed;
      }
    }

    Stack.push_back(StackEntry{});
    Stack.back().K = K;
    Stack.back().Symbolic = Symbolic;
    if (H.Init)
      Stack.back().*Slot = H.Init();
    Counters.Blocks.inc();
    if (H.OnEvalBegin)
      H.OnEvalBegin();

    // "If the assumption is compatible with the actual result, we return
    // the result; otherwise, we re-analyze the block using the actual
    // result as the updated assumption." (Section 4.4)
    V Out{};
    for (unsigned Iter = 0; Iter != Cfg.MaxRecursionIterations; ++Iter) {
      Stack.back().Recursive = false;
      if (H.OnIteration)
        H.OnIteration(Iter);
      Out = H.Eval();
      if (!Stack.back().Recursive || Out == Stack.back().*Slot ||
          (H.KeepIterating && !H.KeepIterating(Out)))
        break;
      Stack.back().*Slot = Out;
    }
    Stack.pop_back();
    if (H.OnEvalEnd)
      H.OnEvalEnd(Out);

    if (Cfg.EnableCache && (!H.ShouldCache || H.ShouldCache(Out)))
      Cache.insert(K, Out);
    return Out;
  }

  Config Cfg;
  BlockCache<Key, SymOutcome, KeyHash> SymCache;
  BlockCache<Key, TypedOutcome, KeyHash> TypedCache;
  EngineCounters Counters;
};

} // namespace mix::engine

#endif // MIX_ENGINE_MIXENGINE_H
