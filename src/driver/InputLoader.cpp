//===--- InputLoader.cpp - Shared tool input loading ------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "driver/InputLoader.h"

#include <fstream>
#include <iostream>
#include <sstream>

bool mix::driver::loadInput(const std::string &Tool, const std::string &Path,
                            std::string &SourceOut,
                            const CorpusResolver &Corpus) {
  if (!Path.empty() && Path[0] == '@' && Corpus) {
    if (!Corpus(Path.substr(1), SourceOut)) {
      std::cerr << Tool << ": unknown corpus '" << Path << "'\n";
      return false;
    }
    return true;
  }
  if (Path == "-") {
    std::ostringstream Buf;
    Buf << std::cin.rdbuf();
    SourceOut = Buf.str();
    return true;
  }
  std::ifstream In(Path);
  if (!In) {
    std::cerr << Tool << ": cannot open '" << Path << "'\n";
    return false;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  SourceOut = Buf.str();
  return true;
}
