//===--- Driver.cpp - Shared tool driver plumbing ---------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include <fstream>
#include <iostream>

using namespace mix::driver;

void DriverContext::registerOptions(OptionParser &P) {
  P.value(
      "--trace",
      [this](const std::string &V) {
        if (V.empty())
          return false;
        TraceFile = V;
        return true;
      },
      "FILE", "write a JSON event trace of the run to FILE");
  P.value(
      "--metrics",
      [this](const std::string &V) {
        if (V.empty())
          return false;
        MetricsFile = V;
        return true;
      },
      "FILE", "write the metrics registry as JSON to FILE");
  P.value(
      "--format",
      [this](const std::string &V) {
        if (V == "text")
          Json = false;
        else if (V == "json")
          Json = true;
        else
          return false;
        return true;
      },
      "text|json",
      "diagnostic output format: text to stderr (default) or one JSON\n"
      "document to stdout");
  P.flag("--stats", &Stats, "print analysis statistics after the run");
  P.value(
      "--cache-dir",
      [this](const std::string &V) {
        if (V.empty())
          return false;
        CacheDir = V;
        return true;
      },
      "DIR",
      "persist solver results (and, with --incremental, block summaries)\n"
      "under DIR and reuse them on later runs");
}

mix::persist::PersistSession *
DriverContext::openPersist(bool Incremental, uint64_t BlockFingerprint,
                           DiagnosticEngine &Diags) {
  if (CacheDir.empty())
    return nullptr;
  persist::PersistOptions PO;
  PO.Dir = CacheDir;
  PO.Incremental = Incremental;
  PO.BlockFingerprint = BlockFingerprint;
  PO.Metrics = &Registry;
  Persist = std::make_unique<persist::PersistSession>(std::move(PO));
  if (!Persist->degradedReason().empty())
    Diags.note(SourceLoc(),
               "persistent cache unusable (" + Persist->degradedReason() +
                   "); analysis starts cold",
               DiagID::CacheDegraded);
  return Persist.get();
}

bool DriverContext::writeArtifacts(const std::string &Tool) {
  bool Ok = true;
  if (Persist) {
    // A failed save only costs the next run its warm start; the analysis
    // already finished, so warn without touching the exit code.
    std::string Error;
    if (!Persist->save(&Error))
      std::cerr << Tool << ": warning: cache not saved: " << Error << "\n";
  }
  if (!TraceFile.empty())
    Ok = writeFile(Tool, TraceFile, Sink.renderJSON()) && Ok;
  if (!MetricsFile.empty())
    Ok = writeFile(Tool, MetricsFile, Registry.renderJSON()) && Ok;
  return Ok;
}

void DriverContext::emitDiagnostics(const DiagnosticEngine &Diags) {
  if (Json)
    std::cout << Diags.renderJSON() << "\n";
  else
    std::cerr << Diags.str();
}

bool mix::driver::writeFile(const std::string &Tool, const std::string &Path,
                            const std::string &Content) {
  std::ofstream Out(Path);
  if (!Out) {
    std::cerr << Tool << ": cannot write '" << Path << "'\n";
    return false;
  }
  Out << Content;
  return Out.good();
}
