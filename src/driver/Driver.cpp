//===--- Driver.cpp - Shared tool driver plumbing ---------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include <fstream>
#include <iostream>

using namespace mix::driver;

void DriverContext::registerOptions(OptionParser &P) {
  P.value("--trace", [this](const std::string &V) {
    if (V.empty())
      return false;
    TraceFile = V;
    return true;
  });
  P.value("--metrics", [this](const std::string &V) {
    if (V.empty())
      return false;
    MetricsFile = V;
    return true;
  });
  P.value("--format", [this](const std::string &V) {
    if (V == "text")
      Json = false;
    else if (V == "json")
      Json = true;
    else
      return false;
    return true;
  });
  P.flag("--stats", &Stats);
}

bool DriverContext::writeArtifacts(const std::string &Tool) {
  bool Ok = true;
  if (!TraceFile.empty())
    Ok = writeFile(Tool, TraceFile, Sink.renderJSON()) && Ok;
  if (!MetricsFile.empty())
    Ok = writeFile(Tool, MetricsFile, Registry.renderJSON()) && Ok;
  return Ok;
}

void DriverContext::emitDiagnostics(const DiagnosticEngine &Diags) {
  if (Json)
    std::cout << Diags.renderJSON() << "\n";
  else
    std::cerr << Diags.str();
}

bool mix::driver::writeFile(const std::string &Tool, const std::string &Path,
                            const std::string &Content) {
  std::ofstream Out(Path);
  if (!Out) {
    std::cerr << Tool << ": cannot write '" << Path << "'\n";
    return false;
  }
  Out << Content;
  return Out.good();
}
