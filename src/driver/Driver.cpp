//===--- Driver.cpp - Shared tool driver plumbing ---------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "driver/Driver.h"

#include <cstdio>
#include <fstream>
#include <iostream>

using namespace mix::driver;

void DriverContext::registerOptions(OptionParser &P) {
  P.value(
      "--trace",
      [this](const std::string &V) {
        if (V.empty())
          return false;
        TraceFile = V;
        return true;
      },
      "FILE", "write a JSON event trace of the run to FILE");
  P.value(
      "--profile",
      [this](const std::string &V) {
        if (V.empty())
          return false;
        ProfileFile = V;
        // Speedscope rendering needs phase spans, and phase spans need
        // per-request telemetry turned on.
        Svc.enableRequestTelemetry();
        return true;
      },
      "FILE",
      "write a speedscope-compatible JSON profile of the run's phase\n"
      "spans to FILE (open at https://www.speedscope.app)");
  P.value(
      "--metrics",
      [this](const std::string &V) {
        if (V.empty())
          return false;
        MetricsFile = V;
        return true;
      },
      "FILE", "write the metrics registry as JSON to FILE");
  P.beginGroup("cli-output");
  P.value(
      "--format",
      [this](const std::string &V) {
        if (V == "text")
          Format = OutputFormat::Text;
        else if (V == "json")
          Format = OutputFormat::Json;
        else if (V == "sarif")
          Format = OutputFormat::Sarif;
        else
          return false;
        return true;
      },
      "text|json|sarif",
      "diagnostic output format: text to stderr (default), one JSON\n"
      "document to stdout, or a SARIF 2.1.0 log (with witness paths and\n"
      "qualifier flow chains as code flows) to stdout");
  P.flag("--explain", &Explain,
         "follow each diagnostic with its evidence: the symbolic witness\n"
         "path (with a concrete counterexample) or the qualifier flow\n"
         "chain, plus the MIX block it came from");
  P.flag(
      "--stats",
      [this]() {
        Stats = true;
        // The --stats phase-breakdown table reads the response's
        // per-phase attribution, which only exists with telemetry on.
        Svc.enableRequestTelemetry();
      },
      "print analysis statistics after the run");
  P.endGroup();
  P.value(
      "--cache-dir",
      [this](const std::string &V) {
        if (V.empty())
          return false;
        CacheDir = V;
        return true;
      },
      "DIR",
      "persist solver results (and, with --incremental, block summaries)\n"
      "under DIR and reuse them on later runs");
  P.value(
      "--exec",
      [this](const std::string &V) {
        std::string Err;
        if (!parseExecEngine(V, Exec, Err)) {
          // The parser's generic "bad --exec value" line follows; this
          // one names the choices (mirroring --solver).
          std::cerr << Err << "\n";
          return false;
        }
        return true;
      },
      "ast|ir",
      "execution engine for symbolic code (default: ast): the AST walker,\n"
      "or the compiled register IR with concolic shadow values; both\n"
      "produce byte-identical diagnostics, so this changes throughput,\n"
      "never findings");
  P.value(
      "--solver",
      [this](const std::string &V) {
        std::string Err;
        if (!smt::parseSolverBackend(V, Solver, Err)) {
          // The parser's generic "bad --solver value" line follows; this
          // one names the choices.
          std::cerr << Err << "\n";
          return false;
        }
        return true;
      },
      "BACKEND",
      "solver backend to decide path conditions with (default: smtlite;\n"
      "every backend produces the same verdicts, so this changes latency\n"
      "and diagnostics' \"decided by\" attribution, never findings)");
  P.flag("--solver-portfolio",
         [this]() { Solver.Portfolio = true; },
         "race every registered backend against the --solver choice per\n"
         "query and take the first definitive answer; witness models still\n"
         "come from the primary backend, so output stays byte-identical");
}

void mix::driver::registerCommonOptions(OptionParser &P, DriverContext &Driver,
                                        unsigned *Jobs,
                                        const std::string &JobsHelp) {
  P.jobs(Jobs, JobsHelp);
  Driver.registerOptions(P);
}

void DriverContext::applyCommonRequest(service::AnalysisRequest &Req) const {
  switch (Format) {
  case OutputFormat::Text:
    Req.OutputFormat = service::Format::Text;
    break;
  case OutputFormat::Json:
    Req.OutputFormat = service::Format::Json;
    break;
  case OutputFormat::Sarif:
    Req.OutputFormat = service::Format::Sarif;
    break;
  }
  Req.Explain = Explain;
  Req.Trace = !TraceFile.empty() || !ProfileFile.empty();
  Req.CacheDir = CacheDir;
  Req.Solver = Solver;
  Req.ExecMode = Exec;
  Req.InputName = InputName;
}

void DriverContext::emitPayload(const std::string &Payload) {
  // Machine formats own stdout (exactly one document); text diagnostics
  // keep their historical home on stderr.
  (jsonOutput() ? std::cout : std::cerr) << Payload;
}

bool DriverContext::writeArtifacts(const std::string &Tool) {
  bool Ok = true;
  {
    // A failed save only costs the next run its warm start; the analysis
    // already finished, so warn without touching the exit code.
    std::string Error;
    if (!Svc.save(&Error))
      std::cerr << Tool << ": warning: cache not saved: " << Error << "\n";
  }
  if (!TraceFile.empty())
    Ok = writeFile(Tool, TraceFile, Svc.traceSink().renderJSON()) && Ok;
  if (!ProfileFile.empty())
    Ok = writeFile(Tool, ProfileFile,
                   Svc.traceSink().renderSpeedscope(Tool)) && Ok;
  if (!MetricsFile.empty())
    Ok = writeFile(Tool, MetricsFile, Svc.metrics().renderJSON()) && Ok;
  return Ok;
}

mix::prov::ProvenanceSink *DriverContext::provenanceSink() {
  if (!Explain && Format != OutputFormat::Sarif)
    return nullptr;
  return Svc.provenanceSink();
}

std::string
mix::driver::renderPhaseBreakdown(const service::AnalysisResponse &Resp) {
  bool Any = false;
  for (uint64_t V : Resp.PhaseUs)
    Any |= V != 0;
  if (!Any && !Resp.TotalUs)
    return std::string();
  std::string Out = "phase breakdown (inclusive, total " +
                    std::to_string(Resp.TotalUs) + " us):\n";
  for (unsigned I = 0; I != obs::NumPhases; ++I) {
    if (!Resp.PhaseUs[I])
      continue;
    double Pct = Resp.TotalUs
                     ? 100.0 * (double)Resp.PhaseUs[I] / (double)Resp.TotalUs
                     : 0.0;
    char Line[96];
    std::snprintf(Line, sizeof(Line), "  %-10s : %10llu us (%5.1f%%)\n",
                  obs::phaseName((obs::Phase)I),
                  (unsigned long long)Resp.PhaseUs[I], Pct);
    Out += Line;
  }
  return Out;
}

bool mix::driver::writeFile(const std::string &Tool, const std::string &Path,
                            const std::string &Content) {
  std::ofstream Out(Path);
  if (!Out) {
    std::cerr << Tool << ": cannot write '" << Path << "'\n";
    return false;
  }
  Out << Content;
  return Out.good();
}
