//===--- InputLoader.h - Shared tool input loading --------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The input half of the shared driver layer: one function resolving the
/// three input shapes both tools accept — a file path, "-" for stdin, and
/// "@name" for an entry in a built-in corpus (resolved through a
/// tool-supplied callback; tools without a corpus pass none and "@name"
/// is treated as a file path).
///
//===----------------------------------------------------------------------===//

#ifndef MIX_DRIVER_INPUTLOADER_H
#define MIX_DRIVER_INPUTLOADER_H

#include <functional>
#include <string>

namespace mix::driver {

/// Resolves the corpus spec after '@' (e.g. "case1:baseline") to source
/// text. Return false for an unknown spec.
using CorpusResolver =
    std::function<bool(const std::string &Spec, std::string &SourceOut)>;

/// Loads \p Path into \p SourceOut: "-" reads stdin, "@spec" consults
/// \p Corpus (when provided), anything else is opened as a file. On
/// failure prints "<tool>: ..." to stderr and returns false (the caller
/// exits with ExitUsage).
bool loadInput(const std::string &Tool, const std::string &Path,
               std::string &SourceOut,
               const CorpusResolver &Corpus = CorpusResolver());

} // namespace mix::driver

#endif // MIX_DRIVER_INPUTLOADER_H
