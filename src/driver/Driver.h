//===--- Driver.h - Shared tool driver plumbing -----------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CLI half of the shared driver layer. Both tools own a
/// DriverContext; it registers the cross-cutting flags (--trace=FILE,
/// --metrics=FILE, --format=text|json|sarif, --explain, --stats,
/// --cache-dir, --solver, --solver-portfolio), owns the process's
/// AnalysisService, and writes the requested artifacts at exit.
///
/// The analysis itself no longer lives here: since the service layer
/// (src/service) became the one request path, the context's job is to
/// translate flags into an AnalysisRequest (applyCommonRequest), route
/// the response's payload to the historical stream (emitPayload), and
/// flush artifacts. The observability accessors forward into the owned
/// service so library code and tests see one registry/sink per process:
///
///  - The registry is always live: --stats renders from it and the
///    library counters (block caches, solver, analyses) are cheap relaxed
///    atomics, so there is no "metrics off" tool mode to keep consistent.
///  - The trace sink is attached only when --trace was given; a null sink
///    pointer is the library-level off switch (one branch per site).
///  - The provenance sink is attached only when the output needs recorded
///    evidence (--explain or --format=sarif); null is the same
///    one-branch-per-site off switch.
///  - With --format=json or --format=sarif, stdout carries exactly one
///    JSON document, so machine consumers can pipe it straight into a
///    JSON parser; human-oriented extras (--stats) move to stderr.
///    Machine formats emit diagnostics sorted by (location, id) so the
///    document is byte-identical across --jobs.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_DRIVER_DRIVER_H
#define MIX_DRIVER_DRIVER_H

#include "driver/OptionParser.h"
#include "observe/Metrics.h"
#include "observe/Trace.h"
#include "provenance/Provenance.h"
#include "service/AnalysisService.h"
#include "solver/SolverFactory.h"

#include <string>

namespace mix::driver {

/// Cross-cutting driver state: the owned analysis service plus the
/// output-format switches, shared verbatim by both CLIs.
class DriverContext {
public:
  enum class OutputFormat { Text, Json, Sarif };

  /// The CLIs default-construct (one-shot service, shared registry);
  /// mixyd passes its daemon configuration (warm sessions, per-request
  /// metrics) so artifact writing and observability still route through
  /// one context.
  explicit DriverContext(service::ServiceConfig Config = {}) : Svc(Config) {}

  /// Registers --trace, --metrics, --format, --explain, --stats,
  /// --cache-dir, --solver, and --solver-portfolio on \p P. The
  /// CLI-output trio (--format, --explain, --stats) registers under the
  /// option group "cli-output", so a front end with per-request output
  /// (mixyd) can excludeGroup("cli-output") and still reuse this
  /// registrar without inheriting flags that make no sense for it.
  void registerOptions(OptionParser &P);

  /// The service this context runs requests against (CLI configuration:
  /// no warm sessions, shared metrics registry).
  service::AnalysisService &service() { return Svc; }

  /// Copies the parsed cross-cutting flags into \p Req: output format,
  /// --explain, --trace attachment, --cache-dir, the solver spec, and
  /// the input name recorded by setInputName.
  void applyCommonRequest(service::AnalysisRequest &Req) const;

  /// Writes a response's diagnostics payload to the historical stream:
  /// machine formats (json/sarif) are the one document on stdout, text
  /// goes to stderr.
  void emitPayload(const std::string &Payload);

  /// The solver backend selection parsed from --solver / --solver-portfolio
  /// (defaults: smtlite, portfolio off). --solver validates its value
  /// against the registered backends at parse time, so by the time a tool
  /// reads this the spec is known-constructible.
  const smt::SolverSpec &solverSpec() const { return Solver; }

  /// The execution engine parsed from --exec (default: ast). Validated at
  /// parse time like --solver, so the value is always constructible.
  SymExecOptions::Engine execMode() const { return Exec; }

  /// The registry every analysis in the process reports into.
  obs::MetricsRegistry &metrics() { return Svc.metrics(); }

  /// The trace sink to hand to analyses: the real sink when --trace or
  /// --profile was given (both need recorded spans), null otherwise
  /// (which turns every instrumentation site into a branch).
  obs::TraceSink *traceSink() {
    return TraceFile.empty() && ProfileFile.empty() ? nullptr
                                                    : &Svc.traceSink();
  }

  /// The provenance sink to hand to analyses: live (counting into the
  /// registry's provenance.* counters) when the selected output renders
  /// evidence — --explain or --format=sarif — and null otherwise, which
  /// keeps recording at one branch per site.
  prov::ProvenanceSink *provenanceSink();

  bool statsRequested() const { return Stats; }
  OutputFormat format() const { return Format; }
  bool jsonOutput() const { return Format != OutputFormat::Text; }
  bool explainRequested() const { return Explain; }

  /// Remembers the input path so SARIF output can cite it as the
  /// artifact URI ("input" when never set, e.g. stdin).
  void setInputName(const std::string &Name) { InputName = Name; }

  /// Did the user pass --cache-dir?
  bool cacheDirRequested() const { return !CacheDir.empty(); }
  const std::string &cacheDir() const { return CacheDir; }

  /// Writes the --trace and --metrics artifacts, if requested, and saves
  /// the service's persistent cache sessions (if any). Returns false
  /// (with an error on stderr) when a file cannot be written; a cache
  /// save failure warns on stderr but does not fail the run.
  bool writeArtifacts(const std::string &Tool);

private:
  service::AnalysisService Svc;
  std::string TraceFile;
  std::string ProfileFile;
  std::string MetricsFile;
  std::string CacheDir;
  std::string InputName;
  smt::SolverSpec Solver;
  SymExecOptions::Engine Exec = SymExecOptions::Engine::Ast;
  bool Stats = false;
  bool Explain = false;
  OutputFormat Format = OutputFormat::Text;
};

/// Registers the flags every tool shares in one place, so the CLIs
/// cannot drift apart: the --jobs parser (stored into \p *Jobs, with
/// \p JobsHelp as its tool-specific description) and DriverContext's
/// cross-cutting set (--trace, --metrics, --format, --explain, --stats,
/// --cache-dir).
void registerCommonOptions(OptionParser &P, DriverContext &Driver,
                           unsigned *Jobs, const std::string &JobsHelp);

/// Writes \p Content to \p Path. Returns false after printing
/// "<tool>: cannot write '...'" to stderr.
bool writeFile(const std::string &Tool, const std::string &Path,
               const std::string &Content);

/// The --stats "phase breakdown" table: one line per phase the response
/// attributes time to, with its share of the request's wall time. Phases
/// nest (typecheck contains fixpoint contains block-exec contains
/// solver), so the percentages are inclusive and do not sum to 100.
/// Empty when the response carries no attribution (telemetry off).
std::string renderPhaseBreakdown(const service::AnalysisResponse &Resp);

} // namespace mix::driver

#endif // MIX_DRIVER_DRIVER_H
