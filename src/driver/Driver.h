//===--- Driver.h - Shared tool driver plumbing -----------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability and output half of the shared driver layer. Both
/// tools own a DriverContext; it registers the cross-cutting flags
/// (--trace=FILE, --metrics=FILE, --format=text|json|sarif, --explain,
/// --stats), carries the metrics registry and trace sink the analyses
/// report into, and writes the requested artifacts at exit.
///
///  - The registry is always live: --stats renders from it and the
///    library counters (block caches, solver, analyses) are cheap relaxed
///    atomics, so there is no "metrics off" tool mode to keep consistent.
///  - The trace sink is attached only when --trace was given; a null sink
///    pointer is the library-level off switch (one branch per site).
///  - The provenance sink is attached only when the output needs recorded
///    evidence (--explain or --format=sarif); null is the same
///    one-branch-per-site off switch.
///  - With --format=json or --format=sarif, stdout carries exactly one
///    JSON document, so machine consumers can pipe it straight into a
///    JSON parser; human-oriented extras (--stats) move to stderr.
///    Machine formats emit diagnostics sorted by (location, id) so the
///    document is byte-identical across --jobs.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_DRIVER_DRIVER_H
#define MIX_DRIVER_DRIVER_H

#include "driver/OptionParser.h"
#include "observe/Metrics.h"
#include "observe/Trace.h"
#include "persist/PersistSession.h"
#include "provenance/Provenance.h"
#include "solver/SolverFactory.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace mix::driver {

/// Cross-cutting driver state: observability sinks plus the output-format
/// switches, shared verbatim by both CLIs.
class DriverContext {
public:
  enum class OutputFormat { Text, Json, Sarif };

  /// Registers --trace, --metrics, --format, --explain, --stats,
  /// --cache-dir, --solver, and --solver-portfolio on \p P.
  void registerOptions(OptionParser &P);

  /// The solver backend selection parsed from --solver / --solver-portfolio
  /// (defaults: smtlite, portfolio off). --solver validates its value
  /// against the registered backends at parse time, so by the time a tool
  /// reads this the spec is known-constructible.
  const smt::SolverSpec &solverSpec() const { return Solver; }

  /// The registry every analysis in the process reports into.
  obs::MetricsRegistry &metrics() { return Registry; }

  /// The trace sink to hand to analyses: the real sink when --trace was
  /// given, null otherwise (which turns every instrumentation site into a
  /// branch).
  obs::TraceSink *traceSink() { return TraceFile.empty() ? nullptr : &Sink; }

  /// The provenance sink to hand to analyses: live (counting into the
  /// registry's provenance.* counters) when the selected output renders
  /// evidence — --explain or --format=sarif — and null otherwise, which
  /// keeps recording at one branch per site.
  prov::ProvenanceSink *provenanceSink();

  bool statsRequested() const { return Stats; }
  OutputFormat format() const { return Format; }
  bool jsonOutput() const { return Format != OutputFormat::Text; }
  bool explainRequested() const { return Explain; }

  /// Remembers the input path so SARIF output can cite it as the
  /// artifact URI ("input" when never set, e.g. stdin).
  void setInputName(const std::string &Name) { InputName = Name; }

  /// Did the user pass --cache-dir?
  bool cacheDirRequested() const { return !CacheDir.empty(); }
  const std::string &cacheDir() const { return CacheDir; }

  /// Opens the persistent cache session for this run, or returns null
  /// when --cache-dir was not given. Loads whatever the directory holds;
  /// a rejected cache (corruption, version skew, unusable directory)
  /// degrades to a cold session and reports one free-standing MIX502
  /// note on \p Diags — never an error, findings are unaffected. The
  /// session is owned by the context and saved by writeArtifacts.
  persist::PersistSession *openPersist(bool Incremental,
                                       uint64_t BlockFingerprint,
                                       DiagnosticEngine &Diags);

  /// Writes the --trace and --metrics artifacts, if requested, and saves
  /// the persistent cache session (if open). Returns false (with an
  /// error on stderr) when a file cannot be written; a cache save
  /// failure warns on stderr but does not fail the run.
  bool writeArtifacts(const std::string &Tool);

  /// Renders \p Diags the way the selected --format dictates: text to
  /// stderr (the historical shape; with --explain each diagnostic is
  /// followed by its recorded evidence), or one JSON/SARIF document to
  /// stdout (sorted by location so the bytes are --jobs-invariant).
  /// \p Tool names the SARIF tool.driver.
  void emitDiagnostics(const DiagnosticEngine &Diags,
                       const std::string &Tool = "mix");

private:
  obs::MetricsRegistry Registry;
  obs::TraceSink Sink;
  prov::ProvenanceSink Prov;
  std::string TraceFile;
  std::string MetricsFile;
  std::string CacheDir;
  std::string InputName;
  smt::SolverSpec Solver;
  std::unique_ptr<persist::PersistSession> Persist;
  bool Stats = false;
  bool Explain = false;
  bool ProvAttached = false;
  OutputFormat Format = OutputFormat::Text;
};

/// Registers the flags every tool shares in one place, so the CLIs
/// cannot drift apart: the --jobs parser (stored into \p *Jobs, with
/// \p JobsHelp as its tool-specific description) and DriverContext's
/// cross-cutting set (--trace, --metrics, --format, --explain, --stats,
/// --cache-dir).
void registerCommonOptions(OptionParser &P, DriverContext &Driver,
                           unsigned *Jobs, const std::string &JobsHelp);

/// Writes \p Content to \p Path. Returns false after printing
/// "<tool>: cannot write '...'" to stderr.
bool writeFile(const std::string &Tool, const std::string &Path,
               const std::string &Content);

} // namespace mix::driver

#endif // MIX_DRIVER_DRIVER_H
