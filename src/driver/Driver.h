//===--- Driver.h - Shared tool driver plumbing -----------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability and output half of the shared driver layer. Both
/// tools own a DriverContext; it registers the cross-cutting flags
/// (--trace=FILE, --metrics=FILE, --format=text|json, --stats), carries
/// the metrics registry and trace sink the analyses report into, and
/// writes the requested artifacts at exit.
///
///  - The registry is always live: --stats renders from it and the
///    library counters (block caches, solver, analyses) are cheap relaxed
///    atomics, so there is no "metrics off" tool mode to keep consistent.
///  - The trace sink is attached only when --trace was given; a null sink
///    pointer is the library-level off switch (one branch per site).
///  - With --format=json, stdout carries exactly one JSON document (the
///    diagnostics array), so machine consumers can pipe it straight into
///    a JSON parser; human-oriented extras (--stats) move to stderr.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_DRIVER_DRIVER_H
#define MIX_DRIVER_DRIVER_H

#include "driver/OptionParser.h"
#include "observe/Metrics.h"
#include "observe/Trace.h"
#include "support/Diagnostics.h"

#include <string>

namespace mix::driver {

/// Cross-cutting driver state: observability sinks plus the output-format
/// switches, shared verbatim by both CLIs.
class DriverContext {
public:
  /// Registers --trace, --metrics, --format, and --stats on \p P.
  void registerOptions(OptionParser &P);

  /// The registry every analysis in the process reports into.
  obs::MetricsRegistry &metrics() { return Registry; }

  /// The trace sink to hand to analyses: the real sink when --trace was
  /// given, null otherwise (which turns every instrumentation site into a
  /// branch).
  obs::TraceSink *traceSink() { return TraceFile.empty() ? nullptr : &Sink; }

  bool statsRequested() const { return Stats; }
  bool jsonOutput() const { return Json; }

  /// Writes the --trace and --metrics artifacts, if requested. Returns
  /// false (with an error on stderr) when a file cannot be written.
  bool writeArtifacts(const std::string &Tool);

  /// Renders \p Diags the way the selected --format dictates: text to
  /// stderr (the historical shape), or one JSON document to stdout.
  void emitDiagnostics(const DiagnosticEngine &Diags);

private:
  obs::MetricsRegistry Registry;
  obs::TraceSink Sink;
  std::string TraceFile;
  std::string MetricsFile;
  bool Stats = false;
  bool Json = false;
};

/// Writes \p Content to \p Path. Returns false after printing
/// "<tool>: cannot write '...'" to stderr.
bool writeFile(const std::string &Tool, const std::string &Path,
               const std::string &Content);

} // namespace mix::driver

#endif // MIX_DRIVER_DRIVER_H
