//===--- OptionParser.h - Shared CLI option parsing -------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flag-parsing half of the shared driver layer. Both tools register
/// their options here instead of hand-rolling an argv loop, which buys:
///
///  - one exit-code contract (ExitCode below),
///  - one error shape ("<tool>: unknown option '--x'"), with a
///    "did you mean" suggestion computed by edit distance over the
///    registered names,
///  - one --jobs parser (0 resolves to one worker per hardware thread).
///
/// Usage errors print to stderr and parse() returns false; the caller
/// exits with ExitUsage.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_DRIVER_OPTIONPARSER_H
#define MIX_DRIVER_OPTIONPARSER_H

#include <functional>
#include <string>
#include <vector>

namespace mix::driver {

/// The exit-code contract every tool follows: analysis findings are 1,
/// anything that prevented the analysis from running (bad flags, file not
/// found, parse errors) is 2.
enum ExitCode : int {
  ExitClean = 0,    ///< analysis ran; no findings
  ExitFindings = 1, ///< analysis ran; warnings or rejection
  ExitUsage = 2,    ///< usage, input, or parse error
};

/// Registers named options, parses argv, collects positionals.
///
/// Every registration carries the option's help text, and renderHelp()
/// generates the "options:" section of --help from the registrations in
/// order — so the help can never drift from what the parser actually
/// accepts (a golden test walks optionNames() against renderHelp()).
class OptionParser {
public:
  explicit OptionParser(std::string Tool) : Tool(std::move(Tool)) {}

  /// --name (no value): sets \p *Target.
  void flag(const std::string &Name, bool *Target,
            const std::string &Help = std::string());

  /// --name (no value): runs \p Fn.
  void flag(const std::string &Name, std::function<void()> Fn,
            const std::string &Help = std::string());

  /// --name=VALUE: runs \p Fn; returning false rejects the value (the
  /// parser reports "bad --name value 'VALUE'"). \p Meta is the value
  /// placeholder in help ("FILE", "N", "text|json").
  void value(const std::string &Name,
             std::function<bool(const std::string &)> Fn,
             const std::string &Meta = "VALUE",
             const std::string &Help = std::string());

  /// --name VALUE (value in the next argv slot).
  void separateValue(const std::string &Name,
                     std::function<bool(const std::string &)> Fn,
                     const std::string &Meta = "VALUE",
                     const std::string &Help = std::string());

  /// The shared --jobs=N option: digits only, 0 resolves to one worker
  /// per hardware thread, result stored into \p *Jobs.
  void jobs(unsigned *Jobs, const std::string &Help = std::string());

  /// Option groups let one registrar serve several front ends: wrap a
  /// set of registrations in beginGroup("name")/endGroup(), and a front
  /// end that has no use for them (the daemon has no --format — output
  /// format is per-request) calls excludeGroup("name") *before* the
  /// registrar runs. Registrations under an excluded group are dropped
  /// entirely: not parsed, absent from renderHelp()/optionNames(), and
  /// never offered as a did-you-mean suggestion, so an excluded flag gets
  /// the same "unknown option" exit-2 contract as a misspelled one.
  void beginGroup(const std::string &Name) { ActiveGroup = Name; }
  void endGroup() { ActiveGroup.clear(); }
  void excludeGroup(const std::string &Name) { Excluded.push_back(Name); }

  /// The "options:" body of --help: one line (or more, on '\n' in the
  /// help text) per registered option, in registration order.
  std::string renderHelp() const;

  /// Every registered option name, in registration order.
  std::vector<std::string> optionNames() const;

  /// Parses \p Argv. Returns false (after printing to stderr) on an
  /// unknown option, a missing/invalid value, or an unconsumed '='.
  /// Positional arguments (not starting with '-', or exactly "-") are
  /// collected in order.
  bool parse(int Argc, char **Argv);

  const std::vector<std::string> &positionals() const { return Positionals; }

  /// Closest registered option name to \p Flag, or empty when nothing is
  /// close enough to suggest (distance > 1/3 of the flag's length).
  std::string suggestionFor(const std::string &Flag) const;

  const std::string &tool() const { return Tool; }

private:
  struct Option {
    std::string Name;                              ///< including "--"
    bool TakesValue = false;                       ///< --name=VALUE
    bool Separate = false;                         ///< --name VALUE
    std::function<bool(const std::string &)> Apply; ///< value handler
    std::function<void()> Run;                     ///< flag handler
    std::string Meta;                              ///< value placeholder
    std::string Help;                              ///< one-line description
  };

  bool usageError(const std::string &Message) const;
  void add(Option O);

  std::string Tool;
  std::vector<Option> Options;
  std::vector<std::string> Positionals;
  std::string ActiveGroup;
  std::vector<std::string> Excluded;
};

} // namespace mix::driver

#endif // MIX_DRIVER_OPTIONPARSER_H
