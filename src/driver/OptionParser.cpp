//===--- OptionParser.cpp - Shared CLI option parsing -----------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "driver/OptionParser.h"

#include "runtime/ThreadPool.h"
#include "support/StringExtras.h"

#include <iostream>

using namespace mix::driver;

void OptionParser::flag(const std::string &Name, bool *Target) {
  flag(Name, [Target] { *Target = true; });
}

void OptionParser::flag(const std::string &Name, std::function<void()> Fn) {
  Option O;
  O.Name = Name;
  O.Run = std::move(Fn);
  Options.push_back(std::move(O));
}

void OptionParser::value(const std::string &Name,
                         std::function<bool(const std::string &)> Fn) {
  Option O;
  O.Name = Name;
  O.TakesValue = true;
  O.Apply = std::move(Fn);
  Options.push_back(std::move(O));
}

void OptionParser::separateValue(const std::string &Name,
                                 std::function<bool(const std::string &)> Fn) {
  Option O;
  O.Name = Name;
  O.TakesValue = true;
  O.Separate = true;
  O.Apply = std::move(Fn);
  Options.push_back(std::move(O));
}

void OptionParser::jobs(unsigned *Jobs) {
  value("--jobs", [Jobs](const std::string &V) {
    if (V.empty() || V.find_first_not_of("0123456789") != std::string::npos)
      return false;
    *Jobs = (unsigned)std::stoul(V);
    if (*Jobs == 0)
      *Jobs = rt::ThreadPool::hardwareWorkers();
    return true;
  });
}

std::string OptionParser::suggestionFor(const std::string &Flag) const {
  // Compare the name parts only ("--strategy=fork" suggests against
  // "--strategy").
  std::string Name = Flag.substr(0, Flag.find('='));
  std::string Best;
  unsigned BestDist = ~0u;
  for (const Option &O : Options) {
    unsigned D = editDistance(Name, O.Name);
    if (D < BestDist) {
      BestDist = D;
      Best = O.Name;
    }
  }
  // Only suggest near-misses: at most one edit per three characters.
  if (Best.empty() || BestDist * 3 > (unsigned)Name.size())
    return std::string();
  return Best;
}

bool OptionParser::usageError(const std::string &Message) const {
  std::cerr << Tool << ": " << Message << "\n";
  return false;
}

bool OptionParser::parse(int Argc, char **Argv) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.empty() || Arg[0] != '-' || Arg == "-") {
      Positionals.push_back(Arg);
      continue;
    }

    std::string Name = Arg.substr(0, Arg.find('='));
    bool HasValue = Arg.size() != Name.size();
    std::string Value = HasValue ? Arg.substr(Name.size() + 1) : std::string();

    const Option *Match = nullptr;
    for (const Option &O : Options)
      if (O.Name == Name) {
        Match = &O;
        break;
      }
    if (!Match) {
      std::string Hint = suggestionFor(Arg);
      return usageError("unknown option '" + Arg + "'" +
                        (Hint.empty() ? "" : " (did you mean '" + Hint + "'?)"));
    }

    if (!Match->TakesValue) {
      if (HasValue)
        return usageError("option '" + Name + "' takes no value");
      Match->Run();
      continue;
    }
    if (Match->Separate) {
      if (HasValue)
        return usageError("option '" + Name +
                          "' takes its value as a separate argument");
      if (I + 1 == Argc)
        return usageError("option '" + Name + "' requires a value");
      Value = Argv[++I];
    } else if (!HasValue) {
      return usageError("option '" + Name + "' requires a value ('" + Name +
                        "=...')");
    }
    if (!Match->Apply(Value))
      return usageError("bad " + Name + " value '" + Value + "'");
  }
  return true;
}
