//===--- OptionParser.cpp - Shared CLI option parsing -----------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "driver/OptionParser.h"

#include "runtime/ThreadPool.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <iostream>
#include <sstream>

using namespace mix::driver;

void OptionParser::add(Option O) {
  // Registrations under an excluded group vanish: the option neither
  // parses nor appears in help, matching the contract that a front end
  // which excluded a group treats its flags as unknown.
  if (!ActiveGroup.empty() &&
      std::find(Excluded.begin(), Excluded.end(), ActiveGroup) !=
          Excluded.end())
    return;
  Options.push_back(std::move(O));
}

void OptionParser::flag(const std::string &Name, bool *Target,
                        const std::string &Help) {
  flag(Name, [Target] { *Target = true; }, Help);
}

void OptionParser::flag(const std::string &Name, std::function<void()> Fn,
                        const std::string &Help) {
  Option O;
  O.Name = Name;
  O.Run = std::move(Fn);
  O.Help = Help;
  add(std::move(O));
}

void OptionParser::value(const std::string &Name,
                         std::function<bool(const std::string &)> Fn,
                         const std::string &Meta, const std::string &Help) {
  Option O;
  O.Name = Name;
  O.TakesValue = true;
  O.Apply = std::move(Fn);
  O.Meta = Meta;
  O.Help = Help;
  add(std::move(O));
}

void OptionParser::separateValue(const std::string &Name,
                                 std::function<bool(const std::string &)> Fn,
                                 const std::string &Meta,
                                 const std::string &Help) {
  Option O;
  O.Name = Name;
  O.TakesValue = true;
  O.Separate = true;
  O.Apply = std::move(Fn);
  O.Meta = Meta;
  O.Help = Help;
  add(std::move(O));
}

void OptionParser::jobs(unsigned *Jobs, const std::string &Help) {
  value(
      "--jobs",
      [Jobs](const std::string &V) {
        if (V.empty() || V.find_first_not_of("0123456789") != std::string::npos)
          return false;
        *Jobs = (unsigned)std::stoul(V);
        if (*Jobs == 0)
          *Jobs = rt::ThreadPool::hardwareWorkers();
        return true;
      },
      "N",
      Help.empty() ? "analyze with N worker threads (0 = one per hardware "
                     "thread; default 1)"
                   : Help);
}

std::string OptionParser::renderHelp() const {
  // Left column: "--name" / "--name=META" / "--name META", padded to the
  // widest registered spelling so descriptions line up.
  std::vector<std::string> Spellings;
  size_t Widest = 0;
  for (const Option &O : Options) {
    std::string S = O.Name;
    if (O.TakesValue)
      S += (O.Separate ? " " : "=") + O.Meta;
    Widest = std::max(Widest, S.size());
    Spellings.push_back(std::move(S));
  }

  std::ostringstream OS;
  for (size_t I = 0; I != Options.size(); ++I) {
    OS << "  " << Spellings[I];
    if (!Options[I].Help.empty()) {
      // Continuation lines (after '\n' in the help text) indent to the
      // description column.
      OS << std::string(Widest - Spellings[I].size() + 2, ' ');
      std::string Indent(Widest + 4, ' ');
      const std::string &H = Options[I].Help;
      for (size_t Pos = 0;;) {
        size_t NL = H.find('\n', Pos);
        OS << H.substr(Pos, NL == std::string::npos ? NL : NL - Pos);
        if (NL == std::string::npos)
          break;
        OS << "\n" << Indent;
        Pos = NL + 1;
      }
    }
    OS << "\n";
  }
  return OS.str();
}

std::vector<std::string> OptionParser::optionNames() const {
  std::vector<std::string> Names;
  Names.reserve(Options.size());
  for (const Option &O : Options)
    Names.push_back(O.Name);
  return Names;
}

std::string OptionParser::suggestionFor(const std::string &Flag) const {
  // Compare the name parts only ("--strategy=fork" suggests against
  // "--strategy").
  std::string Name = Flag.substr(0, Flag.find('='));
  std::string Best;
  unsigned BestDist = ~0u;
  for (const Option &O : Options) {
    unsigned D = editDistance(Name, O.Name);
    if (D < BestDist) {
      BestDist = D;
      Best = O.Name;
    }
  }
  // Only suggest near-misses: at most one edit per three characters.
  if (Best.empty() || BestDist * 3 > (unsigned)Name.size())
    return std::string();
  return Best;
}

bool OptionParser::usageError(const std::string &Message) const {
  std::cerr << Tool << ": " << Message << "\n";
  return false;
}

bool OptionParser::parse(int Argc, char **Argv) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.empty() || Arg[0] != '-' || Arg == "-") {
      Positionals.push_back(Arg);
      continue;
    }

    std::string Name = Arg.substr(0, Arg.find('='));
    bool HasValue = Arg.size() != Name.size();
    std::string Value = HasValue ? Arg.substr(Name.size() + 1) : std::string();

    const Option *Match = nullptr;
    for (const Option &O : Options)
      if (O.Name == Name) {
        Match = &O;
        break;
      }
    if (!Match) {
      std::string Hint = suggestionFor(Arg);
      return usageError("unknown option '" + Arg + "'" +
                        (Hint.empty() ? "" : " (did you mean '" + Hint + "'?)"));
    }

    if (!Match->TakesValue) {
      if (HasValue)
        return usageError("option '" + Name + "' takes no value");
      Match->Run();
      continue;
    }
    if (Match->Separate) {
      if (HasValue)
        return usageError("option '" + Name +
                          "' takes its value as a separate argument");
      if (I + 1 == Argc)
        return usageError("option '" + Name + "' requires a value");
      Value = Argv[++I];
    } else if (!HasValue) {
      return usageError("option '" + Name + "' requires a value ('" + Name +
                        "=...')");
    }
    if (!Match->Apply(Value))
      return usageError("bad " + Name + " value '" + Value + "'");
  }
  return true;
}
