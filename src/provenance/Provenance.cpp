//===--- Provenance.cpp - Diagnostic provenance payloads ------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "provenance/Provenance.h"

using namespace mix;
using namespace mix::prov;

const char *mix::prov::flowEdgeKindName(FlowEdgeKind Kind) {
  switch (Kind) {
  case FlowEdgeKind::Seed:
    return "seed";
  case FlowEdgeKind::Flow:
    return "flow";
  case FlowEdgeKind::MixBoundary:
    return "mix boundary";
  case FlowEdgeKind::Alias:
    return "alias";
  }
  return "flow";
}

const char *mix::prov::blockDispositionName(BlockDisposition D) {
  switch (D) {
  case BlockDisposition::None:
    return "";
  case BlockDisposition::Fresh:
    return "fresh";
  case BlockDisposition::WarmHit:
    return "warm hit";
  case BlockDisposition::Replay:
    return "replay";
  }
  return "";
}

std::string mix::prov::renderExplain(const DiagProvenance &P,
                                     const std::string &Indent) {
  std::string Out;
  if (P.Witness) {
    const WitnessPath &W = *P.Witness;
    Out += Indent + "witness path:\n";
    if (W.Steps.empty())
      Out += Indent + "  (no branches: the error is on the straight-line "
                      "path)\n";
    for (const WitnessStep &S : W.Steps)
      Out += Indent + "  " + S.Loc.str() + ": " + S.Note + "\n";
    if (!W.PathCondition.empty())
      Out += Indent + "path condition: " + W.PathCondition + "\n";
    if (!W.Model.empty()) {
      Out += Indent + "for example, when ";
      for (size_t I = 0; I != W.Model.size(); ++I) {
        if (I)
          Out += ", ";
        Out += W.Model[I].Name + " = " + W.Model[I].Value;
      }
      if (!W.ModelComplete)
        Out += " (model may be partial)";
      Out += "\n";
    }
    if (!W.DecidedBy.empty())
      Out += Indent + "decided by: " + W.DecidedBy + "\n";
  }
  if (P.Flow) {
    Out += Indent + "qualifier flow:\n";
    const std::vector<FlowStep> &Steps = P.Flow->Steps;
    for (size_t I = 0; I != Steps.size(); ++I) {
      const FlowStep &S = Steps[I];
      Out += Indent + "  ";
      if (I == 0)
        Out += "$null source: ";
      else
        Out += std::string("-> (") + flowEdgeKindName(S.EdgeFromPrev) + ") ";
      Out += S.Desc;
      if (S.Loc.isValid())
        Out += " at " + S.Loc.str();
      if (I + 1 == Steps.size())
        Out += "  [$nonnull sink]";
      Out += "\n";
    }
  }
  if (!P.Block.Stack.empty() ||
      P.Block.Disposition != BlockDisposition::None) {
    Out += Indent + "block context: ";
    if (P.Block.Stack.empty()) {
      Out += "<top level>";
    } else {
      for (size_t I = 0; I != P.Block.Stack.size(); ++I) {
        if (I)
          Out += " > ";
        Out += P.Block.Stack[I];
      }
    }
    const char *Disp = blockDispositionName(P.Block.Disposition);
    if (*Disp)
      Out += std::string(" (") + Disp + ")";
    Out += "\n";
  }
  return Out;
}

std::string mix::prov::renderExplainText(const DiagnosticEngine &Diags) {
  std::string Out;
  for (const Diagnostic &D : Diags.diagnostics()) {
    Out += D.str();
    Out += '\n';
    if (D.Prov)
      Out += renderExplain(*D.Prov, "    ");
  }
  return Out;
}

static void encodeLoc(SourceLoc Loc, persist::ByteWriter &W) {
  W.u32(Loc.Line).u32(Loc.Column);
}

static SourceLoc decodeLoc(persist::ByteReader &R) {
  uint32_t Line = R.u32();
  uint32_t Column = R.u32();
  return SourceLoc(Line, Column);
}

void mix::prov::encodeProvenance(const DiagProvenance &P,
                                 persist::ByteWriter &W) {
  W.boolean(P.Witness.has_value());
  if (P.Witness) {
    const WitnessPath &WP = *P.Witness;
    W.u32((uint32_t)WP.Steps.size());
    for (const WitnessStep &S : WP.Steps) {
      encodeLoc(S.Loc, W);
      W.str(S.Note);
    }
    W.str(WP.PathCondition);
    W.u32((uint32_t)WP.Model.size());
    for (const ModelBinding &B : WP.Model)
      W.str(B.Name).str(B.Value);
    W.boolean(WP.ModelComplete);
    W.str(WP.DecidedBy);
  }
  W.boolean(P.Flow.has_value());
  if (P.Flow) {
    W.u32((uint32_t)P.Flow->Steps.size());
    for (const FlowStep &S : P.Flow->Steps) {
      W.str(S.Desc);
      encodeLoc(S.Loc, W);
      W.u8((uint8_t)S.EdgeFromPrev);
    }
  }
  W.u8((uint8_t)P.Block.Disposition);
  W.u32((uint32_t)P.Block.Stack.size());
  for (const std::string &F : P.Block.Stack)
    W.str(F);
}

std::shared_ptr<const DiagProvenance>
mix::prov::decodeProvenance(persist::ByteReader &R) {
  auto P = std::make_shared<DiagProvenance>();
  if (R.boolean()) {
    WitnessPath WP;
    uint32_t NSteps = R.u32();
    for (uint32_t I = 0; I != NSteps && R.ok(); ++I) {
      WitnessStep S;
      S.Loc = decodeLoc(R);
      S.Note = R.str();
      WP.Steps.push_back(std::move(S));
    }
    WP.PathCondition = R.str();
    uint32_t NBindings = R.u32();
    for (uint32_t I = 0; I != NBindings && R.ok(); ++I) {
      ModelBinding B;
      B.Name = R.str();
      B.Value = R.str();
      WP.Model.push_back(std::move(B));
    }
    WP.ModelComplete = R.boolean();
    WP.DecidedBy = R.str();
    P->Witness = std::move(WP);
  }
  if (R.boolean()) {
    FlowChain FC;
    uint32_t NSteps = R.u32();
    for (uint32_t I = 0; I != NSteps && R.ok(); ++I) {
      FlowStep S;
      S.Desc = R.str();
      S.Loc = decodeLoc(R);
      uint8_t Kind = R.u8();
      if (Kind > (uint8_t)FlowEdgeKind::Alias)
        return nullptr;
      S.EdgeFromPrev = (FlowEdgeKind)Kind;
      FC.Steps.push_back(std::move(S));
    }
    P->Flow = std::move(FC);
  }
  uint8_t Disp = R.u8();
  if (Disp > (uint8_t)BlockDisposition::Replay)
    return nullptr;
  P->Block.Disposition = (BlockDisposition)Disp;
  uint32_t NStack = R.u32();
  for (uint32_t I = 0; I != NStack && R.ok(); ++I)
    P->Block.Stack.push_back(R.str());
  if (!R.ok())
    return nullptr;
  return P;
}
