//===--- Sarif.cpp - SARIF 2.1.0 export of diagnostics --------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "provenance/Sarif.h"

#include "provenance/Provenance.h"
#include "support/StringExtras.h"

#include <vector>

using namespace mix;
using namespace mix::prov;

static const char *sarifLevel(DiagKind Kind) {
  switch (Kind) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "none";
}

/// One SARIF location object on a single line: physicalLocation with the
/// shared artifact (index 0) and, when the location is valid, a region.
static std::string locationJSON(SourceLoc Loc, const std::string &Uri,
                                const std::string &MessageText) {
  std::string Out = "{";
  if (!MessageText.empty())
    Out += "\"message\": {\"text\": \"" + jsonEscape(MessageText) + "\"}, ";
  Out += "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"" +
         jsonEscape(Uri) + "\", \"index\": 0}";
  if (Loc.isValid())
    Out += ", \"region\": {\"startLine\": " + std::to_string(Loc.Line) +
           ", \"startColumn\": " + std::to_string(Loc.Column) + "}";
  Out += "}}";
  return Out;
}

/// A codeFlow with one threadFlow whose locations are rendered one per
/// line at \p Indent + 6.
static void appendCodeFlow(std::string &Out, const std::string &Indent,
                           const std::vector<std::string> &Locations) {
  Out += Indent + "{\"threadFlows\": [{\"locations\": [\n";
  for (size_t I = 0; I != Locations.size(); ++I) {
    Out += Indent + "  {\"location\": " + Locations[I] + "}";
    Out += I + 1 == Locations.size() ? "\n" : ",\n";
  }
  Out += Indent + "]}]}";
}

std::string mix::prov::renderSarif(const DiagnosticEngine &Diags,
                                   const SarifOptions &Opts) {
  const std::string Uri = Opts.ArtifactUri.empty() ? "input" : Opts.ArtifactUri;
  const std::vector<Diagnostic> &All = Diags.diagnostics();
  std::vector<size_t> Top = Diags.sortedTopLevelIndices();

  // Rules, in first-use order over the sorted results.
  std::vector<DiagID> Rules;
  auto ruleIndex = [&](DiagID ID) {
    for (size_t I = 0; I != Rules.size(); ++I)
      if (Rules[I] == ID)
        return I;
    Rules.push_back(ID);
    return Rules.size() - 1;
  };
  for (size_t I : Top)
    ruleIndex(All[I].ID);

  std::string Out;
  Out += "{\n";
  Out += "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  Out += "  \"version\": \"2.1.0\",\n";
  Out += "  \"runs\": [{\n";
  Out += "    \"tool\": {\"driver\": {\n";
  Out += "      \"name\": \"" + jsonEscape(Opts.ToolName) + "\",\n";
  Out += "      \"informationUri\": "
         "\"https://doi.org/10.1145/1706299.1706325\",\n";
  Out += "      \"rules\": [\n";
  for (size_t I = 0; I != Rules.size(); ++I) {
    Out += "        {\"id\": \"" + diagIdString(Rules[I]) +
           "\", \"shortDescription\": {\"text\": \"" +
           diagCategory(Rules[I]) + "\"}}";
    Out += I + 1 == Rules.size() ? "\n" : ",\n";
  }
  Out += "      ]\n";
  Out += "    }},\n";
  Out += "    \"artifacts\": [{\"location\": {\"uri\": \"" + jsonEscape(Uri) +
         "\"}}],\n";
  Out += "    \"results\": [";

  bool FirstResult = true;
  for (size_t I : Top) {
    const Diagnostic &D = All[I];
    Out += FirstResult ? "\n" : ",\n";
    FirstResult = false;
    Out += "      {\n";
    Out += "        \"ruleId\": \"" + diagIdString(D.ID) + "\",\n";
    Out += "        \"ruleIndex\": " + std::to_string(ruleIndex(D.ID)) + ",\n";
    Out += "        \"level\": \"" + std::string(sarifLevel(D.Kind)) + "\",\n";
    Out += "        \"message\": {\"text\": \"" + jsonEscape(D.Message) +
           "\"},\n";
    Out += "        \"locations\": [" + locationJSON(D.Loc, Uri, "") + "]";

    std::vector<size_t> Notes = Diags.notesFor(I);
    if (!Notes.empty()) {
      Out += ",\n        \"relatedLocations\": [\n";
      for (size_t N = 0; N != Notes.size(); ++N) {
        Out += "          " +
               locationJSON(All[Notes[N]].Loc, Uri, All[Notes[N]].Message);
        Out += N + 1 == Notes.size() ? "\n" : ",\n";
      }
      Out += "        ]";
    }

    if (D.Prov) {
      const DiagProvenance &P = *D.Prov;
      if (P.Witness || P.Flow) {
        Out += ",\n        \"codeFlows\": [\n";
        bool FirstFlow = true;
        if (P.Witness) {
          std::vector<std::string> Locs;
          for (const WitnessStep &S : P.Witness->Steps)
            Locs.push_back(locationJSON(S.Loc, Uri, S.Note));
          Locs.push_back(locationJSON(D.Loc, Uri, "reported here"));
          appendCodeFlow(Out, "          ", Locs);
          FirstFlow = false;
        }
        if (P.Flow) {
          std::vector<std::string> Locs;
          const std::vector<FlowStep> &Steps = P.Flow->Steps;
          for (size_t S = 0; S != Steps.size(); ++S) {
            std::string Text =
                S == 0 ? "$null source: " + Steps[S].Desc
                       : "(" + std::string(flowEdgeKindName(
                                   Steps[S].EdgeFromPrev)) +
                             ") " + Steps[S].Desc;
            if (S + 1 == Steps.size())
              Text += " [$nonnull sink]";
            Locs.push_back(locationJSON(Steps[S].Loc, Uri, Text));
          }
          if (!FirstFlow)
            Out += ",\n";
          appendCodeFlow(Out, "          ", Locs);
        }
        Out += "\n        ]";
      }

      // The evidence that has no standard SARIF slot rides in the
      // property bag: constraints, the solver model, and block context.
      std::vector<std::pair<std::string, std::string>> Props;
      if (P.Witness) {
        if (!P.Witness->PathCondition.empty())
          Props.emplace_back("pathCondition", P.Witness->PathCondition);
        if (!P.Witness->Model.empty()) {
          std::string Model;
          for (const ModelBinding &B : P.Witness->Model) {
            if (!Model.empty())
              Model += ", ";
            Model += B.Name + " = " + B.Value;
          }
          Props.emplace_back("model", Model);
        }
      }
      if (!P.Block.Stack.empty()) {
        std::string Stack;
        for (const std::string &F : P.Block.Stack) {
          if (!Stack.empty())
            Stack += " > ";
          Stack += F;
        }
        Props.emplace_back("blockStack", Stack);
      }
      const char *Disp = blockDispositionName(P.Block.Disposition);
      if (*Disp)
        Props.emplace_back("blockDisposition", Disp);
      if (!Props.empty()) {
        Out += ",\n        \"properties\": {";
        for (size_t PI = 0; PI != Props.size(); ++PI) {
          if (PI)
            Out += ", ";
          Out += "\"" + Props[PI].first + "\": \"" +
                 jsonEscape(Props[PI].second) + "\"";
        }
        Out += "}";
      }
    }
    Out += "\n      }";
  }
  Out += FirstResult ? "]\n" : "\n    ]\n";
  Out += "  }]\n";
  Out += "}\n";
  return Out;
}
