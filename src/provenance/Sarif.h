//===--- Sarif.h - SARIF 2.1.0 export of diagnostics ------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a DiagnosticEngine as a SARIF 2.1.0 document (the --format=sarif
/// surface of both CLIs). Errors and warnings become `results`; their
/// structurally attached notes become `relatedLocations`; provenance
/// payloads become `codeFlows`/`threadFlows` (witness paths and qualifier
/// flow chains, mix-boundary edges labeled) plus a `properties` bag
/// carrying the path condition, solver model, and block context.
///
/// Results are ordered by (line, column, id) — the same order the sorted
/// JSON renderer uses — so the two machine formats carry identical
/// locations in identical order regardless of --jobs.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_PROVENANCE_SARIF_H
#define MIX_PROVENANCE_SARIF_H

#include "support/Diagnostics.h"

#include <string>

namespace mix::prov {

struct SarifOptions {
  std::string ToolName = "mix";   ///< runs[].tool.driver.name
  std::string ArtifactUri;        ///< analyzed input; empty renders no artifact
};

/// Renders \p Diags as one SARIF 2.1.0 document.
std::string renderSarif(const DiagnosticEngine &Diags,
                        const SarifOptions &Opts);

} // namespace mix::prov

#endif // MIX_PROVENANCE_SARIF_H
