//===--- Provenance.h - Diagnostic provenance payloads ----------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Evidence attached to diagnostics: why the analysis believes a report.
///
/// Section 4.5 of the paper notes that the hard part of using MIXY on
/// vsftpd was deciding, for each warning, whether it was real or an
/// artifact of aliasing or block placement. This subsystem records, per
/// emitted diagnostic, up to three kinds of evidence:
///
///  - a \ref WitnessPath: the branch decisions symbolic execution took to
///    reach the error, the accumulated path condition, and a satisfying
///    model (concrete input values) extracted from the solver;
///  - a \ref FlowChain: for qualifier errors, the shortest path through
///    the qualifier constraint graph from the $null source to the
///    $nonnull sink, with the program point and rule (plain flow, mix
///    boundary, aliasing) that induced each edge;
///  - a \ref BlockContext: which MIX block stack the diagnostic came from
///    and the cache disposition of that block's analysis.
///
/// Recording follows the TraceSink pattern: analyses take a
/// \ref ProvenanceSink pointer and a null pointer is the off switch, so
/// an unexplained run costs one branch per site (bench_observe guards
/// this). Payloads are immutable once attached (shared_ptr<const>), which
/// makes sharing them across cache replays and parallel merges safe.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_PROVENANCE_PROVENANCE_H
#define MIX_PROVENANCE_PROVENANCE_H

#include "observe/Metrics.h"
#include "persist/RecordFile.h"
#include "support/Diagnostics.h"
#include "support/SourceLoc.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace mix::prov {

/// One branch decision on the path symbolic execution followed to the
/// reported program point.
struct WitnessStep {
  SourceLoc Loc;    ///< location of the branch (or loop) condition
  std::string Note; ///< e.g. "condition true", "branches merged (defer)"
};

/// A concrete value the solver chose for one symbolic input.
struct ModelBinding {
  std::string Name;  ///< source-level variable name
  std::string Value; ///< rendered value ("-3", "true", ...)
};

/// The symbolic witness of a path-sensitive report.
struct WitnessPath {
  std::vector<WitnessStep> Steps;
  std::string PathCondition;       ///< Term::str() of the accumulated guard
  std::vector<ModelBinding> Model; ///< name-sorted satisfying assignment
  bool ModelComplete = false;      ///< solver proved every binding exact
  /// Which solver backend decided the witness query ("smtlite", "dnf",
  /// "portfolio" when no lane answered). Empty in payloads persisted
  /// before the field existed.
  std::string DecidedBy;
};

/// How one edge of a qualifier flow chain came to exist.
enum class FlowEdgeKind : uint8_t {
  Seed,        ///< $null entered the graph (NULL literal, havoc, ...)
  Flow,        ///< ordinary assignment / parameter / return flow
  MixBoundary, ///< induced by a TSymBlock / SETypBlock translation
  Alias,       ///< induced by the points-to alias restoration
};

/// Stable label for a \ref FlowEdgeKind ("seed", "flow", "mix boundary",
/// "alias").
const char *flowEdgeKindName(FlowEdgeKind Kind);

/// One node of a qualifier flow chain plus the edge that reached it.
struct FlowStep {
  std::string Desc; ///< constraint-graph node description
  SourceLoc Loc;    ///< program point of the node
  /// The rule that induced the edge from the previous step (meaningless
  /// for the first step, which is the $null source itself).
  FlowEdgeKind EdgeFromPrev = FlowEdgeKind::Flow;
};

/// The shortest $null-source-to-$nonnull-sink path that witnesses a
/// qualifier warning.
struct FlowChain {
  std::vector<FlowStep> Steps; ///< source first, sink last
};

/// Cache disposition of the block analysis that emitted a diagnostic.
enum class BlockDisposition : uint8_t {
  None = 0, ///< not produced by a MIX block (e.g. baseline inference)
  Fresh,    ///< the block was analyzed live in this run
  WarmHit,  ///< replayed from the persistent block-summary store
  Replay,   ///< replayed from the in-memory block cache (fixpoint re-visit)
};

/// Stable label for a \ref BlockDisposition ("fresh", "warm hit",
/// "replay"; None renders empty).
const char *blockDispositionName(BlockDisposition D);

/// Which MIX block stack a diagnostic came from.
struct BlockContext {
  /// Function names of the nested block analyses, outermost first.
  std::vector<std::string> Stack;
  BlockDisposition Disposition = BlockDisposition::None;
};

/// Everything recorded for one diagnostic. Attached to Diagnostic::Prov
/// as an immutable shared payload.
struct DiagProvenance {
  std::optional<WitnessPath> Witness;
  std::optional<FlowChain> Flow;
  BlockContext Block;

  bool empty() const {
    return !Witness && !Flow && Block.Stack.empty() &&
           Block.Disposition == BlockDisposition::None;
  }
};

/// The recording handle analyses receive. A null ProvenanceSink pointer
/// disables recording entirely (the null-handle pattern shared with
/// TraceSink); a live sink only counts what was attached — the payloads
/// themselves ride on the diagnostics.
class ProvenanceSink {
public:
  ProvenanceSink() = default;

  /// Resolves the provenance.* counters against \p R. Without this the
  /// sink still enables recording; it just counts into detached handles.
  void attachMetrics(obs::MetricsRegistry &R) {
    Witnesses = R.counter("provenance.witnesses");
    Flows = R.counter("provenance.flows");
    Blocks = R.counter("provenance.blocks");
    Replays = R.counter("provenance.replayed");
  }

  void countWitness() { Witnesses.inc(); }
  void countFlow() { Flows.inc(); }
  void countBlock() { Blocks.inc(); }
  /// A recorded payload was re-attached from a cache instead of being
  /// rebuilt. The payload is replayed verbatim (so --explain output is
  /// identical cold vs. warm); only this counter tells the runs apart.
  void countReplay() { Replays.inc(); }

private:
  obs::Counter Witnesses;
  obs::Counter Flows;
  obs::Counter Blocks;
  obs::Counter Replays;
};

/// Renders one provenance payload as the indented explanation block that
/// --explain prints under its diagnostic. Deterministic; every line is
/// indented with \p Indent.
std::string renderExplain(const DiagProvenance &P, const std::string &Indent);

/// Renders the full --explain text output: every diagnostic in engine
/// order as Diagnostic::str(), each followed by its explanation block
/// (when it carries provenance). Diagnostics without provenance render
/// exactly as DiagnosticEngine::str() would.
std::string renderExplainText(const DiagnosticEngine &Diags);

/// Serializes \p P for the persistent block-summary store.
void encodeProvenance(const DiagProvenance &P, persist::ByteWriter &W);

/// Decodes an encodeProvenance payload. Returns null (and sets the
/// reader's error flag) on malformed input.
std::shared_ptr<const DiagProvenance> decodeProvenance(persist::ByteReader &R);

} // namespace mix::prov

#endif // MIX_PROVENANCE_PROVENANCE_H
