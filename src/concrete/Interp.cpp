//===--- Interp.cpp - Concrete big-step interpreter ------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "concrete/Interp.h"

using namespace mix;

std::string ConcValue::str() const {
  switch (K) {
  case Kind::Int:
    return std::to_string(IntVal);
  case Kind::Bool:
    return IntVal ? "true" : "false";
  case Kind::Loc:
    return "loc" + std::to_string(IntVal);
  case Kind::Closure:
    return "<closure>";
  }
  return "<invalid>";
}

namespace {

/// Recursive evaluator with a fuel bound.
class Evaluator {
public:
  explicit Evaluator(ConcMemory &Mem) : Mem(Mem) {}

  EvalResult eval(const Expr *E, const ConcEnv &Env) {
    if (++Steps > MaxSteps)
      return EvalResult::error("evaluation fuel exhausted");

    switch (E->kind()) {
    case ExprKind::Var: {
      const auto *V = cast<VarExpr>(E);
      auto It = Env.find(V->name());
      if (It == Env.end())
        return EvalResult::error("unbound variable '" + V->name() + "'");
      return EvalResult::ok(It->second);
    }
    case ExprKind::IntLit:
      return EvalResult::ok(
          ConcValue::intValue(cast<IntLitExpr>(E)->value()));
    case ExprKind::BoolLit:
      return EvalResult::ok(
          ConcValue::boolValue(cast<BoolLitExpr>(E)->value()));
    case ExprKind::Binary:
      return evalBinary(cast<BinaryExpr>(E), Env);
    case ExprKind::Not: {
      EvalResult R = eval(cast<NotExpr>(E)->sub(), Env);
      if (R.IsError)
        return R;
      if (!R.Value.isBool())
        return EvalResult::error("'not' applied to a non-boolean");
      return EvalResult::ok(ConcValue::boolValue(!R.Value.asBool()));
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      EvalResult C = eval(I->cond(), Env);
      if (C.IsError)
        return C;
      if (!C.Value.isBool())
        return EvalResult::error("condition is not a boolean");
      return eval(C.Value.asBool() ? I->thenExpr() : I->elseExpr(), Env);
    }
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(E);
      EvalResult Init = eval(L->init(), Env);
      if (Init.IsError)
        return Init;
      ConcEnv Extended = Env;
      Extended[L->name()] = std::move(Init.Value);
      return eval(L->body(), Extended);
    }
    case ExprKind::Ref: {
      EvalResult R = eval(cast<RefExpr>(E)->sub(), Env);
      if (R.IsError)
        return R;
      size_t Loc = Mem.allocate(std::move(R.Value));
      return EvalResult::ok(ConcValue::locValue(Loc));
    }
    case ExprKind::Deref: {
      EvalResult R = eval(cast<DerefExpr>(E)->sub(), Env);
      if (R.IsError)
        return R;
      if (!R.Value.isLoc())
        return EvalResult::error("'!' applied to a non-location");
      if (!Mem.isValid(R.Value.asLoc()))
        return EvalResult::error("read from an invalid location");
      return EvalResult::ok(Mem.read(R.Value.asLoc()));
    }
    case ExprKind::Assign: {
      const auto *A = cast<AssignExpr>(E);
      EvalResult T = eval(A->target(), Env);
      if (T.IsError)
        return T;
      if (!T.Value.isLoc())
        return EvalResult::error("':=' target is not a location");
      EvalResult V = eval(A->value(), Env);
      if (V.IsError)
        return V;
      if (!Mem.isValid(T.Value.asLoc()))
        return EvalResult::error("write to an invalid location");
      Mem.write(T.Value.asLoc(), V.Value);
      return EvalResult::ok(std::move(V.Value));
    }
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      EvalResult F = eval(S->first(), Env);
      if (F.IsError)
        return F;
      return eval(S->second(), Env);
    }
    case ExprKind::Block:
      // Analysis blocks do not change run-time behaviour.
      return eval(cast<BlockExpr>(E)->body(), Env);
    case ExprKind::Fun: {
      const auto *F = cast<FunExpr>(E);
      return EvalResult::ok(ConcValue::closureValue(
          std::make_shared<ConcClosure>(F, Env)));
    }
    case ExprKind::App: {
      const auto *A = cast<AppExpr>(E);
      EvalResult Fn = eval(A->fn(), Env);
      if (Fn.IsError)
        return Fn;
      if (!Fn.Value.isClosure())
        return EvalResult::error("application of a non-function");
      EvalResult Arg = eval(A->arg(), Env);
      if (Arg.IsError)
        return Arg;
      const ConcClosure &Cl = Fn.Value.asClosure();
      ConcEnv CalleeEnv = Cl.env();
      CalleeEnv[Cl.fun()->param()] = std::move(Arg.Value);
      return eval(Cl.fun()->body(), CalleeEnv);
    }
    }
    return EvalResult::error("unhandled expression form");
  }

private:
  EvalResult evalBinary(const BinaryExpr *B, const ConcEnv &Env) {
    EvalResult L = eval(B->lhs(), Env);
    if (L.IsError)
      return L;
    EvalResult R = eval(B->rhs(), Env);
    if (R.IsError)
      return R;
    const ConcValue &LV = L.Value;
    const ConcValue &RV = R.Value;
    switch (B->op()) {
    case BinaryOp::Add:
      if (!LV.isInt() || !RV.isInt())
        return EvalResult::error("'+' applied to non-integers");
      return EvalResult::ok(ConcValue::intValue(LV.asInt() + RV.asInt()));
    case BinaryOp::Sub:
      if (!LV.isInt() || !RV.isInt())
        return EvalResult::error("'-' applied to non-integers");
      return EvalResult::ok(ConcValue::intValue(LV.asInt() - RV.asInt()));
    case BinaryOp::Lt:
      if (!LV.isInt() || !RV.isInt())
        return EvalResult::error("'<' applied to non-integers");
      return EvalResult::ok(ConcValue::boolValue(LV.asInt() < RV.asInt()));
    case BinaryOp::Le:
      if (!LV.isInt() || !RV.isInt())
        return EvalResult::error("'<=' applied to non-integers");
      return EvalResult::ok(ConcValue::boolValue(LV.asInt() <= RV.asInt()));
    case BinaryOp::Eq:
      if (LV.isInt() && RV.isInt())
        return EvalResult::ok(ConcValue::boolValue(LV.asInt() == RV.asInt()));
      if (LV.isBool() && RV.isBool())
        return EvalResult::ok(
            ConcValue::boolValue(LV.asBool() == RV.asBool()));
      return EvalResult::error("'=' applied to incomparable values");
    case BinaryOp::And:
      if (!LV.isBool() || !RV.isBool())
        return EvalResult::error("'and' applied to non-booleans");
      return EvalResult::ok(ConcValue::boolValue(LV.asBool() && RV.asBool()));
    case BinaryOp::Or:
      if (!LV.isBool() || !RV.isBool())
        return EvalResult::error("'or' applied to non-booleans");
      return EvalResult::ok(ConcValue::boolValue(LV.asBool() || RV.asBool()));
    }
    return EvalResult::error("unhandled binary operator");
  }

  ConcMemory &Mem;
  unsigned Steps = 0;
  static constexpr unsigned MaxSteps = 1u << 22;
};

} // namespace

EvalResult mix::evaluate(const Expr *E, const ConcEnv &Env, ConcMemory &Mem) {
  Evaluator Ev(Mem);
  return Ev.eval(E, Env);
}
