//===--- Interp.h - Concrete big-step interpreter ---------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard big-step operational semantics of Section 3.3, proving
/// judgments E |- <M ; e> -> r where r is a memory/value pair or the
/// distinguished error token. Analysis blocks `{t e t}` / `{s e s}` are
/// semantically transparent.
///
/// This is the reference against which MIX soundness (Theorem 1) is
/// property-tested: programs accepted by MixChecker must never evaluate
/// to error from any conforming initial environment.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_CONCRETE_INTERP_H
#define MIX_CONCRETE_INTERP_H

#include "lang/Ast.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mix {

class ConcClosure;

/// A concrete run-time value: integer, boolean, location, or closure.
class ConcValue {
public:
  enum class Kind { Int, Bool, Loc, Closure };

  static ConcValue intValue(long long V) {
    ConcValue C;
    C.K = Kind::Int;
    C.IntVal = V;
    return C;
  }
  static ConcValue boolValue(bool V) {
    ConcValue C;
    C.K = Kind::Bool;
    C.IntVal = V ? 1 : 0;
    return C;
  }
  static ConcValue locValue(size_t Loc) {
    ConcValue C;
    C.K = Kind::Loc;
    C.IntVal = (long long)Loc;
    return C;
  }
  static ConcValue closureValue(std::shared_ptr<const ConcClosure> Cl) {
    ConcValue C;
    C.K = Kind::Closure;
    C.Cl = std::move(Cl);
    return C;
  }

  Kind kind() const { return K; }
  bool isInt() const { return K == Kind::Int; }
  bool isBool() const { return K == Kind::Bool; }
  bool isLoc() const { return K == Kind::Loc; }
  bool isClosure() const { return K == Kind::Closure; }

  long long asInt() const { return IntVal; }
  bool asBool() const { return IntVal != 0; }
  size_t asLoc() const { return (size_t)IntVal; }
  const ConcClosure &asClosure() const { return *Cl; }

  std::string str() const;

private:
  Kind K = Kind::Int;
  long long IntVal = 0;
  std::shared_ptr<const ConcClosure> Cl;
};

/// A concrete environment E: variables to values.
using ConcEnv = std::map<std::string, ConcValue>;

/// A closure: the function literal plus its captured environment.
class ConcClosure {
public:
  ConcClosure(const FunExpr *Fun, ConcEnv Env)
      : Fun(Fun), Env(std::move(Env)) {}
  const FunExpr *fun() const { return Fun; }
  const ConcEnv &env() const { return Env; }

private:
  const FunExpr *Fun;
  ConcEnv Env;
};

/// A concrete memory M: locations (dense indices) to values.
class ConcMemory {
public:
  size_t allocate(ConcValue V) {
    Cells.push_back(std::move(V));
    return Cells.size() - 1;
  }
  bool isValid(size_t Loc) const { return Loc < Cells.size(); }
  const ConcValue &read(size_t Loc) const { return Cells[Loc]; }
  void write(size_t Loc, ConcValue V) { Cells[Loc] = std::move(V); }
  size_t size() const { return Cells.size(); }

private:
  std::vector<ConcValue> Cells;
};

/// The evaluation result r: a value, or the error token with a message.
struct EvalResult {
  bool IsError = false;
  ConcValue Value;
  std::string ErrorMessage;

  static EvalResult ok(ConcValue V) {
    EvalResult R;
    R.Value = std::move(V);
    return R;
  }
  static EvalResult error(std::string Message) {
    EvalResult R;
    R.IsError = true;
    R.ErrorMessage = std::move(Message);
    return R;
  }
};

/// Evaluates \p E under environment \p Env, threading memory \p Mem.
/// Evaluation is deterministic and, for this loop-free language, always
/// terminates (a fuel bound guards against pathological closure nests).
EvalResult evaluate(const Expr *E, const ConcEnv &Env, ConcMemory &Mem);

} // namespace mix

#endif // MIX_CONCRETE_INTERP_H
