//===--- CAst.h - AST for the mini-C front end ------------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for the mini-C subset MIXY analyzes: global variables,
/// struct definitions, and functions (with `MIX(typed)` / `MIX(symbolic)`
/// attributes) whose bodies use locals, `if`/`while`/`return`, assignment,
/// pointer and struct-member access, calls (including through function
/// pointers), `malloc`/`sizeof`, casts, and the `NULL` literal.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_CFRONT_CAST_H
#define MIX_CFRONT_CAST_H

#include "cfront/CType.h"
#include "support/SourceLoc.h"

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mix::c {

class CExpr;
class CStmt;

/// The paper's function-level analysis annotations (Section 4: "blocks can
/// only be introduced around whole function bodies").
enum class MixAnnot {
  None,     ///< Analyze with whichever analysis reaches the function.
  Typed,    ///< MIX(typed): analyze with qualifier inference.
  Symbolic, ///< MIX(symbolic): analyze with the symbolic executor.
};

const char *mixAnnotName(MixAnnot A);

// === Expressions ============================================================

enum class CExprKind {
  IntLit,
  StrLit,
  NullLit,
  Ident,
  Unary,
  Binary,
  Assign,
  Call,
  Member,
  Cast,
  SizeOf,
};

enum class CUnaryOp { Deref, AddrOf, Not, Neg };
enum class CBinaryOp { Add, Sub, Eq, Ne, Lt, Gt, Le, Ge, LAnd, LOr };

const char *cUnaryOpSpelling(CUnaryOp Op);
const char *cBinaryOpSpelling(CBinaryOp Op);

/// Base class of mini-C expressions.
class CExpr {
public:
  CExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

  CExpr(const CExpr &) = delete;
  CExpr &operator=(const CExpr &) = delete;

protected:
  CExpr(CExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
  ~CExpr() = default;

private:
  CExprKind Kind;
  SourceLoc Loc;
};

template <typename T> bool isa(const CExpr *E) { return T::classof(E); }
template <typename T> const T *cast(const CExpr *E) {
  assert(T::classof(E) && "bad cast");
  return static_cast<const T *>(E);
}
template <typename T> const T *dyn_cast(const CExpr *E) {
  return T::classof(E) ? static_cast<const T *>(E) : nullptr;
}

class CIntLit : public CExpr {
public:
  CIntLit(SourceLoc Loc, long long Value)
      : CExpr(CExprKind::IntLit, Loc), Value(Value) {}
  long long value() const { return Value; }
  static bool classof(const CExpr *E) {
    return E->kind() == CExprKind::IntLit;
  }

private:
  long long Value;
};

/// A string literal; modeled as an opaque non-null char pointer.
class CStrLit : public CExpr {
public:
  CStrLit(SourceLoc Loc, std::string Value)
      : CExpr(CExprKind::StrLit, Loc), Value(std::move(Value)) {}
  const std::string &value() const { return Value; }
  static bool classof(const CExpr *E) {
    return E->kind() == CExprKind::StrLit;
  }

private:
  std::string Value;
};

/// The NULL macro; carries the `null` qualifier in inference.
class CNullLit : public CExpr {
public:
  explicit CNullLit(SourceLoc Loc) : CExpr(CExprKind::NullLit, Loc) {}
  static bool classof(const CExpr *E) {
    return E->kind() == CExprKind::NullLit;
  }
};

class CIdent : public CExpr {
public:
  CIdent(SourceLoc Loc, std::string Name)
      : CExpr(CExprKind::Ident, Loc), Name(std::move(Name)) {}
  const std::string &name() const { return Name; }
  static bool classof(const CExpr *E) {
    return E->kind() == CExprKind::Ident;
  }

private:
  std::string Name;
};

class CUnary : public CExpr {
public:
  CUnary(SourceLoc Loc, CUnaryOp Op, const CExpr *Sub)
      : CExpr(CExprKind::Unary, Loc), Op(Op), Sub(Sub) {}
  CUnaryOp op() const { return Op; }
  const CExpr *sub() const { return Sub; }
  static bool classof(const CExpr *E) {
    return E->kind() == CExprKind::Unary;
  }

private:
  CUnaryOp Op;
  const CExpr *Sub;
};

class CBinary : public CExpr {
public:
  CBinary(SourceLoc Loc, CBinaryOp Op, const CExpr *Lhs, const CExpr *Rhs)
      : CExpr(CExprKind::Binary, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  CBinaryOp op() const { return Op; }
  const CExpr *lhs() const { return Lhs; }
  const CExpr *rhs() const { return Rhs; }
  static bool classof(const CExpr *E) {
    return E->kind() == CExprKind::Binary;
  }

private:
  CBinaryOp Op;
  const CExpr *Lhs;
  const CExpr *Rhs;
};

class CAssign : public CExpr {
public:
  CAssign(SourceLoc Loc, const CExpr *Target, const CExpr *Value)
      : CExpr(CExprKind::Assign, Loc), Target(Target), Value(Value) {}
  const CExpr *target() const { return Target; }
  const CExpr *value() const { return Value; }
  static bool classof(const CExpr *E) {
    return E->kind() == CExprKind::Assign;
  }

private:
  const CExpr *Target;
  const CExpr *Value;
};

class CCall : public CExpr {
public:
  CCall(SourceLoc Loc, const CExpr *Callee, std::vector<const CExpr *> Args)
      : CExpr(CExprKind::Call, Loc), Callee(Callee), Args(std::move(Args)) {}
  const CExpr *callee() const { return Callee; }
  const std::vector<const CExpr *> &args() const { return Args; }
  static bool classof(const CExpr *E) { return E->kind() == CExprKind::Call; }

private:
  const CExpr *Callee;
  std::vector<const CExpr *> Args;
};

/// Member access `base.field` or `base->field`.
class CMember : public CExpr {
public:
  CMember(SourceLoc Loc, const CExpr *Base, std::string Field, bool IsArrow)
      : CExpr(CExprKind::Member, Loc), Base(Base), Field(std::move(Field)),
        Arrow(IsArrow) {}
  const CExpr *base() const { return Base; }
  const std::string &field() const { return Field; }
  bool isArrow() const { return Arrow; }
  static bool classof(const CExpr *E) {
    return E->kind() == CExprKind::Member;
  }

private:
  const CExpr *Base;
  std::string Field;
  bool Arrow;
};

class CCast : public CExpr {
public:
  CCast(SourceLoc Loc, const CType *Target, const CExpr *Sub)
      : CExpr(CExprKind::Cast, Loc), Target(Target), Sub(Sub) {}
  const CType *target() const { return Target; }
  const CExpr *sub() const { return Sub; }
  static bool classof(const CExpr *E) { return E->kind() == CExprKind::Cast; }

private:
  const CType *Target;
  const CExpr *Sub;
};

class CSizeOf : public CExpr {
public:
  CSizeOf(SourceLoc Loc, const CType *Target)
      : CExpr(CExprKind::SizeOf, Loc), Target(Target) {}
  const CType *target() const { return Target; }
  static bool classof(const CExpr *E) {
    return E->kind() == CExprKind::SizeOf;
  }

private:
  const CType *Target;
};

// === Statements =============================================================

enum class CStmtKind { Expr, Decl, If, While, Return, Block };

class CStmt {
public:
  CStmtKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

  CStmt(const CStmt &) = delete;
  CStmt &operator=(const CStmt &) = delete;

protected:
  CStmt(CStmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
  ~CStmt() = default;

private:
  CStmtKind Kind;
  SourceLoc Loc;
};

template <typename T> bool isa(const CStmt *S) { return T::classof(S); }
template <typename T> const T *cast(const CStmt *S) {
  assert(T::classof(S) && "bad cast");
  return static_cast<const T *>(S);
}

class CExprStmt : public CStmt {
public:
  CExprStmt(SourceLoc Loc, const CExpr *E)
      : CStmt(CStmtKind::Expr, Loc), E(E) {}
  const CExpr *expr() const { return E; }
  static bool classof(const CStmt *S) { return S->kind() == CStmtKind::Expr; }

private:
  const CExpr *E;
};

/// A local variable declaration, e.g. `int *nonnull p = q;`.
class CDeclStmt : public CStmt {
public:
  CDeclStmt(SourceLoc Loc, std::string Name, const CType *Ty,
            const CExpr *Init)
      : CStmt(CStmtKind::Decl, Loc), Name(std::move(Name)), Ty(Ty),
        Init(Init) {}
  const std::string &name() const { return Name; }
  const CType *type() const { return Ty; }
  const CExpr *init() const { return Init; } ///< May be null.
  static bool classof(const CStmt *S) { return S->kind() == CStmtKind::Decl; }

private:
  std::string Name;
  const CType *Ty;
  const CExpr *Init;
};

class CIfStmt : public CStmt {
public:
  CIfStmt(SourceLoc Loc, const CExpr *Cond, const CStmt *Then,
          const CStmt *Else)
      : CStmt(CStmtKind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}
  const CExpr *cond() const { return Cond; }
  const CStmt *thenStmt() const { return Then; }
  const CStmt *elseStmt() const { return Else; } ///< May be null.
  static bool classof(const CStmt *S) { return S->kind() == CStmtKind::If; }

private:
  const CExpr *Cond;
  const CStmt *Then;
  const CStmt *Else;
};

class CWhileStmt : public CStmt {
public:
  CWhileStmt(SourceLoc Loc, const CExpr *Cond, const CStmt *Body)
      : CStmt(CStmtKind::While, Loc), Cond(Cond), Body(Body) {}
  const CExpr *cond() const { return Cond; }
  const CStmt *body() const { return Body; }
  static bool classof(const CStmt *S) {
    return S->kind() == CStmtKind::While;
  }

private:
  const CExpr *Cond;
  const CStmt *Body;
};

class CReturnStmt : public CStmt {
public:
  CReturnStmt(SourceLoc Loc, const CExpr *Value)
      : CStmt(CStmtKind::Return, Loc), Value(Value) {}
  const CExpr *value() const { return Value; } ///< May be null.
  static bool classof(const CStmt *S) {
    return S->kind() == CStmtKind::Return;
  }

private:
  const CExpr *Value;
};

class CBlockStmt : public CStmt {
public:
  CBlockStmt(SourceLoc Loc, std::vector<const CStmt *> Stmts)
      : CStmt(CStmtKind::Block, Loc), Stmts(std::move(Stmts)) {}
  const std::vector<const CStmt *> &stmts() const { return Stmts; }
  static bool classof(const CStmt *S) {
    return S->kind() == CStmtKind::Block;
  }

private:
  std::vector<const CStmt *> Stmts;
};

// === Declarations ============================================================

/// A struct definition.
class CStructDecl {
public:
  struct Field {
    std::string Name;
    const CType *Ty;
  };

  CStructDecl(SourceLoc Loc, std::string Name)
      : Loc(Loc), Name(std::move(Name)) {}

  SourceLoc loc() const { return Loc; }
  const std::string &name() const { return Name; }
  const std::vector<Field> &fields() const { return Fields; }
  void addField(std::string FieldName, const CType *Ty) {
    Fields.push_back({std::move(FieldName), Ty});
  }
  /// Returns the field with \p FieldName, or null.
  const Field *findField(const std::string &FieldName) const {
    for (const Field &F : Fields)
      if (F.Name == FieldName)
        return &F;
    return nullptr;
  }

private:
  SourceLoc Loc;
  std::string Name;
  std::vector<Field> Fields;
};

/// A function declaration or definition.
class CFuncDecl {
public:
  struct Param {
    std::string Name;
    const CType *Ty;
  };

  CFuncDecl(SourceLoc Loc, std::string Name, const CType *Ret,
            std::vector<Param> Params, MixAnnot Annot, const CStmt *Body)
      : Loc(Loc), Name(std::move(Name)), Ret(Ret), Params(std::move(Params)),
        Annot(Annot), Body(Body) {}

  SourceLoc loc() const { return Loc; }
  const std::string &name() const { return Name; }
  const CType *returnType() const { return Ret; }
  const std::vector<Param> &params() const { return Params; }
  MixAnnot mixAnnot() const { return Annot; }
  const CStmt *body() const { return Body; } ///< Null for externs.
  bool isDefined() const { return Body != nullptr; }

private:
  SourceLoc Loc;
  std::string Name;
  const CType *Ret;
  std::vector<Param> Params;
  MixAnnot Annot;
  const CStmt *Body;
};

/// A global variable.
class CGlobalDecl {
public:
  CGlobalDecl(SourceLoc Loc, std::string Name, const CType *Ty,
              const CExpr *Init)
      : Loc(Loc), Name(std::move(Name)), Ty(Ty), Init(Init) {}
  SourceLoc loc() const { return Loc; }
  const std::string &name() const { return Name; }
  const CType *type() const { return Ty; }
  const CExpr *init() const { return Init; } ///< May be null.

private:
  SourceLoc Loc;
  std::string Name;
  const CType *Ty;
  const CExpr *Init;
};

/// A whole translation unit.
class CProgram {
public:
  std::vector<const CStructDecl *> Structs;
  std::vector<const CGlobalDecl *> Globals;
  std::vector<const CFuncDecl *> Funcs;

  const CStructDecl *findStruct(const std::string &Name) const;
  const CGlobalDecl *findGlobal(const std::string &Name) const;
  const CFuncDecl *findFunc(const std::string &Name) const;
};

/// Owns every node of a mini-C parse.
class CAstContext {
public:
  // Types.
  const CType *voidType();
  const CType *intType();
  const CType *charType();
  const CType *pointerType(const CType *Pointee,
                           QualAnnot Qual = QualAnnot::None);
  const CType *structType(const CStructDecl *Decl);
  const CType *funcType(const CType *Result,
                        std::vector<const CType *> Params);

  // Nodes.
  template <typename T, typename... Args> T *make(Args &&...As) {
    auto Node = std::make_unique<T>(std::forward<Args>(As)...);
    T *Ptr = Node.get();
    std::lock_guard<std::mutex> Lock(OwnM);
    Owned.push_back(
        OwnedPtr(Node.release(), [](void *P) { delete static_cast<T *>(P); }));
    return Ptr;
  }

private:
  const CType *makeType(CTypeKind Kind, const CType *Inner, QualAnnot Qual,
                        const CStructDecl *Struct,
                        std::vector<const CType *> Params);

  using OwnedPtr = std::unique_ptr<void, void (*)(void *)>;
  /// Concurrent block analyses share the context and allocate types on
  /// demand (e.g. for lazily initialized cells), so ownership vectors and
  /// the singleton type slots are guarded. Pointers handed out stay
  /// stable; only allocation takes the lock.
  std::mutex OwnM;
  std::mutex SingletonM;
  std::vector<OwnedPtr> Owned;
  std::vector<std::unique_ptr<const CType>> OwnedTypes;
  const CType *VoidTy = nullptr;
  const CType *IntTy = nullptr;
  const CType *CharTy = nullptr;
};

} // namespace mix::c

#endif // MIX_CFRONT_CAST_H
