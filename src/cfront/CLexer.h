//===--- CLexer.h - Lexer for the mini-C front end --------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokens and lexer for mini-C. `null`, `nonnull`, `MIX`, `NULL`, `typed`
/// and `symbolic` are contextual keywords matching the paper's surface
/// syntax for qualifier and analysis annotations.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_CFRONT_CLEXER_H
#define MIX_CFRONT_CLEXER_H

#include "support/Diagnostics.h"

#include <string>
#include <string_view>
#include <vector>

namespace mix::c {

enum class CTokKind {
  Eof,
  Error,
  Ident,
  IntLit,
  StrLit,

  // Keywords.
  KwVoid,
  KwInt,
  KwChar,
  KwStruct,
  KwIf,
  KwElse,
  KwWhile,
  KwReturn,
  KwSizeof,
  KwNullMacro, ///< NULL
  KwNullQual,  ///< null
  KwNonnull,   ///< nonnull
  KwMix,       ///< MIX

  // Punctuation.
  LBrace,
  RBrace,
  LParen,
  RParen,
  Semi,
  Comma,
  Star,
  Amp,
  Bang,
  Minus,
  Plus,
  EqEq,
  BangEq,
  Less,
  Greater,
  LessEq,
  GreaterEq,
  AmpAmp,
  PipePipe,
  Assign,
  Dot,
  Arrow,
};

const char *cTokKindName(CTokKind Kind);

struct CTok {
  CTokKind Kind = CTokKind::Eof;
  SourceLoc Loc;
  std::string Text; ///< Identifier or string-literal contents.
  long long IntValue = 0;

  bool is(CTokKind K) const { return Kind == K; }
};

/// Lexes a whole buffer up front (the parser wants cheap lookahead).
std::vector<CTok> lexC(std::string_view Source, DiagnosticEngine &Diags);

} // namespace mix::c

#endif // MIX_CFRONT_CLEXER_H
