//===--- CParser.cpp - Parser for the mini-C front end ---------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "cfront/CParser.h"

using namespace mix::c;
using mix::SourceLoc;

namespace {

/// One parsed declarator: a name and the fully-built type.
struct Declarator {
  std::string Name;
  const CType *Ty = nullptr;
};

class ParserImpl {
public:
  ParserImpl(std::string_view Source, CAstContext &Ctx,
             mix::DiagnosticEngine &Diags)
      : Ctx(Ctx), Diags(Diags) {
    Toks = lexC(Source, Diags);
  }

  const CProgram *parseProgram() {
    auto *Program = Ctx.make<CProgram>();
    while (!tok().is(CTokKind::Eof)) {
      if (tok().is(CTokKind::Error))
        return nullptr;
      if (!parseTopLevel(*Program))
        return nullptr;
    }
    return Program;
  }

private:
  // --- token plumbing -----------------------------------------------------

  const CTok &tok(size_t LookAhead = 0) const {
    size_t I = Pos + LookAhead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  void consume() {
    if (Pos + 1 < Toks.size())
      ++Pos;
  }
  bool expect(CTokKind Kind) {
    if (tok().is(Kind)) {
      consume();
      return true;
    }
    Diags.error(tok().Loc,
                std::string("expected ") + cTokKindName(Kind) + ", found " +
                    cTokKindName(tok().Kind),
                mix::DiagID::ParseError);
    return false;
  }
  bool error(const std::string &Message) {
    Diags.error(tok().Loc, Message, mix::DiagID::ParseError);
    return false;
  }

  bool startsType() const {
    switch (tok().Kind) {
    case CTokKind::KwVoid:
    case CTokKind::KwInt:
    case CTokKind::KwChar:
    case CTokKind::KwStruct:
      return true;
    default:
      return false;
    }
  }

  // --- types and declarators ----------------------------------------------

  /// Parses a declaration specifier: void | int | char | struct S.
  const CType *parseDeclSpec(CProgram &Program) {
    switch (tok().Kind) {
    case CTokKind::KwVoid:
      consume();
      return Ctx.voidType();
    case CTokKind::KwInt:
      consume();
      return Ctx.intType();
    case CTokKind::KwChar:
      consume();
      return Ctx.charType();
    case CTokKind::KwStruct: {
      consume();
      if (!tok().is(CTokKind::Ident)) {
        error("expected struct name");
        return nullptr;
      }
      std::string Name = tok().Text;
      consume();
      const CStructDecl *S = Program.findStruct(Name);
      if (!S) {
        // Forward reference: create an empty placeholder that a later
        // definition fills in (single-pass like CIL's merger).
        auto *Fresh = Ctx.make<CStructDecl>(tok().Loc, Name);
        Program.Structs.push_back(Fresh);
        S = Fresh;
      }
      return Ctx.structType(S);
    }
    default:
      error("expected a type");
      return nullptr;
    }
  }

  /// Parses `* [null|nonnull]`-chains on top of \p Base.
  const CType *parsePointers(const CType *Base) {
    while (tok().is(CTokKind::Star)) {
      consume();
      QualAnnot Q = QualAnnot::None;
      if (tok().is(CTokKind::KwNullQual)) {
        Q = QualAnnot::Null;
        consume();
      } else if (tok().is(CTokKind::KwNonnull)) {
        Q = QualAnnot::Nonnull;
        consume();
      }
      Base = Ctx.pointerType(Base, Q);
    }
    return Base;
  }

  /// Parses a declarator over \p Base: pointers then a name, or the
  /// function-pointer form `(* name)(params)`.
  bool parseDeclarator(CProgram &Program, const CType *Base,
                       Declarator &Out) {
    Base = parsePointers(Base);
    if (tok().is(CTokKind::LParen) && tok(1).is(CTokKind::Star)) {
      consume(); // (
      consume(); // *
      QualAnnot Q = QualAnnot::None;
      if (tok().is(CTokKind::KwNullQual)) {
        Q = QualAnnot::Null;
        consume();
      } else if (tok().is(CTokKind::KwNonnull)) {
        Q = QualAnnot::Nonnull;
        consume();
      }
      if (!tok().is(CTokKind::Ident))
        return error("expected function-pointer name");
      Out.Name = tok().Text;
      consume();
      if (!expect(CTokKind::RParen) || !expect(CTokKind::LParen))
        return false;
      std::vector<const CType *> ParamTypes;
      if (!parseParamTypes(Program, ParamTypes))
        return false;
      Out.Ty = Ctx.pointerType(Ctx.funcType(Base, std::move(ParamTypes)), Q);
      return true;
    }
    if (!tok().is(CTokKind::Ident))
      return error("expected declarator name");
    Out.Name = tok().Text;
    consume();
    Out.Ty = Base;
    return true;
  }

  /// Parses a parameter type list up to and including ')'.
  bool parseParamTypes(CProgram &Program,
                       std::vector<const CType *> &Out) {
    if (tok().is(CTokKind::KwVoid) && tok(1).is(CTokKind::RParen)) {
      consume();
      consume();
      return true;
    }
    if (tok().is(CTokKind::RParen)) {
      consume();
      return true;
    }
    for (;;) {
      const CType *Spec = parseDeclSpec(Program);
      if (!Spec)
        return false;
      const CType *Ty = parsePointers(Spec);
      if (tok().is(CTokKind::Ident))
        consume(); // parameter name in a type context is ignored
      Out.push_back(Ty);
      if (tok().is(CTokKind::Comma)) {
        consume();
        continue;
      }
      return expect(CTokKind::RParen);
    }
  }

  /// Parses a full parameter list (with names) up to and including ')'.
  bool parseParams(CProgram &Program, std::vector<CFuncDecl::Param> &Out) {
    if (tok().is(CTokKind::KwVoid) && tok(1).is(CTokKind::RParen)) {
      consume();
      consume();
      return true;
    }
    if (tok().is(CTokKind::RParen)) {
      consume();
      return true;
    }
    for (;;) {
      const CType *Spec = parseDeclSpec(Program);
      if (!Spec)
        return false;
      Declarator D;
      if (!parseDeclarator(Program, Spec, D))
        return false;
      Out.push_back({D.Name, D.Ty});
      if (tok().is(CTokKind::Comma)) {
        consume();
        continue;
      }
      return expect(CTokKind::RParen);
    }
  }

  // --- top level -------------------------------------------------------------

  bool parseTopLevel(CProgram &Program) {
    // struct definition?
    if (tok().is(CTokKind::KwStruct) && tok(1).is(CTokKind::Ident) &&
        tok(2).is(CTokKind::LBrace))
      return parseStructDef(Program);

    const CType *Spec = parseDeclSpec(Program);
    if (!Spec)
      return false;
    Declarator D;
    if (!parseDeclarator(Program, Spec, D))
      return false;

    // Function declaration or definition.
    if (tok().is(CTokKind::LParen)) {
      SourceLoc Loc = tok().Loc;
      consume();
      std::vector<CFuncDecl::Param> Params;
      if (!parseParams(Program, Params))
        return false;
      MixAnnot Annot = MixAnnot::None;
      if (tok().is(CTokKind::KwMix)) {
        consume();
        if (!expect(CTokKind::LParen))
          return false;
        if (tok().is(CTokKind::Ident) && tok().Text == "typed")
          Annot = MixAnnot::Typed;
        else if (tok().is(CTokKind::Ident) && tok().Text == "symbolic")
          Annot = MixAnnot::Symbolic;
        else
          return error("expected 'typed' or 'symbolic' in MIX(...)");
        consume();
        if (!expect(CTokKind::RParen))
          return false;
      }
      const CStmt *Body = nullptr;
      if (tok().is(CTokKind::LBrace)) {
        Body = parseBlock(Program);
        if (!Body)
          return false;
      } else if (!expect(CTokKind::Semi)) {
        return false;
      }
      Program.Funcs.push_back(Ctx.make<CFuncDecl>(
          Loc, D.Name, D.Ty, std::move(Params), Annot, Body));
      return true;
    }

    // Global variable.
    const CExpr *Init = nullptr;
    SourceLoc Loc = tok().Loc;
    if (tok().is(CTokKind::Assign)) {
      consume();
      Init = parseExpr(Program);
      if (!Init)
        return false;
    }
    if (!expect(CTokKind::Semi))
      return false;
    Program.Globals.push_back(
        Ctx.make<CGlobalDecl>(Loc, D.Name, D.Ty, Init));
    return true;
  }

  bool parseStructDef(CProgram &Program) {
    consume(); // struct
    std::string Name = tok().Text;
    SourceLoc Loc = tok().Loc;
    consume(); // name
    consume(); // {
    CStructDecl *S = nullptr;
    if (const CStructDecl *Existing = Program.findStruct(Name)) {
      // Fill in a forward declaration.
      S = const_cast<CStructDecl *>(Existing);
      if (!S->fields().empty()) {
        Diags.error(Loc, "struct '" + Name + "' redefined", mix::DiagID::ParseError);
        return false;
      }
    } else {
      S = Ctx.make<CStructDecl>(Loc, Name);
      Program.Structs.push_back(S);
    }
    while (!tok().is(CTokKind::RBrace)) {
      const CType *Spec = parseDeclSpec(Program);
      if (!Spec)
        return false;
      Declarator D;
      if (!parseDeclarator(Program, Spec, D))
        return false;
      if (!expect(CTokKind::Semi))
        return false;
      S->addField(D.Name, D.Ty);
    }
    consume(); // }
    return expect(CTokKind::Semi);
  }

  // --- statements -----------------------------------------------------------

  const CStmt *parseBlock(CProgram &Program) {
    SourceLoc Loc = tok().Loc;
    if (!expect(CTokKind::LBrace))
      return nullptr;
    std::vector<const CStmt *> Stmts;
    while (!tok().is(CTokKind::RBrace)) {
      if (tok().is(CTokKind::Eof) || tok().is(CTokKind::Error)) {
        error("unterminated block");
        return nullptr;
      }
      const CStmt *S = parseStmt(Program);
      if (!S)
        return nullptr;
      Stmts.push_back(S);
    }
    consume(); // }
    return Ctx.make<CBlockStmt>(Loc, std::move(Stmts));
  }

  const CStmt *parseStmt(CProgram &Program) {
    SourceLoc Loc = tok().Loc;
    switch (tok().Kind) {
    case CTokKind::Semi:
      consume();
      return Ctx.make<CBlockStmt>(Loc, std::vector<const CStmt *>());
    case CTokKind::LBrace:
      return parseBlock(Program);
    case CTokKind::KwIf: {
      consume();
      if (!expect(CTokKind::LParen))
        return nullptr;
      const CExpr *Cond = parseExpr(Program);
      if (!Cond || !expect(CTokKind::RParen))
        return nullptr;
      const CStmt *Then = parseStmt(Program);
      if (!Then)
        return nullptr;
      const CStmt *Else = nullptr;
      if (tok().is(CTokKind::KwElse)) {
        consume();
        Else = parseStmt(Program);
        if (!Else)
          return nullptr;
      }
      return Ctx.make<CIfStmt>(Loc, Cond, Then, Else);
    }
    case CTokKind::KwWhile: {
      consume();
      if (!expect(CTokKind::LParen))
        return nullptr;
      const CExpr *Cond = parseExpr(Program);
      if (!Cond || !expect(CTokKind::RParen))
        return nullptr;
      const CStmt *Body = parseStmt(Program);
      if (!Body)
        return nullptr;
      return Ctx.make<CWhileStmt>(Loc, Cond, Body);
    }
    case CTokKind::KwReturn: {
      consume();
      const CExpr *Value = nullptr;
      if (!tok().is(CTokKind::Semi)) {
        Value = parseExpr(Program);
        if (!Value)
          return nullptr;
      }
      if (!expect(CTokKind::Semi))
        return nullptr;
      return Ctx.make<CReturnStmt>(Loc, Value);
    }
    default:
      break;
    }

    // Local declaration?
    if (startsType()) {
      const CType *Spec = parseDeclSpec(Program);
      if (!Spec)
        return nullptr;
      Declarator D;
      if (!parseDeclarator(Program, Spec, D))
        return nullptr;
      const CExpr *Init = nullptr;
      if (tok().is(CTokKind::Assign)) {
        consume();
        Init = parseExpr(Program);
        if (!Init)
          return nullptr;
      }
      if (!expect(CTokKind::Semi))
        return nullptr;
      return Ctx.make<CDeclStmt>(Loc, D.Name, D.Ty, Init);
    }

    // Expression statement.
    const CExpr *E = parseExpr(Program);
    if (!E || !expect(CTokKind::Semi))
      return nullptr;
    return Ctx.make<CExprStmt>(Loc, E);
  }

  // --- expressions ------------------------------------------------------------

  const CExpr *parseExpr(CProgram &Program) { return parseAssign(Program); }

  const CExpr *parseAssign(CProgram &Program) {
    const CExpr *Lhs = parseLOr(Program);
    if (!Lhs)
      return nullptr;
    if (!tok().is(CTokKind::Assign))
      return Lhs;
    SourceLoc Loc = tok().Loc;
    consume();
    const CExpr *Rhs = parseAssign(Program);
    if (!Rhs)
      return nullptr;
    return Ctx.make<CAssign>(Loc, Lhs, Rhs);
  }

  const CExpr *parseLOr(CProgram &Program) {
    const CExpr *Lhs = parseLAnd(Program);
    if (!Lhs)
      return nullptr;
    while (tok().is(CTokKind::PipePipe)) {
      SourceLoc Loc = tok().Loc;
      consume();
      const CExpr *Rhs = parseLAnd(Program);
      if (!Rhs)
        return nullptr;
      Lhs = Ctx.make<CBinary>(Loc, CBinaryOp::LOr, Lhs, Rhs);
    }
    return Lhs;
  }

  const CExpr *parseLAnd(CProgram &Program) {
    const CExpr *Lhs = parseEquality(Program);
    if (!Lhs)
      return nullptr;
    while (tok().is(CTokKind::AmpAmp)) {
      SourceLoc Loc = tok().Loc;
      consume();
      const CExpr *Rhs = parseEquality(Program);
      if (!Rhs)
        return nullptr;
      Lhs = Ctx.make<CBinary>(Loc, CBinaryOp::LAnd, Lhs, Rhs);
    }
    return Lhs;
  }

  const CExpr *parseEquality(CProgram &Program) {
    const CExpr *Lhs = parseRelational(Program);
    if (!Lhs)
      return nullptr;
    while (tok().is(CTokKind::EqEq) || tok().is(CTokKind::BangEq)) {
      CBinaryOp Op =
          tok().is(CTokKind::EqEq) ? CBinaryOp::Eq : CBinaryOp::Ne;
      SourceLoc Loc = tok().Loc;
      consume();
      const CExpr *Rhs = parseRelational(Program);
      if (!Rhs)
        return nullptr;
      Lhs = Ctx.make<CBinary>(Loc, Op, Lhs, Rhs);
    }
    return Lhs;
  }

  const CExpr *parseRelational(CProgram &Program) {
    const CExpr *Lhs = parseAdditive(Program);
    if (!Lhs)
      return nullptr;
    for (;;) {
      CBinaryOp Op;
      if (tok().is(CTokKind::Less))
        Op = CBinaryOp::Lt;
      else if (tok().is(CTokKind::Greater))
        Op = CBinaryOp::Gt;
      else if (tok().is(CTokKind::LessEq))
        Op = CBinaryOp::Le;
      else if (tok().is(CTokKind::GreaterEq))
        Op = CBinaryOp::Ge;
      else
        return Lhs;
      SourceLoc Loc = tok().Loc;
      consume();
      const CExpr *Rhs = parseAdditive(Program);
      if (!Rhs)
        return nullptr;
      Lhs = Ctx.make<CBinary>(Loc, Op, Lhs, Rhs);
    }
  }

  const CExpr *parseAdditive(CProgram &Program) {
    const CExpr *Lhs = parseUnary(Program);
    if (!Lhs)
      return nullptr;
    while (tok().is(CTokKind::Plus) || tok().is(CTokKind::Minus)) {
      CBinaryOp Op =
          tok().is(CTokKind::Plus) ? CBinaryOp::Add : CBinaryOp::Sub;
      SourceLoc Loc = tok().Loc;
      consume();
      const CExpr *Rhs = parseUnary(Program);
      if (!Rhs)
        return nullptr;
      Lhs = Ctx.make<CBinary>(Loc, Op, Lhs, Rhs);
    }
    return Lhs;
  }

  const CExpr *parseUnary(CProgram &Program) {
    SourceLoc Loc = tok().Loc;
    switch (tok().Kind) {
    case CTokKind::Star: {
      consume();
      const CExpr *Sub = parseUnary(Program);
      if (!Sub)
        return nullptr;
      return Ctx.make<CUnary>(Loc, CUnaryOp::Deref, Sub);
    }
    case CTokKind::Amp: {
      consume();
      const CExpr *Sub = parseUnary(Program);
      if (!Sub)
        return nullptr;
      return Ctx.make<CUnary>(Loc, CUnaryOp::AddrOf, Sub);
    }
    case CTokKind::Bang: {
      consume();
      const CExpr *Sub = parseUnary(Program);
      if (!Sub)
        return nullptr;
      return Ctx.make<CUnary>(Loc, CUnaryOp::Not, Sub);
    }
    case CTokKind::Minus: {
      consume();
      const CExpr *Sub = parseUnary(Program);
      if (!Sub)
        return nullptr;
      return Ctx.make<CUnary>(Loc, CUnaryOp::Neg, Sub);
    }
    case CTokKind::KwSizeof: {
      consume();
      if (!expect(CTokKind::LParen))
        return nullptr;
      const CType *Spec = parseDeclSpec(Program);
      if (!Spec)
        return nullptr;
      const CType *Ty = parsePointers(Spec);
      if (!expect(CTokKind::RParen))
        return nullptr;
      return Ctx.make<CSizeOf>(Loc, Ty);
    }
    case CTokKind::LParen:
      // Cast when the parenthesis opens a type.
      if (tok(1).is(CTokKind::KwVoid) || tok(1).is(CTokKind::KwInt) ||
          tok(1).is(CTokKind::KwChar) || tok(1).is(CTokKind::KwStruct)) {
        consume();
        const CType *Spec = parseDeclSpec(Program);
        if (!Spec)
          return nullptr;
        const CType *Ty = parsePointers(Spec);
        if (!expect(CTokKind::RParen))
          return nullptr;
        const CExpr *Sub = parseUnary(Program);
        if (!Sub)
          return nullptr;
        return Ctx.make<CCast>(Loc, Ty, Sub);
      }
      break;
    default:
      break;
    }
    return parsePostfix(Program);
  }

  const CExpr *parsePostfix(CProgram &Program) {
    const CExpr *E = parsePrimary(Program);
    if (!E)
      return nullptr;
    for (;;) {
      SourceLoc Loc = tok().Loc;
      if (tok().is(CTokKind::Dot) || tok().is(CTokKind::Arrow)) {
        bool IsArrow = tok().is(CTokKind::Arrow);
        consume();
        if (!tok().is(CTokKind::Ident)) {
          error("expected field name");
          return nullptr;
        }
        std::string Field = tok().Text;
        consume();
        E = Ctx.make<CMember>(Loc, E, std::move(Field), IsArrow);
        continue;
      }
      if (tok().is(CTokKind::LParen)) {
        consume();
        std::vector<const CExpr *> Args;
        if (!tok().is(CTokKind::RParen)) {
          for (;;) {
            const CExpr *Arg = parseExpr(Program);
            if (!Arg)
              return nullptr;
            Args.push_back(Arg);
            if (tok().is(CTokKind::Comma)) {
              consume();
              continue;
            }
            break;
          }
        }
        if (!expect(CTokKind::RParen))
          return nullptr;
        E = Ctx.make<CCall>(Loc, E, std::move(Args));
        continue;
      }
      return E;
    }
  }

  const CExpr *parsePrimary(CProgram &Program) {
    SourceLoc Loc = tok().Loc;
    switch (tok().Kind) {
    case CTokKind::IntLit: {
      long long V = tok().IntValue;
      consume();
      return Ctx.make<CIntLit>(Loc, V);
    }
    case CTokKind::StrLit: {
      std::string S = tok().Text;
      consume();
      return Ctx.make<CStrLit>(Loc, std::move(S));
    }
    case CTokKind::KwNullMacro:
      consume();
      return Ctx.make<CNullLit>(Loc);
    case CTokKind::Ident: {
      std::string Name = tok().Text;
      consume();
      return Ctx.make<CIdent>(Loc, std::move(Name));
    }
    case CTokKind::LParen: {
      consume();
      const CExpr *Inner = parseExpr(Program);
      if (!Inner || !expect(CTokKind::RParen))
        return nullptr;
      return Inner;
    }
    default:
      error(std::string("expected expression, found ") +
            cTokKindName(tok().Kind));
      return nullptr;
    }
  }

  CAstContext &Ctx;
  mix::DiagnosticEngine &Diags;
  std::vector<CTok> Toks;
  size_t Pos = 0;
};

} // namespace

const CProgram *mix::c::parseC(std::string_view Source, CAstContext &Ctx,
                               mix::DiagnosticEngine &Diags) {
  ParserImpl P(Source, Ctx, Diags);
  const CProgram *Program = P.parseProgram();
  if (Diags.hasErrors())
    return nullptr;
  return Program;
}
