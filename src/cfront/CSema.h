//===--- CSema.h - Name resolution and expression typing -------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight semantic analysis for mini-C: resolves names against a
/// scope (locals, parameters, globals, functions) and computes the static
/// type of expressions. All downstream analyses — qualifier inference,
/// the pointer analysis, and the C symbolic executor — share this.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_CFRONT_CSEMA_H
#define MIX_CFRONT_CSEMA_H

#include "cfront/CAst.h"
#include "support/Diagnostics.h"

#include <map>

namespace mix::c {

/// A lexical scope within a function body.
struct CScope {
  const CFuncDecl *Func = nullptr;
  std::map<std::string, const CType *> Locals;

  /// Builds the scope of a function entry: parameters only.
  static CScope forFunction(const CFuncDecl *F) {
    CScope S;
    S.Func = F;
    for (const auto &P : F->params())
      S.Locals[P.Name] = P.Ty;
    return S;
  }
};

/// Expression typing over a program.
class CSema {
public:
  CSema(const CProgram &Program, CAstContext &Ctx, DiagnosticEngine &Diags)
      : Program(Program), Ctx(Ctx), Diags(Diags) {}

  /// The type of name \p Name in \p Scope, or null. Resolution order:
  /// locals/params, globals, functions (as function-typed).
  const CType *typeOfName(const std::string &Name, const CScope &Scope);

  /// The static type of \p E in \p Scope; null (with a diagnostic) if the
  /// expression is ill-formed.
  const CType *typeOf(const CExpr *E, const CScope &Scope);

  /// True for expressions that denote storage (can be assigned / have
  /// their address taken).
  static bool isLValue(const CExpr *E);

  /// Resolves the callee of \p Call to a named function when it is a
  /// direct call (possibly through an explicit `(*f)` of a known name);
  /// returns null for calls through function-pointer values.
  const CFuncDecl *directCallee(const CCall *Call) const;

  /// Same, without a CSema instance: the resolution is purely syntactic
  /// over \p Program (used by the mini-C lowering, which runs without
  /// diagnostics or a typing context).
  static const CFuncDecl *directCallee(const CCall *Call,
                                       const CProgram &Program);

  const CProgram &program() const { return Program; }
  CAstContext &context() { return Ctx; }

private:
  const CType *fail(SourceLoc Loc, const std::string &Message) {
    Diags.error(Loc, Message, DiagID::TypeError);
    return nullptr;
  }

  const CProgram &Program;
  CAstContext &Ctx;
  DiagnosticEngine &Diags;
};

} // namespace mix::c

#endif // MIX_CFRONT_CSEMA_H
