//===--- CParser.h - Parser for the mini-C front end ------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for mini-C. Supported top-level forms:
///
///   struct S { fields };
///   <type> <declarator> ( params ) [MIX(typed|symbolic)] { body }   // def
///   <type> <declarator> ( params ) [MIX(typed|symbolic)] ;          // extern
///   <type> <declarator> [= init] ;                                  // global
///
/// Declarators are C-like but simplified: `* [null|nonnull]`-chains
/// followed by a name, plus the function-pointer form `(*name)(params)`.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_CFRONT_CPARSER_H
#define MIX_CFRONT_CPARSER_H

#include "cfront/CAst.h"
#include "cfront/CLexer.h"

namespace mix::c {

/// Parses a mini-C translation unit. Returns null (with diagnostics) on
/// failure.
const CProgram *parseC(std::string_view Source, CAstContext &Ctx,
                       DiagnosticEngine &Diags);

} // namespace mix::c

#endif // MIX_CFRONT_CPARSER_H
