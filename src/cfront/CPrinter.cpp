//===--- CPrinter.cpp - Pretty printer for mini-C ---------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "cfront/CPrinter.h"

using namespace mix::c;

namespace {

std::string indentBy(unsigned Indent) {
  return std::string(Indent * 2, ' ');
}

/// The base type specifier of a (possibly derived) type.
std::string baseSpec(const CType *Ty) {
  while (Ty->isPointer())
    Ty = Ty->pointee();
  if (Ty->isFunc())
    return baseSpec(Ty->result());
  return Ty->str();
}

} // namespace

std::string mix::c::printDecl(const CType *Ty, const std::string &Name) {
  // Function-pointer declarator: R (*name)(params).
  if (Ty->isPointer() && Ty->pointee()->isFunc()) {
    const CType *Fn = Ty->pointee();
    std::string Out = Fn->result()->str() + " (*";
    if (Ty->qualifier() != QualAnnot::None)
      Out += std::string(qualAnnotName(Ty->qualifier())) + " ";
    Out += Name + ")(";
    if (Fn->params().empty()) {
      Out += "void";
    } else {
      for (size_t I = 0; I != Fn->params().size(); ++I) {
        if (I != 0)
          Out += ", ";
        Out += Fn->params()[I]->str();
      }
    }
    Out += ")";
    return Out;
  }
  // Ordinary declarator: spec * [qual] * [qual] name. CType::str()
  // already renders pointers with their qualifiers.
  return Ty->str() + " " + Name;
}

std::string mix::c::printExpr(const CExpr *E) {
  switch (E->kind()) {
  case CExprKind::IntLit:
    return std::to_string(cast<CIntLit>(E)->value());
  case CExprKind::StrLit: {
    std::string Out = "\"";
    for (char C : cast<CStrLit>(E)->value()) {
      if (C == '"' || C == '\\')
        Out += '\\';
      Out += C;
    }
    return Out + "\"";
  }
  case CExprKind::NullLit:
    return "NULL";
  case CExprKind::Ident:
    return cast<CIdent>(E)->name();
  case CExprKind::Unary: {
    const auto *U = cast<CUnary>(E);
    return std::string("(") + cUnaryOpSpelling(U->op()) +
           printExpr(U->sub()) + ")";
  }
  case CExprKind::Binary: {
    const auto *B = cast<CBinary>(E);
    return "(" + printExpr(B->lhs()) + " " + cBinaryOpSpelling(B->op()) +
           " " + printExpr(B->rhs()) + ")";
  }
  case CExprKind::Assign: {
    const auto *A = cast<CAssign>(E);
    return "(" + printExpr(A->target()) + " = " + printExpr(A->value()) +
           ")";
  }
  case CExprKind::Call: {
    const auto *Call = cast<CCall>(E);
    std::string Out = printExpr(Call->callee()) + "(";
    for (size_t I = 0; I != Call->args().size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += printExpr(Call->args()[I]);
    }
    return Out + ")";
  }
  case CExprKind::Member: {
    const auto *M = cast<CMember>(E);
    return printExpr(M->base()) + (M->isArrow() ? "->" : ".") + M->field();
  }
  case CExprKind::Cast: {
    const auto *C = cast<CCast>(E);
    return "(" + C->target()->str() + ")" + printExpr(C->sub());
  }
  case CExprKind::SizeOf:
    return "sizeof(" + cast<CSizeOf>(E)->target()->str() + ")";
  }
  return "<invalid-expr>";
}

std::string mix::c::printStmt(const CStmt *S, unsigned Indent) {
  std::string Pad = indentBy(Indent);
  switch (S->kind()) {
  case CStmtKind::Expr:
    return Pad + printExpr(cast<CExprStmt>(S)->expr()) + ";\n";
  case CStmtKind::Decl: {
    const auto *D = cast<CDeclStmt>(S);
    std::string Out = Pad + printDecl(D->type(), D->name());
    if (D->init())
      Out += " = " + printExpr(D->init());
    return Out + ";\n";
  }
  case CStmtKind::If: {
    const auto *I = cast<CIfStmt>(S);
    std::string Out = Pad + "if (" + printExpr(I->cond()) + ")\n";
    Out += printStmt(I->thenStmt(), Indent + 1);
    if (I->elseStmt()) {
      Out += Pad + "else\n";
      Out += printStmt(I->elseStmt(), Indent + 1);
    }
    return Out;
  }
  case CStmtKind::While: {
    const auto *W = cast<CWhileStmt>(S);
    return Pad + "while (" + printExpr(W->cond()) + ")\n" +
           printStmt(W->body(), Indent + 1);
  }
  case CStmtKind::Return: {
    const auto *R = cast<CReturnStmt>(S);
    if (!R->value())
      return Pad + "return;\n";
    return Pad + "return " + printExpr(R->value()) + ";\n";
  }
  case CStmtKind::Block: {
    std::string Out = Pad + "{\n";
    for (const CStmt *Sub : cast<CBlockStmt>(S)->stmts())
      Out += printStmt(Sub, Indent + 1);
    return Out + Pad + "}\n";
  }
  }
  return Pad + "<invalid-stmt>;\n";
}

std::string mix::c::printProgram(const CProgram &Program) {
  std::string Out;
  for (const CStructDecl *S : Program.Structs) {
    if (S->fields().empty())
      continue; // forward references are re-created on demand
    Out += "struct " + S->name() + " {\n";
    for (const auto &F : S->fields())
      Out += "  " + printDecl(F.Ty, F.Name) + ";\n";
    Out += "};\n";
  }
  for (const CGlobalDecl *G : Program.Globals) {
    Out += printDecl(G->type(), G->name());
    if (G->init())
      Out += " = " + printExpr(G->init());
    Out += ";\n";
  }
  for (const CFuncDecl *F : Program.Funcs) {
    Out += F->returnType()->str() + " " + F->name() + "(";
    if (F->params().empty()) {
      Out += "void";
    } else {
      for (size_t I = 0; I != F->params().size(); ++I) {
        if (I != 0)
          Out += ", ";
        Out += printDecl(F->params()[I].Ty, F->params()[I].Name);
      }
    }
    Out += ")";
    if (F->mixAnnot() != MixAnnot::None)
      Out += std::string(" ") + mixAnnotName(F->mixAnnot());
    if (!F->isDefined()) {
      Out += ";\n";
      continue;
    }
    Out += "\n" + printStmt(F->body(), 0);
  }
  return Out;
}
