//===--- CLexer.cpp - Lexer for the mini-C front end -----------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "cfront/CLexer.h"

#include <cctype>
#include <unordered_map>

using namespace mix::c;
using mix::SourceLoc;

const char *mix::c::cTokKindName(CTokKind Kind) {
  switch (Kind) {
  case CTokKind::Eof:
    return "end of input";
  case CTokKind::Error:
    return "invalid token";
  case CTokKind::Ident:
    return "identifier";
  case CTokKind::IntLit:
    return "integer literal";
  case CTokKind::StrLit:
    return "string literal";
  case CTokKind::KwVoid:
    return "'void'";
  case CTokKind::KwInt:
    return "'int'";
  case CTokKind::KwChar:
    return "'char'";
  case CTokKind::KwStruct:
    return "'struct'";
  case CTokKind::KwIf:
    return "'if'";
  case CTokKind::KwElse:
    return "'else'";
  case CTokKind::KwWhile:
    return "'while'";
  case CTokKind::KwReturn:
    return "'return'";
  case CTokKind::KwSizeof:
    return "'sizeof'";
  case CTokKind::KwNullMacro:
    return "'NULL'";
  case CTokKind::KwNullQual:
    return "'null'";
  case CTokKind::KwNonnull:
    return "'nonnull'";
  case CTokKind::KwMix:
    return "'MIX'";
  case CTokKind::LBrace:
    return "'{'";
  case CTokKind::RBrace:
    return "'}'";
  case CTokKind::LParen:
    return "'('";
  case CTokKind::RParen:
    return "')'";
  case CTokKind::Semi:
    return "';'";
  case CTokKind::Comma:
    return "','";
  case CTokKind::Star:
    return "'*'";
  case CTokKind::Amp:
    return "'&'";
  case CTokKind::Bang:
    return "'!'";
  case CTokKind::Minus:
    return "'-'";
  case CTokKind::Plus:
    return "'+'";
  case CTokKind::EqEq:
    return "'=='";
  case CTokKind::BangEq:
    return "'!='";
  case CTokKind::Less:
    return "'<'";
  case CTokKind::Greater:
    return "'>'";
  case CTokKind::LessEq:
    return "'<='";
  case CTokKind::GreaterEq:
    return "'>='";
  case CTokKind::AmpAmp:
    return "'&&'";
  case CTokKind::PipePipe:
    return "'||'";
  case CTokKind::Assign:
    return "'='";
  case CTokKind::Dot:
    return "'.'";
  case CTokKind::Arrow:
    return "'->'";
  }
  return "unknown token";
}

namespace {

class LexerImpl {
public:
  LexerImpl(std::string_view Source, mix::DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  std::vector<CTok> lexAll() {
    std::vector<CTok> Toks;
    for (;;) {
      CTok T = next();
      bool Done = T.is(CTokKind::Eof) || T.is(CTokKind::Error);
      Toks.push_back(std::move(T));
      if (Done)
        break;
    }
    return Toks;
  }

private:
  char peek(size_t LookAhead = 0) const {
    return Pos + LookAhead < Source.size() ? Source[Pos + LookAhead] : '\0';
  }
  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Column = 1;
    } else {
      ++Column;
    }
    return C;
  }
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLoc loc() const { return {Line, Column}; }

  void skipTrivia() {
    while (!atEnd()) {
      char C = peek();
      if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
        advance();
        continue;
      }
      if (C == '/' && peek(1) == '/') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        SourceLoc Start = loc();
        advance();
        advance();
        while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
          advance();
        if (atEnd()) {
          Diags.error(Start, "unterminated comment", mix::DiagID::LexError);
          return;
        }
        advance();
        advance();
        continue;
      }
      return;
    }
  }

  CTok make(CTokKind Kind, SourceLoc Loc) {
    CTok T;
    T.Kind = Kind;
    T.Loc = Loc;
    return T;
  }

  CTok next() {
    skipTrivia();
    SourceLoc Start = loc();
    if (atEnd())
      return make(CTokKind::Eof, Start);

    char C = peek();
    if (std::isalpha((unsigned char)C) || C == '_')
      return lexIdent();
    if (std::isdigit((unsigned char)C))
      return lexNumber();
    if (C == '"')
      return lexString();

    advance();
    switch (C) {
    case '{':
      return make(CTokKind::LBrace, Start);
    case '}':
      return make(CTokKind::RBrace, Start);
    case '(':
      return make(CTokKind::LParen, Start);
    case ')':
      return make(CTokKind::RParen, Start);
    case ';':
      return make(CTokKind::Semi, Start);
    case ',':
      return make(CTokKind::Comma, Start);
    case '*':
      return make(CTokKind::Star, Start);
    case '.':
      return make(CTokKind::Dot, Start);
    case '+':
      return make(CTokKind::Plus, Start);
    case '-':
      if (peek() == '>') {
        advance();
        return make(CTokKind::Arrow, Start);
      }
      return make(CTokKind::Minus, Start);
    case '&':
      if (peek() == '&') {
        advance();
        return make(CTokKind::AmpAmp, Start);
      }
      return make(CTokKind::Amp, Start);
    case '|':
      if (peek() == '|') {
        advance();
        return make(CTokKind::PipePipe, Start);
      }
      break;
    case '!':
      if (peek() == '=') {
        advance();
        return make(CTokKind::BangEq, Start);
      }
      return make(CTokKind::Bang, Start);
    case '=':
      if (peek() == '=') {
        advance();
        return make(CTokKind::EqEq, Start);
      }
      return make(CTokKind::Assign, Start);
    case '<':
      if (peek() == '=') {
        advance();
        return make(CTokKind::LessEq, Start);
      }
      return make(CTokKind::Less, Start);
    case '>':
      if (peek() == '=') {
        advance();
        return make(CTokKind::GreaterEq, Start);
      }
      return make(CTokKind::Greater, Start);
    default:
      break;
    }
    Diags.error(Start, std::string("unexpected character '") + C + "'",
                mix::DiagID::LexError);
    return make(CTokKind::Error, Start);
  }

  CTok lexIdent() {
    SourceLoc Start = loc();
    std::string Text;
    while (!atEnd() &&
           (std::isalnum((unsigned char)peek()) || peek() == '_'))
      Text += advance();

    static const std::unordered_map<std::string_view, CTokKind> Keywords = {
        {"void", CTokKind::KwVoid},       {"int", CTokKind::KwInt},
        {"char", CTokKind::KwChar},       {"struct", CTokKind::KwStruct},
        {"if", CTokKind::KwIf},           {"else", CTokKind::KwElse},
        {"while", CTokKind::KwWhile},     {"return", CTokKind::KwReturn},
        {"sizeof", CTokKind::KwSizeof},   {"NULL", CTokKind::KwNullMacro},
        {"null", CTokKind::KwNullQual},   {"nonnull", CTokKind::KwNonnull},
        {"MIX", CTokKind::KwMix},
    };
    auto It = Keywords.find(Text);
    if (It != Keywords.end())
      return make(It->second, Start);
    CTok T = make(CTokKind::Ident, Start);
    T.Text = std::move(Text);
    return T;
  }

  CTok lexNumber() {
    SourceLoc Start = loc();
    long long Value = 0;
    while (!atEnd() && std::isdigit((unsigned char)peek()))
      Value = Value * 10 + (advance() - '0');
    CTok T = make(CTokKind::IntLit, Start);
    T.IntValue = Value;
    return T;
  }

  CTok lexString() {
    SourceLoc Start = loc();
    advance(); // opening quote
    std::string Text;
    while (!atEnd() && peek() != '"') {
      char C = advance();
      if (C == '\\' && !atEnd())
        C = advance();
      Text += C;
    }
    if (atEnd()) {
      Diags.error(Start, "unterminated string literal", mix::DiagID::LexError);
      return make(CTokKind::Error, Start);
    }
    advance(); // closing quote
    CTok T = make(CTokKind::StrLit, Start);
    T.Text = std::move(Text);
    return T;
  }

  std::string_view Source;
  mix::DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace

std::vector<CTok> mix::c::lexC(std::string_view Source,
                               mix::DiagnosticEngine &Diags) {
  LexerImpl L(Source, Diags);
  return L.lexAll();
}
