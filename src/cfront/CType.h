//===--- CType.h - Types for the mini-C front end ---------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type language of the mini-C front end (the CIL substitute used by
/// MIXY). It covers what the paper's case studies need: void, int, char,
/// pointers, named structs, and function types.
///
/// Pointer types carry the paper's two qualifier annotations, `null` and
/// `nonnull`, written after the `*` as in `void * nonnull p`. Because
/// annotations belong to declarations rather than to the underlying type,
/// CType trees are per-declaration (not interned); use
/// typesCompatible() for structural equality modulo qualifiers.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_CFRONT_CTYPE_H
#define MIX_CFRONT_CTYPE_H

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace mix::c {

/// Source-level qualifier annotation on a pointer level.
enum class QualAnnot {
  None,    ///< Unannotated — inference assigns a fresh qualifier variable.
  Null,    ///< `null` — may be the null pointer.
  Nonnull, ///< `nonnull` — must not be the null pointer.
};

const char *qualAnnotName(QualAnnot Q);

class CStructDecl;

/// Kinds of mini-C types.
enum class CTypeKind {
  Void,
  Int,
  Char,
  Pointer,
  Struct,
  Func,
};

/// A mini-C type tree. Owned by CAstContext.
class CType {
public:
  CTypeKind kind() const { return Kind; }

  bool isVoid() const { return Kind == CTypeKind::Void; }
  bool isInt() const { return Kind == CTypeKind::Int; }
  bool isChar() const { return Kind == CTypeKind::Char; }
  bool isScalar() const { return isInt() || isChar(); }
  bool isPointer() const { return Kind == CTypeKind::Pointer; }
  bool isStruct() const { return Kind == CTypeKind::Struct; }
  bool isFunc() const { return Kind == CTypeKind::Func; }

  /// For Pointer: the pointee type.
  const CType *pointee() const {
    assert(isPointer() && "pointee() on non-pointer");
    return Inner;
  }
  /// For Pointer: the source qualifier annotation on this level.
  QualAnnot qualifier() const {
    assert(isPointer() && "qualifier() on non-pointer");
    return Qual;
  }

  /// For Struct: the (possibly forward-declared) struct declaration.
  const CStructDecl *structDecl() const {
    assert(isStruct() && "structDecl() on non-struct");
    return Struct;
  }

  /// For Func: result and parameter types.
  const CType *result() const {
    assert(isFunc() && "result() on non-function");
    return Inner;
  }
  const std::vector<const CType *> &params() const {
    assert(isFunc() && "params() on non-function");
    return Params;
  }

  /// Renders the type, e.g. "struct foo * nonnull".
  std::string str() const;

private:
  friend class CAstContext;
  CType(CTypeKind Kind, const CType *Inner, QualAnnot Qual,
        const CStructDecl *Struct, std::vector<const CType *> Params)
      : Kind(Kind), Inner(Inner), Qual(Qual), Struct(Struct),
        Params(std::move(Params)) {}

  CTypeKind Kind;
  const CType *Inner;
  QualAnnot Qual;
  const CStructDecl *Struct;
  std::vector<const CType *> Params;
};

/// Structural type compatibility, ignoring qualifier annotations. This is
/// the notion of "same type" used for calling-context compatibility in
/// caching (Section 4.3) and for assignment checking.
bool typesCompatible(const CType *A, const CType *B);

} // namespace mix::c

#endif // MIX_CFRONT_CTYPE_H
