//===--- CPrinter.h - Pretty printer for mini-C ------------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders mini-C ASTs back to compilable source. Round-trips through the
/// parser (tested), and used by tools that report on annotated programs.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_CFRONT_CPRINTER_H
#define MIX_CFRONT_CPRINTER_H

#include "cfront/CAst.h"

#include <string>

namespace mix::c {

/// Renders a whole translation unit.
std::string printProgram(const CProgram &Program);

/// Renders one expression (fully parenthesized).
std::string printExpr(const CExpr *E);

/// Renders one statement at the given indentation depth.
std::string printStmt(const CStmt *S, unsigned Indent = 0);

/// Renders a declaration of \p Name with type \p Ty in C declarator
/// syntax (handles the function-pointer form).
std::string printDecl(const CType *Ty, const std::string &Name);

} // namespace mix::c

#endif // MIX_CFRONT_CPRINTER_H
