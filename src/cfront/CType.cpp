//===--- CType.cpp - Types for the mini-C front end ------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "cfront/CType.h"

#include "cfront/CAst.h"

using namespace mix::c;

const char *mix::c::qualAnnotName(QualAnnot Q) {
  switch (Q) {
  case QualAnnot::None:
    return "";
  case QualAnnot::Null:
    return "null";
  case QualAnnot::Nonnull:
    return "nonnull";
  }
  return "";
}

std::string CType::str() const {
  switch (Kind) {
  case CTypeKind::Void:
    return "void";
  case CTypeKind::Int:
    return "int";
  case CTypeKind::Char:
    return "char";
  case CTypeKind::Pointer: {
    std::string Out = pointee()->str() + " *";
    if (Qual != QualAnnot::None)
      Out += std::string(" ") + qualAnnotName(Qual);
    return Out;
  }
  case CTypeKind::Struct:
    return "struct " + Struct->name();
  case CTypeKind::Func: {
    std::string Out = result()->str() + " (";
    for (size_t I = 0; I != Params.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += Params[I]->str();
    }
    Out += ")";
    return Out;
  }
  }
  return "<invalid>";
}

bool mix::c::typesCompatible(const CType *A, const CType *B) {
  if (A == B)
    return true;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case CTypeKind::Void:
  case CTypeKind::Int:
  case CTypeKind::Char:
    return true;
  case CTypeKind::Pointer:
    // void* is compatible with any pointer (the malloc idiom).
    if (A->pointee()->isVoid() || B->pointee()->isVoid())
      return true;
    return typesCompatible(A->pointee(), B->pointee());
  case CTypeKind::Struct:
    return A->structDecl() == B->structDecl();
  case CTypeKind::Func: {
    if (!typesCompatible(A->result(), B->result()))
      return false;
    if (A->params().size() != B->params().size())
      return false;
    for (size_t I = 0; I != A->params().size(); ++I)
      if (!typesCompatible(A->params()[I], B->params()[I]))
        return false;
    return true;
  }
  }
  return false;
}
