//===--- CAst.cpp - AST for the mini-C front end ---------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "cfront/CAst.h"

using namespace mix::c;

const char *mix::c::mixAnnotName(MixAnnot A) {
  switch (A) {
  case MixAnnot::None:
    return "none";
  case MixAnnot::Typed:
    return "MIX(typed)";
  case MixAnnot::Symbolic:
    return "MIX(symbolic)";
  }
  return "none";
}

const char *mix::c::cUnaryOpSpelling(CUnaryOp Op) {
  switch (Op) {
  case CUnaryOp::Deref:
    return "*";
  case CUnaryOp::AddrOf:
    return "&";
  case CUnaryOp::Not:
    return "!";
  case CUnaryOp::Neg:
    return "-";
  }
  return "?";
}

const char *mix::c::cBinaryOpSpelling(CBinaryOp Op) {
  switch (Op) {
  case CBinaryOp::Add:
    return "+";
  case CBinaryOp::Sub:
    return "-";
  case CBinaryOp::Eq:
    return "==";
  case CBinaryOp::Ne:
    return "!=";
  case CBinaryOp::Lt:
    return "<";
  case CBinaryOp::Gt:
    return ">";
  case CBinaryOp::Le:
    return "<=";
  case CBinaryOp::Ge:
    return ">=";
  case CBinaryOp::LAnd:
    return "&&";
  case CBinaryOp::LOr:
    return "||";
  }
  return "?";
}

const CStructDecl *CProgram::findStruct(const std::string &Name) const {
  for (const CStructDecl *S : Structs)
    if (S->name() == Name)
      return S;
  return nullptr;
}

const CGlobalDecl *CProgram::findGlobal(const std::string &Name) const {
  for (const CGlobalDecl *G : Globals)
    if (G->name() == Name)
      return G;
  return nullptr;
}

const CFuncDecl *CProgram::findFunc(const std::string &Name) const {
  // Prefer the definition when a function is both forward-declared and
  // defined (the usual C prototype-then-body pattern).
  const CFuncDecl *Found = nullptr;
  for (const CFuncDecl *F : Funcs) {
    if (F->name() != Name)
      continue;
    if (F->isDefined())
      return F;
    if (!Found)
      Found = F;
  }
  return Found;
}

const CType *CAstContext::makeType(CTypeKind Kind, const CType *Inner,
                                   QualAnnot Qual, const CStructDecl *Struct,
                                   std::vector<const CType *> Params) {
  auto Fresh = std::unique_ptr<const CType>(
      new CType(Kind, Inner, Qual, Struct, std::move(Params)));
  const CType *Ptr = Fresh.get();
  std::lock_guard<std::mutex> Lock(OwnM);
  OwnedTypes.push_back(std::move(Fresh));
  return Ptr;
}

const CType *CAstContext::voidType() {
  std::lock_guard<std::mutex> Lock(SingletonM);
  if (!VoidTy)
    VoidTy = makeType(CTypeKind::Void, nullptr, QualAnnot::None, nullptr, {});
  return VoidTy;
}

const CType *CAstContext::intType() {
  std::lock_guard<std::mutex> Lock(SingletonM);
  if (!IntTy)
    IntTy = makeType(CTypeKind::Int, nullptr, QualAnnot::None, nullptr, {});
  return IntTy;
}

const CType *CAstContext::charType() {
  std::lock_guard<std::mutex> Lock(SingletonM);
  if (!CharTy)
    CharTy = makeType(CTypeKind::Char, nullptr, QualAnnot::None, nullptr, {});
  return CharTy;
}

const CType *CAstContext::pointerType(const CType *Pointee, QualAnnot Qual) {
  return makeType(CTypeKind::Pointer, Pointee, Qual, nullptr, {});
}

const CType *CAstContext::structType(const CStructDecl *Decl) {
  return makeType(CTypeKind::Struct, nullptr, QualAnnot::None, Decl, {});
}

const CType *CAstContext::funcType(const CType *Result,
                                   std::vector<const CType *> Params) {
  return makeType(CTypeKind::Func, Result, QualAnnot::None, nullptr,
                  std::move(Params));
}
