//===--- CSema.cpp - Name resolution and expression typing ----------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "cfront/CSema.h"

using namespace mix::c;

const CType *CSema::typeOfName(const std::string &Name, const CScope &Scope) {
  auto It = Scope.Locals.find(Name);
  if (It != Scope.Locals.end())
    return It->second;
  if (const CGlobalDecl *G = Program.findGlobal(Name))
    return G->type();
  if (const CFuncDecl *F = Program.findFunc(Name)) {
    std::vector<const CType *> Params;
    for (const auto &P : F->params())
      Params.push_back(P.Ty);
    return Ctx.funcType(F->returnType(), std::move(Params));
  }
  return nullptr;
}

bool CSema::isLValue(const CExpr *E) {
  switch (E->kind()) {
  case CExprKind::Ident:
  case CExprKind::Member:
    return true;
  case CExprKind::Unary:
    return cast<CUnary>(E)->op() == CUnaryOp::Deref;
  default:
    return false;
  }
}

const CFuncDecl *CSema::directCallee(const CCall *Call) const {
  return directCallee(Call, Program);
}

const CFuncDecl *CSema::directCallee(const CCall *Call,
                                     const CProgram &Program) {
  const CExpr *Callee = Call->callee();
  // Unwrap an explicit deref: (*f)(...) of a named function.
  if (const auto *U = dyn_cast<CUnary>(Callee))
    if (U->op() == CUnaryOp::Deref)
      Callee = U->sub();
  const auto *Id = dyn_cast<CIdent>(Callee);
  if (!Id)
    return nullptr;
  return Program.findFunc(Id->name());
}

const CType *CSema::typeOf(const CExpr *E, const CScope &Scope) {
  switch (E->kind()) {
  case CExprKind::IntLit:
  case CExprKind::SizeOf:
    return Ctx.intType();
  case CExprKind::StrLit:
    // String literals are non-null char pointers.
    return Ctx.pointerType(Ctx.charType(), QualAnnot::Nonnull);
  case CExprKind::NullLit:
    // NULL is usable at any pointer type; give it void * with the null
    // annotation (assignment checking treats void* as wild).
    return Ctx.pointerType(Ctx.voidType(), QualAnnot::Null);
  case CExprKind::Ident: {
    const auto *Id = cast<CIdent>(E);
    if (const CType *T = typeOfName(Id->name(), Scope))
      return T;
    return fail(E->loc(), "use of undeclared identifier '" + Id->name() +
                              "'");
  }
  case CExprKind::Unary: {
    const auto *U = cast<CUnary>(E);
    const CType *Sub = typeOf(U->sub(), Scope);
    if (!Sub)
      return nullptr;
    switch (U->op()) {
    case CUnaryOp::Deref:
      if (Sub->isPointer())
        return Sub->pointee();
      if (Sub->isFunc())
        return Sub; // functions decay; *f == f
      return fail(E->loc(), "cannot dereference non-pointer type " +
                                Sub->str());
    case CUnaryOp::AddrOf:
      if (!isLValue(U->sub()))
        return fail(E->loc(), "cannot take the address of an rvalue");
      return Ctx.pointerType(Sub);
    case CUnaryOp::Not:
    case CUnaryOp::Neg:
      return Ctx.intType();
    }
    return nullptr;
  }
  case CExprKind::Binary: {
    const auto *B = cast<CBinary>(E);
    const CType *L = typeOf(B->lhs(), Scope);
    const CType *R = typeOf(B->rhs(), Scope);
    if (!L || !R)
      return nullptr;
    switch (B->op()) {
    case CBinaryOp::Add:
    case CBinaryOp::Sub:
      // Minimal pointer arithmetic: pointer +- int keeps the pointer type.
      if (L->isPointer() && R->isScalar())
        return L;
      if (R->isPointer() && L->isScalar() && B->op() == CBinaryOp::Add)
        return R;
      return Ctx.intType();
    default:
      return Ctx.intType(); // comparisons and logic are ints in C
    }
  }
  case CExprKind::Assign: {
    const auto *A = cast<CAssign>(E);
    if (!isLValue(A->target()))
      return fail(E->loc(), "assignment target is not an lvalue");
    const CType *T = typeOf(A->target(), Scope);
    const CType *V = typeOf(A->value(), Scope);
    if (!T || !V)
      return nullptr;
    return T;
  }
  case CExprKind::Call: {
    const auto *Call = cast<CCall>(E);
    // malloc is a builtin returning void *.
    if (const auto *Id = dyn_cast<CIdent>(Call->callee()))
      if (Id->name() == "malloc" && !Program.findFunc("malloc")) {
        for (const CExpr *Arg : Call->args())
          if (!typeOf(Arg, Scope))
            return nullptr;
        return Ctx.pointerType(Ctx.voidType());
      }
    const CType *CalleeTy = typeOf(Call->callee(), Scope);
    if (!CalleeTy)
      return nullptr;
    if (CalleeTy->isPointer() && CalleeTy->pointee()->isFunc())
      CalleeTy = CalleeTy->pointee();
    if (!CalleeTy->isFunc())
      return fail(E->loc(), "called object is not a function: " +
                                CalleeTy->str());
    for (const CExpr *Arg : Call->args())
      if (!typeOf(Arg, Scope))
        return nullptr;
    return CalleeTy->result();
  }
  case CExprKind::Member: {
    const auto *M = cast<CMember>(E);
    const CType *Base = typeOf(M->base(), Scope);
    if (!Base)
      return nullptr;
    const CType *StructTy = Base;
    if (M->isArrow()) {
      if (!Base->isPointer())
        return fail(E->loc(), "'->' on non-pointer type " + Base->str());
      StructTy = Base->pointee();
    }
    if (!StructTy->isStruct())
      return fail(E->loc(),
                  "member access on non-struct type " + StructTy->str());
    const CStructDecl::Field *F =
        StructTy->structDecl()->findField(M->field());
    if (!F)
      return fail(E->loc(), "no field '" + M->field() + "' in struct " +
                                StructTy->structDecl()->name());
    return F->Ty;
  }
  case CExprKind::Cast: {
    const auto *C = cast<CCast>(E);
    if (!typeOf(C->sub(), Scope))
      return nullptr;
    return C->target();
  }
  }
  return fail(E->loc(), "unhandled expression form");
}
