//===--- TermEval.h - Concrete term evaluation and cloning ------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ground evaluation of terms under an SmtModel, and structure-preserving
/// cloning of terms across arenas.
///
/// Evaluation is total: variables the model does not bind take the
/// canonical default (0 / false), matching the SmtModel contract that
/// unmentioned variables are unconstrained. This is the foundation of
/// three features: model validation in the differential-testing harness,
/// model reuse in AssertionStack (evaluate new branch deltas under a
/// cached ancestor model instead of re-solving), and the brute-force
/// enumerator oracle.
///
/// Cloning preserves variable ids and debug names, so a model produced
/// against a clone is directly meaningful against the original term. The
/// portfolio uses it to hand each racing backend a private arena.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SOLVER_TERMEVAL_H
#define MIX_SOLVER_TERMEVAL_H

#include "solver/ISolver.h"
#include "solver/Term.h"

#include <unordered_map>

namespace mix::smt {

/// Evaluates an integer-sorted term under \p Model (unbound vars = 0).
long long evalInt(const Term *T, const SmtModel &Model);

/// Evaluates a boolean-sorted term under \p Model (unbound vars = false).
bool evalBool(const Term *T, const SmtModel &Model);

/// Deep-copies \p T from \p Src into \p Dst, preserving variable ids and
/// debug names (missing variables are allocated in \p Dst, in id order,
/// until the id exists). \p Memo caches translations and may be reused
/// across calls against the same (Src, Dst) pair — hash-consing on both
/// sides makes repeated clones of a growing path condition cheap.
const Term *cloneTerm(const Term *T, const TermArena &Src, TermArena &Dst,
                      std::unordered_map<const Term *, const Term *> &Memo);

} // namespace mix::smt

#endif // MIX_SOLVER_TERMEVAL_H
