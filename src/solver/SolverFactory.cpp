//===--- SolverFactory.cpp - Solver backend registry ----------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "solver/SolverFactory.h"

#include "solver/DnfSolver.h"
#include "solver/Portfolio.h"
#include "solver/SmtSolver.h"

#include <algorithm>
#include <map>
#include <mutex>

using namespace mix::smt;

namespace {

using BackendFactory =
    std::function<std::unique_ptr<ISolver>(TermArena &, const SmtOptions &)>;

struct Registry {
  std::mutex M;
  std::map<std::string, BackendFactory> Factories; // name-sorted

  Registry() {
    Factories["smtlite"] = [](TermArena &A, const SmtOptions &O) {
      return std::unique_ptr<ISolver>(new SmtSolver(A, O));
    };
    Factories["dnf"] = [](TermArena &A, const SmtOptions &O) {
      return std::unique_ptr<ISolver>(new DnfSolver(A, O));
    };
  }
};

Registry &registry() {
  static Registry R;
  return R;
}

} // namespace

bool mix::smt::registerSolverBackend(const std::string &Name,
                                     BackendFactory Factory) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  return R.Factories.emplace(Name, std::move(Factory)).second;
}

std::vector<std::string> mix::smt::registeredBackends() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  std::vector<std::string> Names;
  Names.reserve(R.Factories.size());
  for (const auto &[Name, Factory] : R.Factories)
    Names.push_back(Name);
  return Names;
}

bool mix::smt::parseSolverBackend(const std::string &Name, SolverSpec &Out,
                                  std::string &Err) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  if (R.Factories.count(Name)) {
    Out.Backend = Name;
    return true;
  }
  Err = "unknown solver backend '" + Name + "' (available:";
  for (const auto &[Known, Factory] : R.Factories)
    Err += " " + Known;
  Err += ")";
  return false;
}

std::unique_ptr<ISolver> mix::smt::createBackend(const std::string &Name,
                                                 TermArena &Arena,
                                                 const SmtOptions &Opts) {
  BackendFactory Factory;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.M);
    auto It = R.Factories.find(Name);
    if (It == R.Factories.end())
      return nullptr;
    Factory = It->second;
  }
  return Factory(Arena, Opts);
}

std::unique_ptr<ISolver> mix::smt::createSolver(const SolverSpec &Spec,
                                                TermArena &Arena,
                                                const SmtOptions &Opts) {
  if (!Spec.Portfolio)
    return createBackend(Spec.Backend, Arena, Opts);

  // Primary first, then every other registered backend as a rival, in
  // name order — deterministic lane numbering for the win metrics.
  std::vector<std::string> All = registeredBackends();
  if (std::find(All.begin(), All.end(), Spec.Backend) == All.end())
    return nullptr; // unknown primary
  std::vector<std::string> Names{Spec.Backend};
  for (const std::string &Name : All)
    if (Name != Spec.Backend)
      Names.push_back(Name);
  return std::make_unique<PortfolioSolver>(Arena, Opts, Names);
}
