//===--- DnfSolver.h - DNF/Fourier-Motzkin solver backend -------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The project's second solver backend, registered as "dnf": lower
/// if-then-else terms, convert to negation normal form, expand to a
/// (capped) disjunction of cubes, and decide each cube's integer atoms
/// with the Fourier-Motzkin linear-arithmetic core directly — no SAT
/// solver involved. Exact on formulas whose DNF fits under the cube cap;
/// Unknown beyond it (a resource cap, handled conservatively like every
/// other Unknown).
///
/// The point of a second backend is not speed (enumeration loses to CDCL
/// past small formulas) but *independence*: it shares only the
/// term language, the atom translation, and the arithmetic core with
/// smtlite, so the cross-backend differential harness (SolverDiffTest)
/// exercises genuinely different decision paths. It also tends to win
/// portfolio races on small, shallow queries — the common shape of branch
/// feasibility checks — where Tseitin encoding overhead dominates.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SOLVER_DNFSOLVER_H
#define MIX_SOLVER_DNFSOLVER_H

#include "solver/ISolver.h"

namespace mix::smt {

/// DNF-expansion backend over the Fourier-Motzkin core.
class DnfSolver : public SolverBase {
public:
  explicit DnfSolver(TermArena &Arena, SmtOptions Opts = SmtOptions())
      : SolverBase(Arena, Opts) {}

  const char *name() const override { return "dnf"; }

protected:
  SolveResult decide(const Term *Formula, SmtModel *ModelOut) override;
};

} // namespace mix::smt

#endif // MIX_SOLVER_DNFSOLVER_H
