//===--- TermEval.cpp - Concrete term evaluation and cloning --------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "solver/TermEval.h"

#include <cassert>

using namespace mix::smt;

long long mix::smt::evalInt(const Term *T, const SmtModel &Model) {
  switch (T->kind()) {
  case TermKind::IntConst:
    return T->value();
  case TermKind::IntVar:
    return Model.intValue(T->varId());
  case TermKind::Add:
    return evalInt(T->operand(0), Model) + evalInt(T->operand(1), Model);
  case TermKind::Sub:
    return evalInt(T->operand(0), Model) - evalInt(T->operand(1), Model);
  case TermKind::Neg:
    return -evalInt(T->operand(0), Model);
  case TermKind::MulConst:
    return T->value() * evalInt(T->operand(0), Model);
  case TermKind::IteInt:
    return evalBool(T->operand(0), Model) ? evalInt(T->operand(1), Model)
                                          : evalInt(T->operand(2), Model);
  default:
    assert(false && "evalInt() on a boolean term");
    return 0;
  }
}

bool mix::smt::evalBool(const Term *T, const SmtModel &Model) {
  switch (T->kind()) {
  case TermKind::BoolConst:
    return T->value() != 0;
  case TermKind::BoolVar:
    return Model.boolValue(T->varId());
  case TermKind::EqInt:
    return evalInt(T->operand(0), Model) == evalInt(T->operand(1), Model);
  case TermKind::Lt:
    return evalInt(T->operand(0), Model) < evalInt(T->operand(1), Model);
  case TermKind::Le:
    return evalInt(T->operand(0), Model) <= evalInt(T->operand(1), Model);
  case TermKind::EqBool:
    return evalBool(T->operand(0), Model) == evalBool(T->operand(1), Model);
  case TermKind::Not:
    return !evalBool(T->operand(0), Model);
  case TermKind::And:
    return evalBool(T->operand(0), Model) && evalBool(T->operand(1), Model);
  case TermKind::Or:
    return evalBool(T->operand(0), Model) || evalBool(T->operand(1), Model);
  case TermKind::Implies:
    return !evalBool(T->operand(0), Model) || evalBool(T->operand(1), Model);
  case TermKind::IteBool:
    return evalBool(T->operand(0), Model) ? evalBool(T->operand(1), Model)
                                          : evalBool(T->operand(2), Model);
  default:
    assert(false && "evalBool() on an integer term");
    return false;
  }
}

namespace {

// Ensures variable ids up to and including Id exist in Dst with the same
// debug names Src gave them, then returns the variable term.
const Term *cloneVar(const TermArena &Src, TermArena &Dst, Sort S,
                     unsigned Id) {
  if (S == Sort::Int) {
    while (Dst.numIntVars() <= Id)
      Dst.freshIntVar(Src.varName(Sort::Int, Dst.numIntVars()));
    return Dst.intVar(Id);
  }
  while (Dst.numBoolVars() <= Id)
    Dst.freshBoolVar(Src.varName(Sort::Bool, Dst.numBoolVars()));
  return Dst.boolVar(Id);
}

} // namespace

const Term *
mix::smt::cloneTerm(const Term *T, const TermArena &Src, TermArena &Dst,
                    std::unordered_map<const Term *, const Term *> &Memo) {
  auto It = Memo.find(T);
  if (It != Memo.end())
    return It->second;

  const Term *Out = nullptr;
  switch (T->kind()) {
  case TermKind::IntConst:
    Out = Dst.intConst(T->value());
    break;
  case TermKind::BoolConst:
    Out = Dst.boolConst(T->value() != 0);
    break;
  case TermKind::IntVar:
  case TermKind::BoolVar: {
    Sort S = T->kind() == TermKind::IntVar ? Sort::Int : Sort::Bool;
    Out = cloneVar(Src, Dst, S, T->varId());
    break;
  }
  case TermKind::Add:
    Out = Dst.add(cloneTerm(T->operand(0), Src, Dst, Memo),
                  cloneTerm(T->operand(1), Src, Dst, Memo));
    break;
  case TermKind::Sub:
    Out = Dst.sub(cloneTerm(T->operand(0), Src, Dst, Memo),
                  cloneTerm(T->operand(1), Src, Dst, Memo));
    break;
  case TermKind::Neg:
    Out = Dst.neg(cloneTerm(T->operand(0), Src, Dst, Memo));
    break;
  case TermKind::MulConst:
    Out = Dst.mulConst(T->value(), cloneTerm(T->operand(0), Src, Dst, Memo));
    break;
  case TermKind::IteInt:
    Out = Dst.iteInt(cloneTerm(T->operand(0), Src, Dst, Memo),
                     cloneTerm(T->operand(1), Src, Dst, Memo),
                     cloneTerm(T->operand(2), Src, Dst, Memo));
    break;
  case TermKind::EqInt:
    Out = Dst.eqInt(cloneTerm(T->operand(0), Src, Dst, Memo),
                    cloneTerm(T->operand(1), Src, Dst, Memo));
    break;
  case TermKind::Lt:
    Out = Dst.lt(cloneTerm(T->operand(0), Src, Dst, Memo),
                 cloneTerm(T->operand(1), Src, Dst, Memo));
    break;
  case TermKind::Le:
    Out = Dst.le(cloneTerm(T->operand(0), Src, Dst, Memo),
                 cloneTerm(T->operand(1), Src, Dst, Memo));
    break;
  case TermKind::EqBool:
    Out = Dst.eqBool(cloneTerm(T->operand(0), Src, Dst, Memo),
                     cloneTerm(T->operand(1), Src, Dst, Memo));
    break;
  case TermKind::Not:
    Out = Dst.notTerm(cloneTerm(T->operand(0), Src, Dst, Memo));
    break;
  case TermKind::And:
    Out = Dst.andTerm(cloneTerm(T->operand(0), Src, Dst, Memo),
                      cloneTerm(T->operand(1), Src, Dst, Memo));
    break;
  case TermKind::Or:
    Out = Dst.orTerm(cloneTerm(T->operand(0), Src, Dst, Memo),
                     cloneTerm(T->operand(1), Src, Dst, Memo));
    break;
  case TermKind::Implies:
    Out = Dst.implies(cloneTerm(T->operand(0), Src, Dst, Memo),
                      cloneTerm(T->operand(1), Src, Dst, Memo));
    break;
  case TermKind::IteBool:
    Out = Dst.iteBool(cloneTerm(T->operand(0), Src, Dst, Memo),
                      cloneTerm(T->operand(1), Src, Dst, Memo),
                      cloneTerm(T->operand(2), Src, Dst, Memo));
    break;
  }
  Memo[T] = Out;
  return Out;
}
