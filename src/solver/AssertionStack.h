//===--- AssertionStack.h - Incremental assertion stacks --------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Incremental solving semantics for every backend: an SMT-LIB-style
/// push/pop/assert/check-sat stack opened over an ISolver. Path
/// exploration holds one of these and pushes branch deltas instead of
/// re-solving whole path conditions — the "single biggest raw-speed
/// lever" the ROADMAP names.
///
/// The base class is both the generic emulation (usable over any
/// backend) and the caching layer that produces most of the query
/// savings, independent of the backend's own incrementality:
///
/// - **Verdict cache**: the asserted conjunction is folded in the
///   backend's hash-consed arena, so formula identity is pointer
///   identity; re-checking an unchanged stack is free.
/// - **Unsat-prefix cut**: a conjunction only grows down a path, so once
///   some prefix is Unsat every extension is Unsat — answered with zero
///   backend queries.
/// - **Model reuse**: a satisfying model cached for a prefix is
///   evaluated against the new deltas (TermEval); if they all hold, the
///   extension is Sat without a query (the KLEE counterexample-cache
///   trick).
///
/// Answers produced by these three shortcuts never touch the backend and
/// therefore never count as solver queries — that is exactly the drop
/// the incremental-mode regression tests measure. Backends with native
/// incremental state override solveCurrent()/onAssert()/onPush()/onPop()
/// (see smtlite's per-frame clause tagging in SmtSolver.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SOLVER_ASSERTIONSTACK_H
#define MIX_SOLVER_ASSERTIONSTACK_H

#include "solver/ISolver.h"

#include <memory>
#include <vector>

namespace mix::smt {

/// An incremental assertion stack over one backend. Not thread-safe; one
/// stack per exploration worker.
class AssertionStack {
public:
  explicit AssertionStack(ISolver &Backend);
  virtual ~AssertionStack();

  /// Opens a new frame. Assertions made after push() are retracted by the
  /// matching pop().
  void push();

  /// Closes the innermost frame, retracting its assertions. Requires
  /// depth() > 0.
  void pop();

  /// Asserts \p T (bool sort) in the innermost frame (or at the base
  /// level when no frame is open — base assertions cannot be retracted).
  void assertTerm(const Term *T);

  /// Is the conjunction of all live assertions satisfiable? When
  /// \p ModelOut is non-null and the answer is Sat, it receives a model.
  /// A model served from the reuse cache covers the variables the
  /// original solve constrained; variables introduced by later deltas
  /// satisfy them at the default values (0/false), per the SmtModel
  /// contract.
  SolveResult checkSat(SmtModel *ModelOut = nullptr);

  /// Number of open frames.
  unsigned depth() const { return (unsigned)Frames.size(); }

  /// Number of live assertions (across all frames and the base level).
  size_t numAssertions() const { return Assertions.size(); }

  /// The folded conjunction of all live assertions (true when empty),
  /// built in the backend's arena. Because terms are hash-consed and the
  /// fold is maintained left-associatively, this is pointer-equal to a
  /// path-condition term built by the same sequence of andTerm() calls —
  /// the drift guard PathSolver relies on.
  const Term *conjunction() const;

  ISolver &backend() { return Backend; }

  /// Cumulative shortcut/query statistics for this stack.
  struct Stats {
    uint64_t Queries = 0;         ///< checkSat calls that hit the backend
    uint64_t CachedVerdicts = 0;  ///< answered by the verdict cache
    uint64_t ModelReuses = 0;     ///< answered by re-evaluating a model
    uint64_t UnsatPrefixCuts = 0; ///< answered by the unsat-prefix cut
  };
  const Stats &stats() const { return Statistics; }

protected:
  /// Decides the current conjunction with a real backend query. The
  /// default re-solves conjunction() via Backend.checkSat; native stacks
  /// override. \p ModelOut is always non-null (the caller captures models
  /// for reuse) and must be filled on Sat.
  virtual SolveResult solveCurrent(SmtModel *ModelOut);

  /// Hooks for native stacks, called after the base bookkeeping.
  virtual void onAssert(const Term *T) { (void)T; }
  virtual void onPush() {}
  virtual void onPop() {}

  const std::vector<const Term *> &assertions() const { return Assertions; }

private:
  ISolver &Backend;

  std::vector<size_t> Frames; ///< start index of each open frame
  std::vector<const Term *> Assertions;
  /// Folded[i] = conjunction of Assertions[0..i]; truncated with pops.
  std::vector<const Term *> Folded;

  // Shortcut caches. Folded terms are hash-consed, so two assertion
  // prefixes with pointer-equal folds denote the same formula — which
  // keeps every cache sound across pop/re-assert sequences.
  struct VerdictCache {
    const Term *Fold = nullptr;
    SolveResult R = SolveResult::Unknown;
  } LastVerdict;
  struct ModelCache {
    size_t Len = 0;
    const Term *Fold = nullptr; ///< fold of the prefix the model satisfies
    std::shared_ptr<SmtModel> Model;
  };
  /// Recently captured models, most recent first — a bounded
  /// counterexample cache. Each entry is anchored at the longest prefix
  /// it is known to satisfy (pops re-anchor it downward: a model of a
  /// conjunction satisfies every prefix of it), and checkSat consults
  /// all of them before solving. Keeping several matters for sibling
  /// probes: then/else probes alternate, so the single most recent model
  /// is usually the complement of the delta being probed.
  std::vector<ModelCache> Models;
  static constexpr size_t MaxCachedModels = 64;
  struct UnsatPrefix {
    size_t Len = 0;
    const Term *Fold = nullptr; ///< fold of the unsat prefix (null = none)
  } Unsat;

  Stats Statistics;
};

} // namespace mix::smt

#endif // MIX_SOLVER_ASSERTIONSTACK_H
