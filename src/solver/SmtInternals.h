//===--- SmtInternals.h - Shared solver-backend machinery -------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encoding machinery shared by the solver backends: if-then-else
/// lowering, linearization of integer terms, the Tseitin CNF encoder, and
/// the atom-to-constraint translation. Formerly private to SmtSolver.cpp;
/// hoisted so the dnf backend and the native smtlite assertion stack use
/// the exact same translation (a prerequisite for meaningful differential
/// testing — backends must disagree only through their decision
/// procedures, never through divergent encodings).
///
/// Internal header: not part of the solver's public surface.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SOLVER_SMTINTERNALS_H
#define MIX_SOLVER_SMTINTERNALS_H

#include "solver/LinearArith.h"
#include "solver/Sat.h"
#include "solver/Term.h"

#include <cassert>
#include <map>
#include <unordered_map>
#include <vector>

namespace mix::smt::detail {

/// Rewrites away IteInt terms: each distinct if-then-else integer term is
/// replaced by a fresh integer variable constrained by guarded defining
/// equations. The rewrite is equisatisfiability-preserving. The cache and
/// definition list persist across lower() calls, so an incremental stack
/// can lower one asserted term at a time and encode only the definitions
/// added since its last watermark.
class IteLowering {
public:
  explicit IteLowering(TermArena &Arena) : Arena(Arena) {}

  const Term *lower(const Term *T) {
    auto It = Cache.find(T);
    if (It != Cache.end())
      return It->second;
    const Term *Result = lowerUncached(T);
    Cache[T] = Result;
    return Result;
  }

  /// Defining constraints accumulated for introduced variables.
  const std::vector<const Term *> &definitions() const { return Defs; }

private:
  const Term *lowerUncached(const Term *T) {
    switch (T->kind()) {
    case TermKind::IntConst:
    case TermKind::IntVar:
    case TermKind::BoolConst:
    case TermKind::BoolVar:
      return T;
    case TermKind::IteInt: {
      const Term *Cond = lower(T->operand(0));
      const Term *Then = lower(T->operand(1));
      const Term *Else = lower(T->operand(2));
      const Term *Fresh = Arena.freshIntVar("ite");
      Defs.push_back(Arena.implies(Cond, Arena.eqInt(Fresh, Then)));
      Defs.push_back(
          Arena.implies(Arena.notTerm(Cond), Arena.eqInt(Fresh, Else)));
      return Fresh;
    }
    case TermKind::Add:
      return Arena.add(lower(T->operand(0)), lower(T->operand(1)));
    case TermKind::Sub:
      return Arena.sub(lower(T->operand(0)), lower(T->operand(1)));
    case TermKind::Neg:
      return Arena.neg(lower(T->operand(0)));
    case TermKind::MulConst:
      return Arena.mulConst(T->value(), lower(T->operand(0)));
    case TermKind::EqInt:
      return Arena.eqInt(lower(T->operand(0)), lower(T->operand(1)));
    case TermKind::Lt:
      return Arena.lt(lower(T->operand(0)), lower(T->operand(1)));
    case TermKind::Le:
      return Arena.le(lower(T->operand(0)), lower(T->operand(1)));
    case TermKind::EqBool:
      return Arena.eqBool(lower(T->operand(0)), lower(T->operand(1)));
    case TermKind::Not:
      return Arena.notTerm(lower(T->operand(0)));
    case TermKind::And:
      return Arena.andTerm(lower(T->operand(0)), lower(T->operand(1)));
    case TermKind::Or:
      return Arena.orTerm(lower(T->operand(0)), lower(T->operand(1)));
    case TermKind::Implies:
      return Arena.implies(lower(T->operand(0)), lower(T->operand(1)));
    case TermKind::IteBool:
      return Arena.iteBool(lower(T->operand(0)), lower(T->operand(1)),
                           lower(T->operand(2)));
    }
    assert(false && "unhandled term kind in lowering");
    return T;
  }

  TermArena &Arena;
  std::unordered_map<const Term *, const Term *> Cache;
  std::vector<const Term *> Defs;
};

/// A linear view of an integer term: Coeffs * vars + Const.
struct LinSum {
  std::map<unsigned, long long> Coeffs;
  long long Const = 0;
};

/// Converts a lowered (IteInt-free) integer term to a LinSum.
inline LinSum linearize(const Term *T) {
  switch (T->kind()) {
  case TermKind::IntConst: {
    LinSum S;
    S.Const = T->value();
    return S;
  }
  case TermKind::IntVar: {
    LinSum S;
    S.Coeffs[T->varId()] = 1;
    return S;
  }
  case TermKind::Add: {
    LinSum L = linearize(T->operand(0));
    LinSum R = linearize(T->operand(1));
    for (const auto &[V, C] : R.Coeffs)
      L.Coeffs[V] += C;
    L.Const += R.Const;
    return L;
  }
  case TermKind::Sub: {
    LinSum L = linearize(T->operand(0));
    LinSum R = linearize(T->operand(1));
    for (const auto &[V, C] : R.Coeffs)
      L.Coeffs[V] -= C;
    L.Const -= R.Const;
    return L;
  }
  case TermKind::Neg: {
    LinSum S = linearize(T->operand(0));
    for (auto &[V, C] : S.Coeffs) {
      (void)V;
      C = -C;
    }
    S.Const = -S.Const;
    return S;
  }
  case TermKind::MulConst: {
    LinSum S = linearize(T->operand(0));
    for (auto &[V, C] : S.Coeffs) {
      (void)V;
      C *= T->value();
    }
    S.Const *= T->value();
    return S;
  }
  default:
    assert(false && "non-linear integer term after lowering");
    return LinSum();
  }
}

/// Tseitin encoder: maps boolean terms to SAT literals, emitting the
/// defining clauses for composite connectives. Integer atoms are recorded
/// so the theory loop can look them up per model. Caches persist across
/// encode() calls, which is what makes the encoder reusable inside a
/// persistent incremental stack.
class TseitinEncoder {
public:
  explicit TseitinEncoder(SatSolver &Sat) : Sat(Sat) {}

  /// Atoms with integer content, paired with their SAT variable.
  struct TheoryAtom {
    const Term *Atom;
    unsigned SatVar;
  };

  Lit encode(const Term *T) {
    auto It = Cache.find(T);
    if (It != Cache.end())
      return It->second;
    Lit L = encodeUncached(T);
    Cache[T] = L;
    return L;
  }

  const std::vector<TheoryAtom> &theoryAtoms() const { return Atoms; }

  /// SAT variables standing for the formula's free boolean variables.
  const std::unordered_map<unsigned, Lit> &boolVarLits() const {
    return BoolVarLits;
  }

private:
  Lit freshVarLit() { return Lit(Sat.newVar(), /*Negated=*/false); }

  Lit encodeUncached(const Term *T) {
    assert(T->isBool() && "Tseitin encoding of a non-boolean term");
    switch (T->kind()) {
    case TermKind::BoolConst: {
      // Arena simplification folds constants away except (possibly) at the
      // root; represent with a fresh variable forced to the right value.
      Lit P = freshVarLit();
      Sat.addClause({T->value() ? P : ~P});
      return P;
    }
    case TermKind::BoolVar: {
      auto BIt = BoolVarLits.find(T->varId());
      if (BIt != BoolVarLits.end())
        return BIt->second;
      Lit P = freshVarLit();
      BoolVarLits[T->varId()] = P;
      return P;
    }
    case TermKind::EqInt:
    case TermKind::Lt:
    case TermKind::Le: {
      Lit P = freshVarLit();
      Atoms.push_back({T, P.var()});
      return P;
    }
    case TermKind::Not:
      return ~encode(T->operand(0));
    case TermKind::And: {
      Lit A = encode(T->operand(0));
      Lit B = encode(T->operand(1));
      Lit P = freshVarLit();
      Sat.addClause({~P, A});
      Sat.addClause({~P, B});
      Sat.addClause({P, ~A, ~B});
      return P;
    }
    case TermKind::Or: {
      Lit A = encode(T->operand(0));
      Lit B = encode(T->operand(1));
      Lit P = freshVarLit();
      Sat.addClause({~P, A, B});
      Sat.addClause({P, ~A});
      Sat.addClause({P, ~B});
      return P;
    }
    case TermKind::EqBool: {
      Lit A = encode(T->operand(0));
      Lit B = encode(T->operand(1));
      Lit P = freshVarLit();
      Sat.addClause({~P, ~A, B});
      Sat.addClause({~P, A, ~B});
      Sat.addClause({P, A, B});
      Sat.addClause({P, ~A, ~B});
      return P;
    }
    case TermKind::IteBool: {
      Lit C = encode(T->operand(0));
      Lit A = encode(T->operand(1));
      Lit B = encode(T->operand(2));
      Lit P = freshVarLit();
      Sat.addClause({~P, ~C, A});
      Sat.addClause({~P, C, B});
      Sat.addClause({P, ~C, ~A});
      Sat.addClause({P, C, ~B});
      return P;
    }
    case TermKind::Implies: {
      Lit A = encode(T->operand(0));
      Lit B = encode(T->operand(1));
      Lit P = freshVarLit();
      Sat.addClause({~P, ~A, B});
      Sat.addClause({P, A});
      Sat.addClause({P, ~B});
      return P;
    }
    default:
      assert(false && "unexpected boolean term kind");
      return freshVarLit();
    }
  }

  SatSolver &Sat;
  std::unordered_map<const Term *, Lit> Cache;
  std::unordered_map<unsigned, Lit> BoolVarLits;
  std::vector<TheoryAtom> Atoms;
};

/// Converts a polarity-assigned integer atom to a LinConstraint.
inline LinConstraint atomToConstraint(const Term *Atom, bool Positive) {
  LinSum L = linearize(Atom->operand(0));
  LinSum R = linearize(Atom->operand(1));
  // Combine as lhs - rhs: Coeffs * x + K  REL  0, i.e. Coeffs * x REL -K.
  LinConstraint C;
  C.Coeffs = std::move(L.Coeffs);
  for (const auto &[V, Coeff] : R.Coeffs)
    C.Coeffs[V] -= Coeff;
  long long K = L.Const - R.Const;

  switch (Atom->kind()) {
  case TermKind::EqInt:
    if (Positive) {
      C.Rel = LinRel::Eq;
      C.Rhs = -K;
    } else {
      C.Rel = LinRel::Ne;
      C.Rhs = -K;
    }
    return C;
  case TermKind::Lt:
    if (Positive) {
      // lhs - rhs < 0  ==>  Coeffs <= -K - 1
      C.Rel = LinRel::Le;
      C.Rhs = -K - 1;
    } else {
      // lhs >= rhs  ==>  -(Coeffs) <= K
      for (auto &[V, Coeff] : C.Coeffs) {
        (void)V;
        Coeff = -Coeff;
      }
      C.Rel = LinRel::Le;
      C.Rhs = K;
    }
    return C;
  case TermKind::Le:
    if (Positive) {
      C.Rel = LinRel::Le;
      C.Rhs = -K;
    } else {
      // lhs > rhs  ==>  -(Coeffs) <= K - 1
      for (auto &[V, Coeff] : C.Coeffs) {
        (void)V;
        Coeff = -Coeff;
      }
      C.Rel = LinRel::Le;
      C.Rhs = K - 1;
    }
    return C;
  default:
    assert(false && "not an integer atom");
    return C;
  }
}

} // namespace mix::smt::detail

#endif // MIX_SOLVER_SMTINTERNALS_H
