//===--- Sat.cpp - CDCL SAT solver core -----------------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "solver/Sat.h"

#include <algorithm>
#include <cassert>

using namespace mix::smt;

unsigned SatSolver::newVar() {
  unsigned Var = (unsigned)Assigns.size();
  Assigns.push_back(LBool::Undef);
  Levels.push_back(0);
  Reasons.push_back(NoReason);
  Activities.push_back(0.0);
  Seen.push_back(0);
  Watches.emplace_back();
  Watches.emplace_back();
  return Var;
}

void SatSolver::addClause(std::vector<Lit> Lits) {
  // Normalize: drop duplicate literals; a clause with both polarities of a
  // variable is a tautology and can be skipped.
  std::sort(Lits.begin(), Lits.end(),
            [](Lit A, Lit B) { return A.code() < B.code(); });
  Lits.erase(std::unique(Lits.begin(), Lits.end()), Lits.end());
  for (size_t I = 0; I + 1 < Lits.size(); ++I)
    if (Lits[I].var() == Lits[I + 1].var())
      return; // tautology

  if (Lits.empty()) {
    FoundEmptyClause = true;
    return;
  }

  Clauses.push_back({std::move(Lits), /*Learned=*/false});
  attachClause((ClauseRef)(Clauses.size() - 1));
}

void SatSolver::attachClause(ClauseRef Cr) {
  Clause &C = Clauses[Cr];
  if (C.Lits.size() == 1)
    return; // units handled at solve() start
  Watches[(~C.Lits[0]).code()].push_back({Cr, C.Lits[1]});
  Watches[(~C.Lits[1]).code()].push_back({Cr, C.Lits[0]});
}

bool SatSolver::enqueue(Lit L, ClauseRef Reason) {
  LBool V = litValue(L);
  if (V != LBool::Undef)
    return V == LBool::True;
  Assigns[L.var()] = L.negated() ? LBool::False : LBool::True;
  Levels[L.var()] = (unsigned)TrailLimits.size();
  Reasons[L.var()] = Reason;
  Trail.push_back(L);
  return true;
}

SatSolver::ClauseRef SatSolver::propagate() {
  while (PropagateHead < Trail.size()) {
    Lit P = Trail[PropagateHead++];
    ++Statistics.Propagations;
    std::vector<Watcher> &Ws = Watches[P.code()];
    size_t Kept = 0;
    for (size_t I = 0; I != Ws.size(); ++I) {
      Watcher W = Ws[I];
      // Quick skip: if the blocker is already true the clause is satisfied.
      if (litValue(W.Blocker) == LBool::True) {
        Ws[Kept++] = W;
        continue;
      }
      Clause &C = Clauses[W.Cl];
      // Ensure the falsified literal ~P is at position 1.
      if (C.Lits[0] == ~P)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == ~P && "watched literal invariant violated");

      if (litValue(C.Lits[0]) == LBool::True) {
        Ws[Kept++] = {W.Cl, C.Lits[0]};
        continue;
      }

      // Look for a new literal to watch.
      bool FoundWatch = false;
      for (size_t K = 2; K != C.Lits.size(); ++K) {
        if (litValue(C.Lits[K]) == LBool::False)
          continue;
        std::swap(C.Lits[1], C.Lits[K]);
        Watches[(~C.Lits[1]).code()].push_back({W.Cl, C.Lits[0]});
        FoundWatch = true;
        break;
      }
      if (FoundWatch)
        continue;

      // Clause is unit or conflicting.
      Ws[Kept++] = W;
      if (litValue(C.Lits[0]) == LBool::False) {
        // Conflict: restore remaining watchers and report.
        for (size_t K = I + 1; K != Ws.size(); ++K)
          Ws[Kept++] = Ws[K];
        Ws.resize(Kept);
        PropagateHead = Trail.size();
        return W.Cl;
      }
      enqueue(C.Lits[0], W.Cl);
    }
    Ws.resize(Kept);
  }
  return NoReason;
}

void SatSolver::bumpVarActivity(unsigned Var) {
  Activities[Var] += ActivityInc;
  if (Activities[Var] > 1e100) {
    for (double &A : Activities)
      A *= 1e-100;
    ActivityInc *= 1e-100;
  }
}

void SatSolver::decayVarActivities() { ActivityInc *= (1.0 / 0.95); }

void SatSolver::analyze(ClauseRef Conflict, std::vector<Lit> &Learned,
                        unsigned &BackLevel) {
  // First-UIP learning scheme.
  Learned.clear();
  Learned.push_back(Lit()); // placeholder for the asserting literal
  unsigned Counter = 0;
  Lit P;
  bool HaveP = false;
  size_t TrailIndex = Trail.size();
  unsigned CurrentLevel = (unsigned)TrailLimits.size();

  ClauseRef Reason = Conflict;
  do {
    assert(Reason != NoReason && "analysis walked past a decision");
    Clause &C = Clauses[Reason];
    for (Lit Q : C.Lits) {
      // In a reason clause, skip the literal that was asserted by it.
      if (HaveP && Q == P)
        continue;
      unsigned V = Q.var();
      if (Seen[V] || Levels[V] == 0)
        continue;
      Seen[V] = 1;
      bumpVarActivity(V);
      if (Levels[V] == CurrentLevel)
        ++Counter;
      else
        Learned.push_back(Q);
    }
    // Find the next literal on the trail to resolve on.
    while (!Seen[Trail[TrailIndex - 1].var()])
      --TrailIndex;
    --TrailIndex;
    P = Trail[TrailIndex];
    HaveP = true;
    Seen[P.var()] = 0;
    Reason = Reasons[P.var()];
    --Counter;
  } while (Counter > 0);
  Learned[0] = ~P;

  // Compute the backtrack level: the second-highest level in the clause.
  BackLevel = 0;
  if (Learned.size() > 1) {
    size_t MaxIdx = 1;
    for (size_t I = 2; I != Learned.size(); ++I)
      if (Levels[Learned[I].var()] > Levels[Learned[MaxIdx].var()])
        MaxIdx = I;
    std::swap(Learned[1], Learned[MaxIdx]);
    BackLevel = Levels[Learned[1].var()];
  }

  for (Lit L : Learned)
    Seen[L.var()] = 0;
}

void SatSolver::backtrackTo(unsigned Level) {
  if (TrailLimits.size() <= Level)
    return;
  size_t Bound = TrailLimits[Level];
  for (size_t I = Trail.size(); I-- > Bound;) {
    unsigned V = Trail[I].var();
    Assigns[V] = LBool::Undef;
    Reasons[V] = NoReason;
  }
  Trail.resize(Bound);
  TrailLimits.resize(Level);
  PropagateHead = Trail.size();
}

unsigned SatSolver::pickBranchVar() {
  unsigned Best = UINT32_MAX;
  double BestAct = -1.0;
  for (unsigned V = 0, E = numVars(); V != E; ++V) {
    if (Assigns[V] != LBool::Undef)
      continue;
    if (Activities[V] > BestAct) {
      BestAct = Activities[V];
      Best = V;
    }
  }
  return Best;
}

void SatSolver::resetSearchState() {
  for (size_t I = Trail.size(); I-- > 0;) {
    unsigned V = Trail[I].var();
    Assigns[V] = LBool::Undef;
    Reasons[V] = NoReason;
  }
  Trail.clear();
  TrailLimits.clear();
  PropagateHead = 0;
}

SatResult SatSolver::solve(const std::vector<Lit> &Assumptions) {
  if (FoundEmptyClause)
    return SatResult::Unsat;

  resetSearchState();

  // Enqueue all unit clauses at level 0.
  for (ClauseRef Cr = 0; Cr != Clauses.size(); ++Cr) {
    Clause &C = Clauses[Cr];
    if (C.Lits.size() == 1 && !enqueue(C.Lits[0], NoReason))
      return SatResult::Unsat;
  }

  uint64_t ConflictBudget = 128;
  uint64_t ConflictsThisRestart = 0;

  for (;;) {
    if (InterruptFlag && InterruptFlag->load(std::memory_order_relaxed))
      return SatResult::Interrupted;

    ClauseRef Conflict = propagate();
    if (Conflict != NoReason) {
      ++Statistics.Conflicts;
      ++ConflictsThisRestart;
      if (TrailLimits.empty())
        return SatResult::Unsat;

      std::vector<Lit> Learned;
      unsigned BackLevel = 0;
      analyze(Conflict, Learned, BackLevel);
      backtrackTo(BackLevel);

      if (Learned.size() == 1) {
        backtrackTo(0);
        if (!enqueue(Learned[0], NoReason))
          return SatResult::Unsat;
      } else {
        Clauses.push_back({Learned, /*Learned=*/true});
        ClauseRef Cr = (ClauseRef)(Clauses.size() - 1);
        attachClause(Cr);
        enqueue(Learned[0], Cr);
      }
      decayVarActivities();
      continue;
    }

    if (ConflictsThisRestart >= ConflictBudget) {
      ++Statistics.Restarts;
      ConflictsThisRestart = 0;
      ConflictBudget = ConflictBudget + ConflictBudget / 2;
      backtrackTo(0);
      continue;
    }

    // (Re-)establish assumptions as the first decision levels; restarts
    // and backjumps past them land here again. A vacuous level is pushed
    // for assumptions already implied, keeping level indices aligned with
    // the assumption order (the MiniSat convention).
    if (TrailLimits.size() < Assumptions.size()) {
      Lit A = Assumptions[TrailLimits.size()];
      LBool V = litValue(A);
      if (V == LBool::False)
        return SatResult::Unsat; // conflicts with clauses or prior assumptions
      TrailLimits.push_back((unsigned)Trail.size());
      if (V == LBool::Undef)
        enqueue(A, NoReason);
      continue;
    }

    unsigned Var = pickBranchVar();
    if (Var == UINT32_MAX) {
      // Full assignment: record the model.
      Model.assign(numVars(), false);
      for (unsigned V = 0, E = numVars(); V != E; ++V)
        Model[V] = Assigns[V] == LBool::True;
      return SatResult::Sat;
    }
    ++Statistics.Decisions;
    TrailLimits.push_back((unsigned)Trail.size());
    enqueue(Lit(Var, /*Negated=*/true), NoReason);
  }
}
