//===--- Portfolio.cpp - Racing solver portfolio --------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "solver/Portfolio.h"

#include "solver/SolverFactory.h"
#include "solver/TermEval.h"

#include <cassert>
#include <chrono>
#include <mutex>
#include <thread>

using namespace mix::smt;

PortfolioSolver::PortfolioSolver(TermArena &Arena, SmtOptions Opts,
                                 const std::vector<std::string> &BackendNames)
    : Arena(Arena), Opts(Opts) {
  assert(!BackendNames.empty() && "portfolio needs at least one backend");

  // The primary shares the caller's arena and keeps the persistent cache,
  // but metrics and tracing detach — the portfolio layer books the
  // per-query observability itself, so counters tell the same story with
  // the portfolio on or off.
  SmtOptions PrimaryOpts = Opts;
  PrimaryOpts.Metrics = nullptr;
  PrimaryOpts.Trace = nullptr;
  PrimaryOpts.Cancel = &Cancel;
  Primary = createBackend(BackendNames[0], Arena, PrimaryOpts);
  assert(Primary && "unknown primary backend");

  for (size_t I = 1; I != BackendNames.size(); ++I) {
    Rival R;
    R.Name = BackendNames[I];
    R.Terms = std::make_unique<TermArena>();
    SmtOptions RivalOpts = Opts;
    RivalOpts.Metrics = nullptr;
    RivalOpts.Trace = nullptr;
    RivalOpts.Cache = nullptr; // rivals never touch the persistent memo
    RivalOpts.Cancel = &Cancel;
    R.Backend = createBackend(R.Name, *R.Terms, RivalOpts);
    assert(R.Backend && "unknown rival backend");
    Rivals.push_back(std::move(R));
  }

  if (Opts.Metrics) {
    CQueries = Opts.Metrics->counter("solver.queries");
    CSat = Opts.Metrics->counter("solver.sat");
    CUnsat = Opts.Metrics->counter("solver.unsat");
    CUnknown = Opts.Metrics->counter("solver.unknown");
    HQueryUs = Opts.Metrics->histogram("solver.query_us");
    auto Register = [&](const std::string &Name) {
      CWins.push_back(
          Opts.Metrics->counter("solver.portfolio.win." + Name));
      HLatency.push_back(
          Opts.Metrics->histogram("solver.portfolio.latency_us." + Name));
    };
    Register(Primary->name());
    for (const Rival &R : Rivals)
      Register(R.Name);
  } else {
    CWins.resize(1 + Rivals.size());
    HLatency.resize(1 + Rivals.size());
  }
}

PortfolioSolver::~PortfolioSolver() = default;

SolveResult PortfolioSolver::decideRaced(const Term *Formula,
                                         std::string &DecidedBy) {
  // Pre-clone into each rival's private arena on this thread: arenas are
  // not thread-safe, and the primary mutates the shared one while
  // solving. The memo persists across queries, so re-racing a grown path
  // condition clones only the new nodes.
  std::vector<const Term *> Cloned(Rivals.size());
  for (size_t I = 0; I != Rivals.size(); ++I)
    Cloned[I] = cloneTerm(Formula, Arena, *Rivals[I].Terms,
                          Rivals[I].CloneMemo);

  std::mutex M;
  int Winner = -1;
  SolveResult Verdict = SolveResult::Unknown;
  auto Report = [&](int Lane, SolveResult R, uint64_t DurUs) {
    HLatency[Lane].record(DurUs);
    if (R == SolveResult::Unknown)
      return;
    std::lock_guard<std::mutex> Lock(M);
    if (Winner >= 0)
      return;
    Winner = Lane;
    Verdict = R;
    Cancel.store(true, std::memory_order_relaxed);
  };

  std::vector<std::thread> Threads;
  Threads.reserve(Rivals.size());
  for (size_t I = 0; I != Rivals.size(); ++I)
    Threads.emplace_back([&, I] {
      auto T0 = std::chrono::steady_clock::now();
      SolveResult R = Rivals[I].Backend->checkSat(Cloned[I]);
      uint64_t DurUs =
          (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - T0)
              .count();
      Report((int)I + 1, R, DurUs);
    });

  {
    auto T0 = std::chrono::steady_clock::now();
    SolveResult R = Primary->checkSat(Formula);
    uint64_t DurUs =
        (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - T0)
            .count();
    Report(0, R, DurUs);
  }

  for (std::thread &T : Threads)
    T.join();

  if (Winner < 0) {
    // Every lane hit its resource cap.
    DecidedBy = name();
    return SolveResult::Unknown;
  }
  CWins[Winner].inc();
  DecidedBy = Winner == 0 ? Primary->name() : Rivals[Winner - 1].Name;
  return Verdict;
}

SolveResult PortfolioSolver::checkSatDecided(const Term *Formula,
                                             SmtModel *ModelOut,
                                             std::string &DecidedBy) {
  // Clear any cancellation left over from the previous race before the
  // primary (which watches the same flag) runs again.
  Cancel.store(false, std::memory_order_relaxed);

  auto T0 = std::chrono::steady_clock::now();
  SolveResult R;
  if (ModelOut) {
    // Model-bearing queries never race: the witness must come from the
    // primary so diagnostics are identical with the portfolio off.
    DecidedBy = Primary->name();
    R = Primary->checkSat(Formula, ModelOut);
  } else {
    R = decideRaced(Formula, DecidedBy);
  }
  uint64_t DurUs =
      (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - T0)
          .count();

  ++QueryCount;
  CQueries.inc();
  (R == SolveResult::Sat     ? CSat
   : R == SolveResult::Unsat ? CUnsat
                             : CUnknown)
      .inc();
  HQueryUs.record(DurUs);
  return R;
}

SolveResult PortfolioSolver::checkSat(const Term *Formula,
                                      SmtModel *ModelOut) {
  std::string Ignored;
  return checkSatDecided(Formula, ModelOut, Ignored);
}
