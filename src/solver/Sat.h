//===--- Sat.h - CDCL SAT solver core ---------------------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver in the MiniSat tradition:
/// two-watched-literal propagation, first-UIP conflict analysis with
/// non-chronological backtracking, VSIDS-style activity-based branching,
/// and geometric restarts. This is the propositional engine underneath the
/// project's DPLL(T) SMT facade (SmtSolver).
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SOLVER_SAT_H
#define MIX_SOLVER_SAT_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mix::smt {

/// A literal: variable index with a sign. Encoded as 2*Var+Sign.
class Lit {
public:
  Lit() = default;
  Lit(unsigned Var, bool Negated) : Code(2 * Var + (Negated ? 1 : 0)) {}

  unsigned var() const { return Code >> 1; }
  bool negated() const { return Code & 1; }
  Lit operator~() const {
    Lit L;
    L.Code = Code ^ 1;
    return L;
  }
  unsigned code() const { return Code; }

  friend bool operator==(Lit A, Lit B) { return A.Code == B.Code; }
  friend bool operator!=(Lit A, Lit B) { return A.Code != B.Code; }

private:
  uint32_t Code = 0;
};

/// Ternary truth value of a variable or literal during search.
enum class LBool : uint8_t { False = 0, True = 1, Undef = 2 };

/// Satisfiability verdict. Interrupted reports a search abandoned at the
/// cooperative interrupt flag (see setInterrupt) — no verdict.
enum class SatResult { Sat, Unsat, Interrupted };

/// The CDCL solver. Usage: newVar() for each variable, addClause() for each
/// clause, then solve(); repeat addClause()/solve() for incremental use
/// (learned clauses are kept across calls).
class SatSolver {
public:
  /// Allocates a new variable and returns its index.
  unsigned newVar();

  unsigned numVars() const { return (unsigned)Assigns.size(); }

  /// Adds a clause (a disjunction of literals). An empty clause makes the
  /// instance trivially unsatisfiable.
  void addClause(std::vector<Lit> Lits);

  /// Runs the CDCL search. Safe to call repeatedly after adding clauses.
  SatResult solve() { return solve({}); }

  /// Runs the CDCL search under \p Assumptions: each literal is decided
  /// (in order) before any free decision, so an Unsat answer means
  /// "unsatisfiable together with the assumptions" — the clause database
  /// and learned clauses remain valid for later calls with different
  /// assumptions. This is what gives the SMT layer retractable assertion
  /// frames: guard each frame's clauses with an activation literal and
  /// assume the literals of the live frames.
  SatResult solve(const std::vector<Lit> &Assumptions);

  /// Installs a cooperative interrupt flag (null to clear): when the flag
  /// becomes true, the next main-loop iteration abandons the search and
  /// returns SatResult::Interrupted. Used by the portfolio to stop losing
  /// backends.
  void setInterrupt(const std::atomic<bool> *Flag) { InterruptFlag = Flag; }

  /// After solve() returns Sat: the model value of \p Var.
  bool modelValue(unsigned Var) const { return Model[Var]; }

  /// Search statistics, reset never (cumulative over the solver lifetime).
  struct Stats {
    uint64_t Conflicts = 0;
    uint64_t Decisions = 0;
    uint64_t Propagations = 0;
    uint64_t Restarts = 0;
  };
  const Stats &stats() const { return Statistics; }

private:
  using ClauseRef = uint32_t;
  static constexpr ClauseRef NoReason = UINT32_MAX;

  struct Clause {
    std::vector<Lit> Lits;
    bool Learned = false;
  };

  struct Watcher {
    ClauseRef Cl;
    Lit Blocker;
  };

  LBool litValue(Lit L) const {
    LBool V = Assigns[L.var()];
    if (V == LBool::Undef)
      return LBool::Undef;
    bool B = (V == LBool::True) != L.negated();
    return B ? LBool::True : LBool::False;
  }

  void attachClause(ClauseRef Cr);
  bool enqueue(Lit L, ClauseRef Reason);
  ClauseRef propagate();
  void analyze(ClauseRef Conflict, std::vector<Lit> &Learned,
               unsigned &BackLevel);
  void backtrackTo(unsigned Level);
  unsigned pickBranchVar();
  void bumpVarActivity(unsigned Var);
  void decayVarActivities();
  void resetSearchState();

  std::vector<Clause> Clauses;
  std::vector<std::vector<Watcher>> Watches; // indexed by literal code
  std::vector<LBool> Assigns;                // per variable
  std::vector<unsigned> Levels;              // per variable
  std::vector<ClauseRef> Reasons;            // per variable
  std::vector<double> Activities;            // per variable
  std::vector<char> Seen;                    // scratch for analyze()
  std::vector<Lit> Trail;
  std::vector<unsigned> TrailLimits; // decision-level boundaries
  size_t PropagateHead = 0;
  std::vector<bool> Model;
  double ActivityInc = 1.0;
  bool FoundEmptyClause = false;
  const std::atomic<bool> *InterruptFlag = nullptr;
  Stats Statistics;
};

} // namespace mix::smt

#endif // MIX_SOLVER_SAT_H
