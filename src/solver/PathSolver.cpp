//===--- PathSolver.cpp - Per-path incremental feasibility ----------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "solver/PathSolver.h"

using namespace mix::smt;

PathSolver::PathSolver(ISolver &Backend, bool Incremental,
                       obs::MetricsRegistry *Metrics)
    : Backend(Backend) {
  if (Incremental)
    Stack = Backend.openStack();
  if (Metrics) {
    CPush = Metrics->counter("solver.inc.push");
    CPop = Metrics->counter("solver.inc.pop");
    CFallbacks = Metrics->counter("solver.inc.fallbacks");
    CCached = Metrics->counter("solver.inc.cached");
    CModelReuse = Metrics->counter("solver.inc.model_reuse");
    CUnsatPrefix = Metrics->counter("solver.inc.unsat_prefix");
    CStackQueries = Metrics->counter("solver.inc.queries");
  }
}

void PathSolver::mirrorStackStats() {
  const AssertionStack::Stats &S = Stack->stats();
  CStackQueries.add(S.Queries - Mirrored.Queries);
  CCached.add(S.CachedVerdicts - Mirrored.CachedVerdicts);
  CModelReuse.add(S.ModelReuses - Mirrored.ModelReuses);
  CUnsatPrefix.add(S.UnsatPrefixCuts - Mirrored.UnsatPrefixCuts);
  Mirrored = S;
}

void PathSolver::syncTo(const PathCondition &PC) {
  // Collect the target chain outermost-first.
  std::vector<std::shared_ptr<const PathCondition::Node>> Target(PC.length());
  {
    auto N = PC.Tail;
    for (size_t I = PC.length(); I-- > 0; N = N->Parent)
      Target[I] = N;
  }

  // Longest common prefix. Folded terms are hash-consed: pointer-equal
  // folds mean the same conjunction, so two independently-built chains
  // that agree on a prefix diff as cheaply as literal siblings.
  size_t Common = 0;
  while (Common < Synced.size() && Common < Target.size() &&
         Synced[Common]->Folded == Target[Common]->Folded)
    ++Common;

  for (size_t I = Synced.size(); I-- > Common;) {
    Stack->pop();
    CPop.inc();
  }
  Synced.resize(Common);
  for (size_t I = Common; I != Target.size(); ++I) {
    Stack->push();
    Stack->assertTerm(Target[I]->Delta);
    CPush.inc();
    Synced.push_back(Target[I]);
  }
}

SolveResult PathSolver::checkPath(const PathCondition &PC,
                                  const Term *PathTerm, SmtModel *ModelOut) {
  if (!Stack)
    return Backend.checkSat(PathTerm, ModelOut);
  if (PC.folded(Backend.arena()) != PathTerm) {
    // The executor's path drifted from the chain (a hook rewrote it):
    // stay correct with a direct query.
    CFallbacks.inc();
    return Backend.checkSat(PathTerm, ModelOut);
  }
  syncTo(PC);
  SolveResult R = Stack->checkSat(ModelOut);
  mirrorStackStats();
  return R;
}

SolveResult PathSolver::checkPathWith(const PathCondition &PC,
                                      const Term *PathTerm, const Term *Extra,
                                      SmtModel *ModelOut) {
  if (!Stack)
    return Backend.checkSat(Backend.arena().andTerm(PathTerm, Extra),
                            ModelOut);
  if (PC.folded(Backend.arena()) != PathTerm) {
    CFallbacks.inc();
    return Backend.checkSat(Backend.arena().andTerm(PathTerm, Extra),
                            ModelOut);
  }
  syncTo(PC);
  Stack->push();
  Stack->assertTerm(Extra);
  SolveResult R = Stack->checkSat(ModelOut);
  Stack->pop();
  mirrorStackStats();
  return R;
}
