//===--- SmtSolver.h - DPLL(T) SMT facade -----------------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver interface the rest of the project uses — the stand-in for
/// STP in the paper's prototype. Satisfiability of quantifier-free
/// formulas over booleans and linear integer arithmetic is decided with a
/// lazy DPLL(T) loop: Tseitin encoding to CNF, CDCL SAT search, and
/// theory-checking of the integer atoms in each propositional model, with
/// unsat cores turned into blocking clauses.
///
/// If-then-else integer terms (from the SEIf-Defer rule and the
/// null-pointer encoding of Section 4.1) are lowered to fresh variables
/// with guarded defining equations.
///
/// Three-valued results: Unknown arises only from resource caps; every
/// client in this project treats Unknown in the conservative direction
/// (possible path is explored, exhaustiveness is rejected, a warning is
/// kept).
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SOLVER_SMTSOLVER_H
#define MIX_SOLVER_SMTSOLVER_H

#include "observe/Metrics.h"
#include "observe/Trace.h"
#include "solver/LinearArith.h"
#include "solver/Term.h"

#include <cstdint>

namespace mix::smt {

/// Verdict of a satisfiability query.
enum class SolveResult { Sat, Unsat, Unknown };

/// A satisfying assignment for a Sat query. Variables not mentioned were
/// unconstrained (any value works; treat as 0/false). Complete is false
/// when integer-model reconstruction hit a gap the rational relaxation
/// glossed over — the Sat verdict still stands, but the integer values
/// are unavailable.
struct SmtModel {
  std::map<unsigned, long long> Ints;
  std::map<unsigned, bool> Bools;
  bool Complete = true;

  long long intValue(unsigned Var) const {
    auto It = Ints.find(Var);
    return It == Ints.end() ? 0 : It->second;
  }
  bool boolValue(unsigned Var) const {
    auto It = Bools.find(Var);
    return It != Bools.end() && It->second;
  }
};

/// Renders \p Model as deterministic, name-sorted (name, value) pairs
/// using the source-level variable names interned in \p Arena. Only the
/// variables the model actually constrains appear (unconstrained ones
/// may take any value). The model-extraction surface diagnostic
/// provenance renders concrete witnesses from.
std::vector<std::pair<std::string, std::string>>
modelBindings(const TermArena &Arena, const SmtModel &Model);

/// A persistent memo of query verdicts, keyed by canonicalQueryHash (see
/// solver/QueryHash.h). Implemented by src/persist/ over an on-disk
/// store; the solver consults it only for model-free queries and never
/// stores Unknown (a resource-cap artifact, not a property of the
/// formula). Implementations must be thread-safe: SolverPool copies one
/// cache pointer into every pooled instance.
class QueryCache {
public:
  virtual ~QueryCache();
  /// True (with \p Out set to Sat or Unsat) when \p Key has a recorded
  /// verdict.
  virtual bool lookup(uint64_t Key, SolveResult &Out) = 0;
  /// Records a Sat/Unsat verdict for \p Key.
  virtual void store(uint64_t Key, SolveResult Result) = 0;
};

/// Configuration for SmtSolver.
struct SmtOptions {
  LiaOptions Lia;
  /// Bound on SAT-model / theory-check round trips per query.
  unsigned MaxTheoryIterations = 50000;

  /// Observability sinks (see src/observe/). When attached, every query
  /// bumps the "solver.queries" / "solver.sat" / "solver.unsat" /
  /// "solver.unknown" counters and records its latency in the
  /// "solver.query_us" histogram; a trace sink additionally gets one
  /// "solver.query" span per query, tagged with the verdict. Null (the
  /// default) keeps the hot path at a single branch. SolverPool copies
  /// these into every pooled instance, so per-worker solvers aggregate
  /// into the same registry.
  obs::MetricsRegistry *Metrics = nullptr;
  obs::TraceSink *Trace = nullptr;

  /// Optional persistent query memo (see QueryCache above). Null — the
  /// default — keeps checkSat untouched.
  QueryCache *Cache = nullptr;
};

/// One-shot and reusable SMT queries over a TermArena.
///
/// The solver object is stateless between queries apart from cumulative
/// statistics, so a single instance can serve an entire analysis run.
class SmtSolver {
public:
  explicit SmtSolver(TermArena &Arena, SmtOptions Opts = SmtOptions())
      : Arena(Arena), Opts(Opts) {
    if (Opts.Metrics) {
      CQueries = Opts.Metrics->counter("solver.queries");
      CSat = Opts.Metrics->counter("solver.sat");
      CUnsat = Opts.Metrics->counter("solver.unsat");
      CUnknown = Opts.Metrics->counter("solver.unknown");
      HQueryUs = Opts.Metrics->histogram("solver.query_us");
    }
  }

  /// Is \p Formula (bool sort) satisfiable? When \p ModelOut is non-null
  /// and the answer is Sat, it receives a satisfying assignment.
  SolveResult checkSat(const Term *Formula, SmtModel *ModelOut = nullptr);

  /// Convenience: true iff the formula is definitely unsatisfiable.
  /// Unknown maps to false — the conservative direction for feasibility
  /// pruning (an Unknown path is still explored).
  bool isDefinitelyUnsat(const Term *Formula) {
    return checkSat(Formula) == SolveResult::Unsat;
  }

  /// Convenience: true iff the formula is definitely valid (a tautology).
  /// This implements the paper's exhaustive(g1, ..., gn) check: the
  /// disjunction of path conditions must be a tautology. Unknown maps to
  /// false — the conservative direction (exhaustiveness is rejected).
  bool isDefinitelyValid(const Term *Formula) {
    return checkSat(Arena.notTerm(Formula)) == SolveResult::Unsat;
  }

  /// Convenience: true iff the formula may be satisfiable (Sat or
  /// Unknown) — the conservative answer for "could this error occur".
  bool isPossiblySat(const Term *Formula) {
    return checkSat(Formula) != SolveResult::Unsat;
  }

  /// Cumulative statistics across queries.
  struct Stats {
    uint64_t Queries = 0;
    uint64_t SatCalls = 0;
    uint64_t TheoryChecks = 0;
    uint64_t BlockedModels = 0;
  };
  const Stats &stats() const { return Statistics; }

  TermArena &arena() { return Arena; }

private:
  SolveResult checkSatImpl(const Term *Formula, SmtModel *ModelOut);

  TermArena &Arena;
  SmtOptions Opts;
  Stats Statistics;

  // Observability handles; detached (free) unless Opts.Metrics was set.
  obs::Counter CQueries, CSat, CUnsat, CUnknown;
  obs::Histogram HQueryUs;
};

} // namespace mix::smt

#endif // MIX_SOLVER_SMTSOLVER_H
