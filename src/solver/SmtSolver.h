//===--- SmtSolver.h - DPLL(T) SMT backend ("smtlite") ----------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The project's default solver backend — the stand-in for STP in the
/// paper's prototype, registered with SolverFactory as "smtlite".
/// Satisfiability of quantifier-free formulas over booleans and linear
/// integer arithmetic is decided with a lazy DPLL(T) loop: Tseitin
/// encoding to CNF, CDCL SAT search, and theory-checking of the integer
/// atoms in each propositional model, with unsat cores turned into
/// blocking clauses.
///
/// If-then-else integer terms (from the SEIf-Defer rule and the
/// null-pointer encoding of Section 4.1) are lowered to fresh variables
/// with guarded defining equations.
///
/// openStack() returns a *native* incremental stack: one persistent SAT
/// solver and Tseitin encoder, per-frame activation literals guarding
/// each frame's clauses, solving under assumptions. pop() retires the
/// frame's activation literal with a unit clause, which permanently
/// neutralizes both the frame's clauses and any learned clauses derived
/// from them — the "learned-clause invalidation" that makes retraction
/// sound while keeping still-valid learned clauses and theory blocking
/// clauses (which are globally valid) across branches.
///
/// The shared solver surface (SolveResult, SmtModel, SmtOptions,
/// QueryCache, the convenience verdict helpers) lives in ISolver.h.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SOLVER_SMTSOLVER_H
#define MIX_SOLVER_SMTSOLVER_H

#include "solver/ISolver.h"

namespace mix::smt {

class SmtLiteStack;

/// One-shot and reusable SMT queries over a TermArena.
///
/// The solver object is stateless between queries apart from cumulative
/// statistics, so a single instance can serve an entire analysis run.
class SmtSolver : public SolverBase {
public:
  explicit SmtSolver(TermArena &Arena, SmtOptions Opts = SmtOptions())
      : SolverBase(Arena, Opts) {}

  const char *name() const override { return "smtlite"; }

  /// Native incremental stack (activation-literal frame tagging over a
  /// persistent SAT solver); see the file comment.
  std::unique_ptr<AssertionStack> openStack() override;

  /// Cumulative statistics across queries (including stack solves).
  struct Stats {
    uint64_t Queries = 0;
    uint64_t SatCalls = 0;
    uint64_t TheoryChecks = 0;
    uint64_t BlockedModels = 0;
  };
  const Stats &stats() const { return Statistics; }

protected:
  SolveResult decide(const Term *Formula, SmtModel *ModelOut) override;

private:
  friend class SmtLiteStack;
  Stats Statistics;
};

} // namespace mix::smt

#endif // MIX_SOLVER_SMTSOLVER_H
