//===--- SmtSolver.cpp - DPLL(T) SMT backend ("smtlite") ------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "solver/SmtSolver.h"

#include "solver/AssertionStack.h"
#include "solver/SmtInternals.h"

#include <cassert>
#include <chrono>

using namespace mix::smt;
using namespace mix::smt::detail;

namespace {

/// The lazy DPLL(T) loop shared by the one-shot path and the native
/// incremental stack: alternate CDCL SAT search (under \p Assumptions)
/// with theory checks of the integer atoms each propositional model
/// assigns, blocking theory-conflicting polarity combinations. Blocking
/// clauses are theory-valid regardless of which assertion frames are
/// live, so the incremental stack adds them unguarded and they survive
/// pops.
SolveResult runTheoryLoop(SatSolver &Sat, TseitinEncoder &Encoder,
                          const std::vector<Lit> &Assumptions,
                          const SmtOptions &Opts, SmtSolver::Stats &Stats,
                          SmtModel *ModelOut) {
  for (unsigned Iter = 0; Iter != Opts.MaxTheoryIterations; ++Iter) {
    ++Stats.SatCalls;
    SatResult SR = Sat.solve(Assumptions);
    if (SR == SatResult::Unsat)
      return SolveResult::Unsat;
    if (SR == SatResult::Interrupted)
      return SolveResult::Unknown;

    auto FillBools = [&] {
      if (!ModelOut)
        return;
      ModelOut->Bools.clear();
      for (const auto &[VarId, L] : Encoder.boolVarLits())
        ModelOut->Bools[VarId] = Sat.modelValue(L.var()) != L.negated();
    };

    const auto &Atoms = Encoder.theoryAtoms();
    if (Atoms.empty()) {
      if (ModelOut) {
        ModelOut->Ints.clear();
        ModelOut->Complete = true;
        FillBools();
      }
      return SolveResult::Sat;
    }

    // Build the conjunction of integer atoms as assigned by the model.
    std::vector<LinConstraint> Constraints;
    std::vector<Lit> ModelLits;
    Constraints.reserve(Atoms.size());
    ModelLits.reserve(Atoms.size());
    for (const auto &A : Atoms) {
      bool Positive = Sat.modelValue(A.SatVar);
      Constraints.push_back(atomToConstraint(A.Atom, Positive));
      ModelLits.push_back(Lit(A.SatVar, /*Negated=*/!Positive));
    }

    ++Stats.TheoryChecks;
    LiaResult R = checkLinearConjunction(Constraints, Opts.Lia);
    if (R.Verdict == LiaVerdict::Sat) {
      if (ModelOut) {
        ModelOut->Ints = R.Model;
        ModelOut->Complete = R.HasModel;
        FillBools();
      }
      return SolveResult::Sat;
    }
    if (R.Verdict == LiaVerdict::Unknown)
      return SolveResult::Unknown;

    // Theory conflict: block this combination of atom polarities.
    std::vector<Lit> Blocking;
    if (R.Core.empty()) {
      for (Lit L : ModelLits)
        Blocking.push_back(~L);
    } else {
      for (unsigned Idx : R.Core) {
        assert(Idx < ModelLits.size() && "core index out of range");
        Blocking.push_back(~ModelLits[Idx]);
      }
    }
    if (Blocking.empty())
      return SolveResult::Unsat;
    Sat.addClause(std::move(Blocking));
    ++Stats.BlockedModels;
  }
  return SolveResult::Unknown;
}

} // namespace

SolveResult SmtSolver::decide(const Term *Formula, SmtModel *ModelOut) {
  ++Statistics.Queries;
  assert(Formula->isBool() && "checkSat() requires a boolean formula");

  // Lower if-then-else integer terms and conjoin their definitions.
  IteLowering Lowering(Arena);
  const Term *F = Lowering.lower(Formula);
  for (const Term *Def : Lowering.definitions())
    F = Arena.andTerm(F, Def);

  if (F->kind() == TermKind::BoolConst) {
    if (ModelOut)
      *ModelOut = SmtModel();
    return F->value() ? SolveResult::Sat : SolveResult::Unsat;
  }

  SatSolver Sat;
  Sat.setInterrupt(Opts.Cancel);
  TseitinEncoder Encoder(Sat);
  Lit Root = Encoder.encode(F);
  Sat.addClause({Root});

  return runTheoryLoop(Sat, Encoder, /*Assumptions=*/{}, Opts, Statistics,
                       ModelOut);
}

namespace mix::smt {

/// The native incremental stack over the smtlite engine: one persistent
/// SAT solver + Tseitin encoder for the stack's whole lifetime. Every
/// frame f gets an activation literal a_f; a frame's assertions are added
/// as clauses (~a_f \/ encoded) and a check solves under the assumptions
/// {a_f | f live}. pop() adds the unit clause ~a_f, which permanently
/// satisfies (neutralizes) the frame's guarded clauses *and* every
/// learned clause whose derivation used them (such clauses contain ~a_f).
/// Ite-lowering definitions are unguarded: they define fresh variables
/// and are valid independent of which frames are live. Re-pushed frames
/// get fresh activation literals, so retirement is permanent per literal.
class SmtLiteStack : public AssertionStack {
public:
  explicit SmtLiteStack(SmtSolver &Owner)
      : AssertionStack(Owner), Owner(Owner), Lowering(Owner.arena()),
        Encoder(Sat) {
    Sat.setInterrupt(Owner.options().Cancel);
    // Base-level activation literal: never retired (base assertions are
    // permanent), but keeps every clause uniformly guarded.
    ActLits.push_back(freshActivation());
  }

protected:
  void onPush() override { ActLits.push_back(freshActivation()); }

  void onPop() override {
    Sat.addClause({~ActLits.back()});
    ActLits.pop_back();
  }

  void onAssert(const Term *T) override {
    const Term *F = Lowering.lower(T);
    // Encode definitions introduced since the last assert, unguarded.
    const auto &Defs = Lowering.definitions();
    for (; DefsEncoded != Defs.size(); ++DefsEncoded)
      Sat.addClause({Encoder.encode(Defs[DefsEncoded])});
    Sat.addClause({~ActLits.back(), Encoder.encode(F)});
  }

  SolveResult solveCurrent(SmtModel *ModelOut) override {
    auto T0 = std::chrono::steady_clock::now();
    SolveResult R = runTheoryLoop(Sat, Encoder, ActLits, Owner.options(),
                                  Owner.Statistics, ModelOut);
    uint64_t DurUs =
        (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - T0)
            .count();
    ++Owner.Statistics.Queries;
    // Book the decision under the owner's counters so "solver.queries"
    // means "backend decisions" with and without incremental mode.
    Owner.noteExternalQuery(R, DurUs);
    return R;
  }

private:
  Lit freshActivation() { return Lit(Sat.newVar(), /*Negated=*/false); }

  SmtSolver &Owner;
  SatSolver Sat;
  detail::IteLowering Lowering;
  detail::TseitinEncoder Encoder;
  std::vector<Lit> ActLits; ///< base + one per open frame
  size_t DefsEncoded = 0;   ///< watermark into Lowering.definitions()
};

} // namespace mix::smt

std::unique_ptr<AssertionStack> SmtSolver::openStack() {
  return std::make_unique<SmtLiteStack>(*this);
}
