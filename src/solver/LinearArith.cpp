//===--- LinearArith.cpp - Linear integer arithmetic theory ---------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "solver/LinearArith.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <set>

using namespace mix::smt;

std::string LinConstraint::str() const {
  std::string Out;
  bool First = true;
  for (const auto &[Var, Coeff] : Coeffs) {
    if (!First)
      Out += " + ";
    Out += std::to_string(Coeff) + "*x" + std::to_string(Var);
    First = false;
  }
  if (First)
    Out += "0";
  switch (Rel) {
  case LinRel::Eq:
    Out += " = ";
    break;
  case LinRel::Le:
    Out += " <= ";
    break;
  case LinRel::Ne:
    Out += " != ";
    break;
  }
  Out += std::to_string(Rhs);
  return Out;
}

namespace {

/// Floor division for possibly negative operands.
long long floorDiv(long long A, long long B) {
  assert(B > 0 && "floorDiv expects a positive divisor");
  long long Q = A / B;
  if (A % B != 0 && A < 0)
    --Q;
  return Q;
}

/// A working constraint during elimination: the constraint plus the set of
/// input constraints it was derived from (for unsat cores).
struct WorkItem {
  LinConstraint C;
  std::set<unsigned> Sources;
};

/// Outcome of normalizing a single constraint.
enum class NormStatus { Keep, Trivial, Contradiction, Overflow };

/// Divides through by the gcd of the coefficients and tightens integer
/// bounds; detects trivially true/false constraints.
NormStatus normalize(LinConstraint &C, const LiaOptions &Opts) {
  for (auto It = C.Coeffs.begin(); It != C.Coeffs.end();) {
    if (It->second == 0)
      It = C.Coeffs.erase(It);
    else
      ++It;
  }
  if (C.Coeffs.empty()) {
    bool Holds = false;
    switch (C.Rel) {
    case LinRel::Eq:
      Holds = C.Rhs == 0;
      break;
    case LinRel::Le:
      Holds = 0 <= C.Rhs;
      break;
    case LinRel::Ne:
      Holds = C.Rhs != 0;
      break;
    }
    return Holds ? NormStatus::Trivial : NormStatus::Contradiction;
  }

  long long G = 0;
  for (const auto &[Var, Coeff] : C.Coeffs) {
    (void)Var;
    G = std::gcd(G, Coeff < 0 ? -Coeff : Coeff);
    if (Coeff > Opts.MaxCoefficient || Coeff < -Opts.MaxCoefficient)
      return NormStatus::Overflow;
  }
  assert(G > 0 && "gcd of nonempty coefficient set must be positive");
  if (G > 1) {
    switch (C.Rel) {
    case LinRel::Eq:
      // gcd divisibility test: g | rhs or the equality has no int solution.
      if (C.Rhs % G != 0)
        return NormStatus::Contradiction;
      C.Rhs /= G;
      break;
    case LinRel::Le:
      // Integer tightening: sum (c/g) x <= floor(rhs/g).
      C.Rhs = floorDiv(C.Rhs, G);
      break;
    case LinRel::Ne:
      if (C.Rhs % G != 0)
        return NormStatus::Trivial; // lhs always divisible, rhs not: holds
      C.Rhs /= G;
      break;
    }
    for (auto &[Var, Coeff] : C.Coeffs) {
      (void)Var;
      Coeff /= G;
    }
  }
  return NormStatus::Keep;
}

/// One step of the elimination history, for model reconstruction.
struct ElimEvent {
  enum class Kind { Substitution, FourierMotzkin } K;
  unsigned Var = 0;
  /// Substitution: Var appears with coefficient +-1 in Def (Rel == Eq).
  long long VarCoeff = 0;
  LinConstraint Def;
  /// FourierMotzkin: the Le constraints mentioning Var, split by the
  /// sign of its coefficient.
  std::vector<LinConstraint> Uppers; // coeff > 0: a*x + rest <= rhs
  std::vector<LinConstraint> Lowers; // coeff < 0
};

/// The elimination engine for conjunctions of Eq/Le constraints.
class Eliminator {
public:
  Eliminator(const LiaOptions &Opts) : Opts(Opts) {}

  /// Adds a constraint; returns false when a contradiction is found
  /// immediately (core recorded).
  bool add(WorkItem Item) {
    switch (normalize(Item.C, Opts)) {
    case NormStatus::Trivial:
      return true;
    case NormStatus::Contradiction:
      CoreOut.assign(Item.Sources.begin(), Item.Sources.end());
      return false;
    case NormStatus::Overflow:
      HitResourceLimit = true;
      return true;
    case NormStatus::Keep:
      Work.push_back(std::move(Item));
      return true;
    }
    return true;
  }

  LiaResult run() {
    for (;;) {
      if (Failed) {
        LiaResult R;
        R.Verdict = LiaVerdict::Unsat;
        R.Core = std::move(CoreOut);
        return R;
      }
      if (HitResourceLimit || Work.size() > Opts.MaxConstraints)
        return LiaResult();

      if (substituteOneEquality())
        continue;
      if (splitOneEquality())
        continue;

      unsigned Var = 0;
      if (!pickVariable(Var)) {
        LiaResult R;
        R.Verdict = LiaVerdict::Sat;
        return R; // no variables left anywhere
      }
      if (!eliminate(Var)) {
        LiaResult R;
        R.Verdict = LiaVerdict::Unsat;
        R.Core = std::move(CoreOut);
        return R;
      }
    }
  }

private:
  /// Finds an equality with a +-1 coefficient and substitutes that variable
  /// away. Returns true if a substitution happened. On contradiction sets
  /// CoreOut and forces run() to report Unsat via eliminate()'s path --
  /// so instead contradictions here are recorded by re-adding.
  bool substituteOneEquality() {
    for (size_t I = 0; I != Work.size(); ++I) {
      if (Work[I].C.Rel != LinRel::Eq)
        continue;
      unsigned Var = 0;
      long long VarCoeff = 0;
      for (const auto &[V, Coeff] : Work[I].C.Coeffs) {
        if (Coeff == 1 || Coeff == -1) {
          Var = V;
          VarCoeff = Coeff;
          break;
        }
      }
      if (VarCoeff == 0)
        continue;

      // x = (Rhs - rest) / VarCoeff; with |VarCoeff| == 1 this is integral.
      WorkItem Def = std::move(Work[I]);
      Work.erase(Work.begin() + I);
      ElimEvent Event;
      Event.K = ElimEvent::Kind::Substitution;
      Event.Var = Var;
      Event.VarCoeff = VarCoeff;
      Event.Def = Def.C;
      History.push_back(std::move(Event));
      if (!substitute(Var, VarCoeff, Def))
        return true; // contradiction recorded; Work left with Failed flag
      return true;
    }
    return false;
  }

  /// Replaces every occurrence of \p Var using the defining equality
  /// \p Def (where Var has coefficient \p VarCoeff, +-1). Returns false on
  /// contradiction (CoreOut set) and flags failure.
  bool substitute(unsigned Var, long long VarCoeff, const WorkItem &Def) {
    std::vector<WorkItem> Old;
    Old.swap(Work);
    for (WorkItem &Item : Old) {
      auto It = Item.C.Coeffs.find(Var);
      if (It == Item.C.Coeffs.end()) {
        Work.push_back(std::move(Item));
        continue;
      }
      long long K = It->second;
      Item.C.Coeffs.erase(It);
      // Item + (K / VarCoeff) * (Def.Rhs - Def.lhs) adjustments:
      // lhs_item := lhs_item - K*x; x = VarCoeff*(Rhs_def - rest_def)
      // (since VarCoeff is +-1, 1/VarCoeff == VarCoeff).
      long long Scale = K * VarCoeff;
      bool Overflow = false;
      for (const auto &[V, C] : Def.C.Coeffs) {
        if (V == Var)
          continue;
        __int128 NewC = (__int128)Item.C.Coeffs[V] - (__int128)Scale * C;
        if (NewC > Opts.MaxCoefficient || NewC < -Opts.MaxCoefficient) {
          Overflow = true;
          break;
        }
        Item.C.Coeffs[V] = (long long)NewC;
      }
      __int128 NewRhs = (__int128)Item.C.Rhs - (__int128)Scale * Def.C.Rhs;
      if (Overflow || NewRhs > Opts.MaxCoefficient ||
          NewRhs < -Opts.MaxCoefficient) {
        HitResourceLimit = true;
        Work.push_back(std::move(Item));
        continue;
      }
      Item.C.Rhs = (long long)NewRhs;
      Item.Sources.insert(Def.Sources.begin(), Def.Sources.end());
      if (!add(std::move(Item))) {
        Failed = true;
        return false;
      }
    }
    return true;
  }

  /// Converts a remaining (non-unit-coefficient) equality into a pair of
  /// inequalities. Sound; loses only integer-divisibility precision that
  /// normalize() has already exploited.
  bool splitOneEquality() {
    for (size_t I = 0; I != Work.size(); ++I) {
      if (Work[I].C.Rel != LinRel::Eq)
        continue;
      WorkItem Item = std::move(Work[I]);
      Work.erase(Work.begin() + I);
      WorkItem LeSide = Item;
      LeSide.C.Rel = LinRel::Le;
      WorkItem GeSide = Item;
      GeSide.C.Rel = LinRel::Le;
      for (auto &[V, C] : GeSide.C.Coeffs) {
        (void)V;
        C = -C;
      }
      GeSide.C.Rhs = -GeSide.C.Rhs;
      if (!add(std::move(LeSide)) || !add(std::move(GeSide))) {
        Failed = true;
        return true;
      }
      return true;
    }
    return false;
  }

  /// Chooses the variable whose elimination produces the fewest new
  /// constraints (classic FM heuristic). Returns false when no constraint
  /// mentions a variable.
  bool pickVariable(unsigned &VarOut) {
    std::map<unsigned, std::pair<unsigned, unsigned>> PosNeg;
    for (const WorkItem &Item : Work)
      for (const auto &[V, C] : Item.C.Coeffs) {
        if (C > 0)
          ++PosNeg[V].first;
        else
          ++PosNeg[V].second;
      }
    if (PosNeg.empty())
      return false;
    unsigned Best = PosNeg.begin()->first;
    unsigned long long BestCost = ~0ULL;
    for (const auto &[V, PN] : PosNeg) {
      unsigned long long Cost =
          (unsigned long long)PN.first * PN.second;
      if (Cost < BestCost) {
        BestCost = Cost;
        Best = V;
      }
    }
    VarOut = Best;
    return true;
  }

  /// Fourier–Motzkin elimination of \p Var. Returns false on contradiction.
  bool eliminate(unsigned Var) {
    std::vector<WorkItem> Upper, Lower, Rest;
    for (WorkItem &Item : Work) {
      assert(Item.C.Rel == LinRel::Le && "only Le constraints at FM stage");
      auto It = Item.C.Coeffs.find(Var);
      if (It == Item.C.Coeffs.end())
        Rest.push_back(std::move(Item));
      else if (It->second > 0)
        Upper.push_back(std::move(Item)); // a*x + e <= b, a > 0
      else
        Lower.push_back(std::move(Item)); // -a*x + e <= b, a > 0
    }
    Work = std::move(Rest);

    ElimEvent Event;
    Event.K = ElimEvent::Kind::FourierMotzkin;
    Event.Var = Var;
    for (const WorkItem &U : Upper)
      Event.Uppers.push_back(U.C);
    for (const WorkItem &L : Lower)
      Event.Lowers.push_back(L.C);
    History.push_back(std::move(Event));

    for (const WorkItem &U : Upper) {
      long long A = U.C.Coeffs.at(Var);
      for (const WorkItem &L : Lower) {
        long long B = -L.C.Coeffs.at(Var);
        assert(A > 0 && B > 0 && "FM pair signs wrong");
        // B*(U) + A*(L): coefficient of Var cancels.
        WorkItem Combined;
        Combined.Sources = U.Sources;
        Combined.Sources.insert(L.Sources.begin(), L.Sources.end());
        Combined.C.Rel = LinRel::Le;
        bool Overflow = false;
        auto Accumulate = [&](const LinConstraint &C, long long Mult) {
          for (const auto &[V, Coeff] : C.Coeffs) {
            if (V == Var)
              continue;
            __int128 NewC =
                (__int128)Combined.C.Coeffs[V] + (__int128)Mult * Coeff;
            if (NewC > Opts.MaxCoefficient || NewC < -Opts.MaxCoefficient) {
              Overflow = true;
              return;
            }
            Combined.C.Coeffs[V] = (long long)NewC;
          }
        };
        Accumulate(U.C, B);
        if (!Overflow)
          Accumulate(L.C, A);
        __int128 NewRhs =
            (__int128)B * U.C.Rhs + (__int128)A * L.C.Rhs;
        if (Overflow || NewRhs > Opts.MaxCoefficient ||
            NewRhs < -Opts.MaxCoefficient) {
          HitResourceLimit = true;
          continue;
        }
        Combined.C.Rhs = (long long)NewRhs;
        if (!add(std::move(Combined)))
          return false;
        if (Work.size() > Opts.MaxConstraints) {
          HitResourceLimit = true;
          return true;
        }
      }
    }
    return !Failed;
  }

public:
  bool Failed = false;
  bool HitResourceLimit = false;
  std::vector<unsigned> CoreOut;

  /// After a Sat run(): reconstructs an integer model by replaying the
  /// elimination history in reverse — later-eliminated variables are
  /// ground by the time earlier ones need them. Returns false when an
  /// integer gap (a hole the rational relaxation glossed over) blocks
  /// extraction.
  bool extractModel(std::map<unsigned, long long> &Model) const {
    auto RestOf = [&Model](const LinConstraint &C, unsigned Var) {
      long long Rest = 0;
      for (const auto &[V, Coeff] : C.Coeffs) {
        if (V == Var)
          continue;
        auto It = Model.find(V);
        Rest += Coeff * (It == Model.end() ? 0 : It->second);
      }
      return Rest;
    };

    for (auto It = History.rbegin(), E = History.rend(); It != E; ++It) {
      const ElimEvent &Ev = *It;
      if (Ev.K == ElimEvent::Kind::Substitution) {
        // Var*VarCoeff + rest = Rhs, |VarCoeff| == 1:
        // Var = (Rhs - rest) * VarCoeff.
        Model[Ev.Var] = (Ev.Def.Rhs - RestOf(Ev.Def, Ev.Var)) * Ev.VarCoeff;
        continue;
      }
      // Fourier-Motzkin: intersect the bounds under the current
      // assignment and pick an integer (toward zero).
      bool HasHi = false, HasLo = false;
      long long Hi = 0, Lo = 0;
      for (const LinConstraint &U : Ev.Uppers) {
        long long A = U.Coeffs.at(Ev.Var);
        long long Bound = floorDiv(U.Rhs - RestOf(U, Ev.Var), A);
        Hi = HasHi ? std::min(Hi, Bound) : Bound;
        HasHi = true;
      }
      for (const LinConstraint &L : Ev.Lowers) {
        long long B = -L.Coeffs.at(Ev.Var); // B > 0
        // -B*x + rest <= rhs  ==>  x >= ceil((rest - rhs) / B).
        long long Bound = -floorDiv(L.Rhs - RestOf(L, Ev.Var), B);
        Lo = HasLo ? std::max(Lo, Bound) : Bound;
        HasLo = true;
      }
      if (HasHi && HasLo && Lo > Hi)
        return false; // an integer gap: extraction fails, Sat stands
      long long Value = 0;
      if (HasLo && Lo > 0)
        Value = Lo;
      else if (HasHi && Hi < 0)
        Value = Hi;
      Model[Ev.Var] = Value;
    }
    return true;
  }

private:
  const LiaOptions &Opts;
  std::vector<WorkItem> Work;
  std::vector<ElimEvent> History;
};

/// Recursive driver that case-splits disequalities, then runs elimination.
class ConjunctionChecker {
public:
  ConjunctionChecker(const std::vector<LinConstraint> &Input,
                     const LiaOptions &Opts)
      : Input(Input), Opts(Opts) {}

  LiaResult check() {
    std::vector<WorkItem> EqLe;
    std::vector<WorkItem> Nes;
    for (unsigned I = 0; I != Input.size(); ++I) {
      WorkItem Item;
      Item.C = Input[I];
      Item.Sources = {I};
      if (Item.C.Rel == LinRel::Ne)
        Nes.push_back(std::move(Item));
      else
        EqLe.push_back(std::move(Item));
    }
    if (Nes.size() > Opts.MaxDisequalitySplits)
      return LiaResult();
    return split(EqLe, Nes, 0);
  }

private:
  /// Splits Nes[Index..] into strict < / > branches. Unsat only when every
  /// branch is unsat; the core is the union of branch cores.
  LiaResult split(std::vector<WorkItem> &EqLe, std::vector<WorkItem> &Nes,
                  size_t Index) {
    if (Index == Nes.size())
      return runElimination(EqLe);

    // Constant disequalities are decided directly.
    WorkItem &Ne = Nes[Index];
    LinConstraint Normalized = Ne.C;
    switch (normalize(Normalized, Opts)) {
    case NormStatus::Trivial:
      return split(EqLe, Nes, Index + 1);
    case NormStatus::Contradiction: {
      LiaResult R;
      R.Verdict = LiaVerdict::Unsat;
      R.Core.assign(Ne.Sources.begin(), Ne.Sources.end());
      return R;
    }
    case NormStatus::Overflow:
      return LiaResult();
    case NormStatus::Keep:
      break;
    }

    std::set<unsigned> MergedCore;
    bool SawUnknown = false;
    for (int Branch = 0; Branch != 2; ++Branch) {
      WorkItem Strict;
      Strict.Sources = Ne.Sources;
      Strict.C.Rel = LinRel::Le;
      if (Branch == 0) {
        // lhs < rhs  ==>  lhs <= rhs - 1
        Strict.C.Coeffs = Normalized.Coeffs;
        Strict.C.Rhs = Normalized.Rhs - 1;
      } else {
        // lhs > rhs  ==>  -lhs <= -rhs - 1
        for (const auto &[V, C] : Normalized.Coeffs)
          Strict.C.Coeffs[V] = -C;
        Strict.C.Rhs = -Normalized.Rhs - 1;
      }
      EqLe.push_back(std::move(Strict));
      LiaResult R = split(EqLe, Nes, Index + 1);
      EqLe.pop_back();
      if (R.Verdict == LiaVerdict::Sat)
        return R;
      if (R.Verdict == LiaVerdict::Unknown)
        SawUnknown = true;
      else
        MergedCore.insert(R.Core.begin(), R.Core.end());
    }
    if (SawUnknown)
      return LiaResult();
    LiaResult R;
    R.Verdict = LiaVerdict::Unsat;
    R.Core.assign(MergedCore.begin(), MergedCore.end());
    return R;
  }

  LiaResult runElimination(const std::vector<WorkItem> &EqLe) {
    Eliminator E(Opts);
    auto UnsatWithCore = [&E] {
      LiaResult R;
      R.Verdict = LiaVerdict::Unsat;
      R.Core = std::move(E.CoreOut);
      return R;
    };
    for (const WorkItem &Item : EqLe)
      if (!E.add(Item))
        return UnsatWithCore();
    if (E.Failed)
      return UnsatWithCore();
    LiaResult R = E.run();
    if (R.Verdict == LiaVerdict::Sat && E.HitResourceLimit)
      return LiaResult();
    if (R.Verdict == LiaVerdict::Sat)
      R.HasModel = E.extractModel(R.Model);
    return R;
  }

  const std::vector<LinConstraint> &Input;
  const LiaOptions &Opts;
};

} // namespace

LiaResult mix::smt::checkLinearConjunction(
    const std::vector<LinConstraint> &Constraints, const LiaOptions &Opts) {
  ConjunctionChecker Checker(Constraints, Opts);
  return Checker.check();
}
