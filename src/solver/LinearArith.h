//===--- LinearArith.h - Linear integer arithmetic theory ------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decides conjunctions of linear integer constraints for the DPLL(T) loop
/// in SmtSolver. The procedure is Fourier–Motzkin elimination with integer
/// tightening (gcd normalization, floor division of inequality bounds, and
/// a gcd divisibility test for equalities), plus case-splitting on
/// disequalities.
///
/// Completeness notes, which match how the rest of the system uses it:
///  - Unsat answers are always genuine (the elimination is sound), so the
///    symbolic executor never prunes a feasible path and the exhaustive()
///    check of the mix rule TSymBlock never accepts a non-tautology.
///  - Sat answers are sound for rationals; a few integer-only
///    inconsistencies (beyond gcd reasoning) may be reported Sat. That is
///    the conservative direction everywhere in this project.
///  - Resource caps produce Unknown, which clients also treat
///    conservatively.
///
/// Unsat results carry an unsat core (indices of contributing input
/// constraints), which SmtSolver turns into small blocking clauses.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SOLVER_LINEARARITH_H
#define MIX_SOLVER_LINEARARITH_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mix::smt {

/// Relation of a linear constraint `Sum coeff_i * x_i  REL  Rhs`.
enum class LinRel {
  Eq, ///< equal
  Le, ///< less-or-equal
  Ne, ///< not equal
};

/// A linear constraint over integer variables.
struct LinConstraint {
  /// Variable id -> coefficient. Zero coefficients are never stored.
  std::map<unsigned, long long> Coeffs;
  LinRel Rel = LinRel::Le;
  long long Rhs = 0;

  bool isConstant() const { return Coeffs.empty(); }
  std::string str() const;
};

/// Verdict of a theory check.
enum class LiaVerdict { Sat, Unsat, Unknown };

/// Result of a theory check; Core is meaningful only for Unsat and holds
/// indices into the input constraint vector. On Sat, Model holds a
/// satisfying integer assignment when extraction succeeded (HasModel):
/// values are reconstructed by back-substitution through the elimination
/// history, variables never mentioned default to 0.
struct LiaResult {
  LiaVerdict Verdict = LiaVerdict::Unknown;
  std::vector<unsigned> Core;
  bool HasModel = false;
  std::map<unsigned, long long> Model;
};

/// Configuration knobs for the decision procedure.
struct LiaOptions {
  /// Maximum number of disequalities to case-split before giving up.
  unsigned MaxDisequalitySplits = 12;
  /// Maximum number of working constraints during elimination.
  unsigned MaxConstraints = 20000;
  /// Largest coefficient magnitude allowed before giving up (overflow
  /// guard; combinations use 128-bit intermediates).
  long long MaxCoefficient = (1LL << 40);
};

/// Checks satisfiability of the conjunction of \p Constraints over the
/// integers.
LiaResult checkLinearConjunction(const std::vector<LinConstraint> &Constraints,
                                 const LiaOptions &Opts = LiaOptions());

} // namespace mix::smt

#endif // MIX_SOLVER_LINEARARITH_H
