//===--- Term.cpp - Solver term language ----------------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "solver/Term.h"

using namespace mix::smt;

namespace {

/// Maps (variable term -> local index per sort) for normalizedStr().
/// Variables are hash-consed, so pointer identity is variable identity.
struct VarRenumbering {
  std::unordered_map<const Term *, unsigned> Ids;
  unsigned NextInt = 0;
  unsigned NextBool = 0;

  unsigned idOf(const Term *T) {
    auto [It, Inserted] = Ids.try_emplace(T, 0);
    if (Inserted)
      It->second = T->sort() == Sort::Int ? NextInt++ : NextBool++;
    return It->second;
  }
};

std::string strImpl(const Term *T, VarRenumbering *Renumber) {
  switch (T->kind()) {
  case TermKind::IntConst:
    return std::to_string(T->value());
  case TermKind::IntVar:
    return "i" + std::to_string(Renumber ? Renumber->idOf(T) : T->varId());
  case TermKind::BoolVar:
    return "b" + std::to_string(Renumber ? Renumber->idOf(T) : T->varId());
  case TermKind::BoolConst:
    return T->value() ? "true" : "false";
  case TermKind::MulConst:
    return "(* " + std::to_string(T->value()) + " " +
           strImpl(T->operand(0), Renumber) + ")";
  default:
    break;
  }
  const char *Op = "?";
  switch (T->kind()) {
  case TermKind::Add:
    Op = "+";
    break;
  case TermKind::Sub:
    Op = "-";
    break;
  case TermKind::Neg:
    Op = "neg";
    break;
  case TermKind::IteInt:
  case TermKind::IteBool:
    Op = "ite";
    break;
  case TermKind::EqInt:
  case TermKind::EqBool:
    Op = "=";
    break;
  case TermKind::Lt:
    Op = "<";
    break;
  case TermKind::Le:
    Op = "<=";
    break;
  case TermKind::Not:
    Op = "not";
    break;
  case TermKind::And:
    Op = "and";
    break;
  case TermKind::Or:
    Op = "or";
    break;
  case TermKind::Implies:
    Op = "=>";
    break;
  default:
    break;
  }
  std::string Out = std::string("(") + Op;
  for (unsigned I = 0, E = T->numOperands(); I != E; ++I)
    Out += " " + strImpl(T->operand(I), Renumber);
  Out += ")";
  return Out;
}

} // namespace

std::string Term::str() const { return strImpl(this, nullptr); }

std::string mix::smt::normalizedStr(const Term *T) {
  VarRenumbering Renumber;
  return strImpl(T, &Renumber);
}

const Term *TermArena::make(TermKind Kind, Sort S, long long Value,
                            std::vector<const Term *> Ops) {
  Key K{Kind, Value, Ops};
  auto It = Interned.find(K);
  if (It != Interned.end())
    return It->second;
  Owned.push_back(
      std::unique_ptr<Term>(new Term(Kind, S, Value, std::move(Ops))));
  const Term *T = Owned.back().get();
  Interned.emplace(std::move(K), T);
  return T;
}

const Term *TermArena::freshIntVar(std::string Name) {
  unsigned Id = (unsigned)IntVarNames.size();
  IntVarNames.push_back(std::move(Name));
  return make(TermKind::IntVar, Sort::Int, Id, {});
}

const Term *TermArena::freshBoolVar(std::string Name) {
  unsigned Id = (unsigned)BoolVarNames.size();
  BoolVarNames.push_back(std::move(Name));
  return make(TermKind::BoolVar, Sort::Bool, Id, {});
}

const Term *TermArena::intVar(unsigned VarId) {
  assert(VarId < IntVarNames.size() && "unknown integer variable id");
  return make(TermKind::IntVar, Sort::Int, VarId, {});
}

const Term *TermArena::boolVar(unsigned VarId) {
  assert(VarId < BoolVarNames.size() && "unknown boolean variable id");
  return make(TermKind::BoolVar, Sort::Bool, VarId, {});
}

const std::string &TermArena::varName(Sort S, unsigned VarId) const {
  const auto &Names = S == Sort::Int ? IntVarNames : BoolVarNames;
  assert(VarId < Names.size() && "unknown variable id");
  return Names[VarId];
}

const Term *TermArena::intConst(long long Value) {
  return make(TermKind::IntConst, Sort::Int, Value, {});
}

const Term *TermArena::add(const Term *L, const Term *R) {
  assert(L->isInt() && R->isInt() && "add() requires int operands");
  if (L->kind() == TermKind::IntConst && R->kind() == TermKind::IntConst)
    return intConst(L->value() + R->value());
  if (L->kind() == TermKind::IntConst && L->value() == 0)
    return R;
  if (R->kind() == TermKind::IntConst && R->value() == 0)
    return L;
  return make(TermKind::Add, Sort::Int, 0, {L, R});
}

const Term *TermArena::sub(const Term *L, const Term *R) {
  assert(L->isInt() && R->isInt() && "sub() requires int operands");
  if (L->kind() == TermKind::IntConst && R->kind() == TermKind::IntConst)
    return intConst(L->value() - R->value());
  if (R->kind() == TermKind::IntConst && R->value() == 0)
    return L;
  if (L == R)
    return intConst(0);
  return make(TermKind::Sub, Sort::Int, 0, {L, R});
}

const Term *TermArena::neg(const Term *T) {
  assert(T->isInt() && "neg() requires an int operand");
  if (T->kind() == TermKind::IntConst)
    return intConst(-T->value());
  if (T->kind() == TermKind::Neg)
    return T->operand(0);
  return make(TermKind::Neg, Sort::Int, 0, {T});
}

const Term *TermArena::mulConst(long long K, const Term *T) {
  assert(T->isInt() && "mulConst() requires an int operand");
  if (K == 0)
    return intConst(0);
  if (K == 1)
    return T;
  if (T->kind() == TermKind::IntConst)
    return intConst(K * T->value());
  return make(TermKind::MulConst, Sort::Int, K, {T});
}

const Term *TermArena::iteInt(const Term *Cond, const Term *Then,
                              const Term *Else) {
  assert(Cond->isBool() && Then->isInt() && Else->isInt() &&
         "iteInt() sort mismatch");
  if (Cond->kind() == TermKind::BoolConst)
    return Cond->value() ? Then : Else;
  if (Then == Else)
    return Then;
  return make(TermKind::IteInt, Sort::Int, 0, {Cond, Then, Else});
}

const Term *TermArena::boolConst(bool Value) {
  return make(TermKind::BoolConst, Sort::Bool, Value ? 1 : 0, {});
}

const Term *TermArena::eqInt(const Term *L, const Term *R) {
  assert(L->isInt() && R->isInt() && "eqInt() requires int operands");
  if (L == R)
    return trueTerm();
  if (L->kind() == TermKind::IntConst && R->kind() == TermKind::IntConst)
    return boolConst(L->value() == R->value());
  return make(TermKind::EqInt, Sort::Bool, 0, {L, R});
}

const Term *TermArena::lt(const Term *L, const Term *R) {
  assert(L->isInt() && R->isInt() && "lt() requires int operands");
  if (L == R)
    return falseTerm();
  if (L->kind() == TermKind::IntConst && R->kind() == TermKind::IntConst)
    return boolConst(L->value() < R->value());
  return make(TermKind::Lt, Sort::Bool, 0, {L, R});
}

const Term *TermArena::le(const Term *L, const Term *R) {
  assert(L->isInt() && R->isInt() && "le() requires int operands");
  if (L == R)
    return trueTerm();
  if (L->kind() == TermKind::IntConst && R->kind() == TermKind::IntConst)
    return boolConst(L->value() <= R->value());
  return make(TermKind::Le, Sort::Bool, 0, {L, R});
}

const Term *TermArena::eqBool(const Term *L, const Term *R) {
  assert(L->isBool() && R->isBool() && "eqBool() requires bool operands");
  if (L == R)
    return trueTerm();
  if (L->kind() == TermKind::BoolConst)
    return L->value() ? R : notTerm(R);
  if (R->kind() == TermKind::BoolConst)
    return R->value() ? L : notTerm(L);
  return make(TermKind::EqBool, Sort::Bool, 0, {L, R});
}

const Term *TermArena::notTerm(const Term *T) {
  assert(T->isBool() && "notTerm() requires a bool operand");
  if (T->kind() == TermKind::BoolConst)
    return boolConst(!T->value());
  if (T->kind() == TermKind::Not)
    return T->operand(0);
  return make(TermKind::Not, Sort::Bool, 0, {T});
}

const Term *TermArena::andTerm(const Term *L, const Term *R) {
  assert(L->isBool() && R->isBool() && "andTerm() requires bool operands");
  if (L->kind() == TermKind::BoolConst)
    return L->value() ? R : falseTerm();
  if (R->kind() == TermKind::BoolConst)
    return R->value() ? L : falseTerm();
  if (L == R)
    return L;
  return make(TermKind::And, Sort::Bool, 0, {L, R});
}

const Term *TermArena::orTerm(const Term *L, const Term *R) {
  assert(L->isBool() && R->isBool() && "orTerm() requires bool operands");
  if (L->kind() == TermKind::BoolConst)
    return L->value() ? trueTerm() : R;
  if (R->kind() == TermKind::BoolConst)
    return R->value() ? trueTerm() : L;
  if (L == R)
    return L;
  return make(TermKind::Or, Sort::Bool, 0, {L, R});
}

const Term *TermArena::implies(const Term *L, const Term *R) {
  return orTerm(notTerm(L), R);
}

const Term *TermArena::iteBool(const Term *Cond, const Term *Then,
                               const Term *Else) {
  assert(Cond->isBool() && Then->isBool() && Else->isBool() &&
         "iteBool() sort mismatch");
  if (Cond->kind() == TermKind::BoolConst)
    return Cond->value() ? Then : Else;
  if (Then == Else)
    return Then;
  return make(TermKind::IteBool, Sort::Bool, 0, {Cond, Then, Else});
}

const Term *TermArena::ite(const Term *Cond, const Term *Then,
                           const Term *Else) {
  assert(Then->sort() == Else->sort() && "ite() branch sorts differ");
  if (Then->isInt())
    return iteInt(Cond, Then, Else);
  return iteBool(Cond, Then, Else);
}

const Term *TermArena::andList(const std::vector<const Term *> &Ts) {
  const Term *Acc = trueTerm();
  for (const Term *T : Ts)
    Acc = andTerm(Acc, T);
  return Acc;
}

const Term *TermArena::orList(const std::vector<const Term *> &Ts) {
  const Term *Acc = falseTerm();
  for (const Term *T : Ts)
    Acc = orTerm(Acc, T);
  return Acc;
}
