//===--- SolverPool.h - Per-worker SMT solver instances ---------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Solver backends are cheap to construct but hold mutable state during a
/// query, and every solver writes lowered terms into its TermArena — so
/// neither can be shared between concurrent analysis workers. SolverPool
/// hands out (TermArena, ISolver) instances under an RAII lease:
/// parallel block analyses acquire one per task or pin one per worker for
/// the lifetime of a parallel analysis run.
///
/// The pool builds whatever the SolverSpec selects — a plain backend or a
/// full racing portfolio per instance — so `--solver` / `--solver-portfolio`
/// apply uniformly to the parallel engines.
///
/// Instances are reused across leases (arena allocations amortize), and
/// statistics survive reuse so a pool-wide query count can be reported.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SOLVER_SOLVERPOOL_H
#define MIX_SOLVER_SOLVERPOOL_H

#include "solver/SolverFactory.h"

#include <memory>
#include <mutex>
#include <vector>

namespace mix::smt {

/// A pool of independent solver instances for concurrent workers.
class SolverPool {
public:
  /// One pooled instance: a private term arena and a solver over it.
  struct Instance {
    TermArena Terms;
    std::unique_ptr<ISolver> Solver;
    Instance(const SolverSpec &Spec, const SmtOptions &Opts)
        : Solver(createSolver(Spec, Terms, Opts)) {}
  };

  /// RAII lease of one instance; returns it to the pool on destruction.
  class Lease {
  public:
    Lease() = default;
    Lease(Lease &&O) noexcept : Pool(O.Pool), Inst(O.Inst) {
      O.Pool = nullptr;
      O.Inst = nullptr;
    }
    Lease &operator=(Lease &&O) noexcept {
      release();
      Pool = O.Pool;
      Inst = O.Inst;
      O.Pool = nullptr;
      O.Inst = nullptr;
      return *this;
    }
    Lease(const Lease &) = delete;
    Lease &operator=(const Lease &) = delete;
    ~Lease() { release(); }

    TermArena &terms() { return Inst->Terms; }
    ISolver &solver() { return *Inst->Solver; }
    explicit operator bool() const { return Inst != nullptr; }

    void release();

  private:
    friend class SolverPool;
    Lease(SolverPool *Pool, Instance *Inst) : Pool(Pool), Inst(Inst) {}
    SolverPool *Pool = nullptr;
    Instance *Inst = nullptr;
  };

  /// \p MaxIdle caps how many returned instances are kept for reuse;
  /// acquire() beyond the cap still succeeds with a fresh instance. The
  /// default spec builds the default backend (smtlite, no portfolio).
  explicit SolverPool(SmtOptions Opts = SmtOptions(),
                      SolverSpec Spec = SolverSpec(), size_t MaxIdle = 64)
      : Opts(Opts), Spec(Spec), MaxIdle(MaxIdle) {}

  /// Takes an idle instance or constructs a new one. Thread-safe.
  Lease acquire();

  /// Total queries across every instance this pool ever created,
  /// including ones currently leased out.
  uint64_t totalQueries() const;

  /// Number of instances created over the pool's lifetime.
  size_t instancesCreated() const;

  const SolverSpec &spec() const { return Spec; }

private:
  friend class Lease;
  void releaseInstance(Instance *Inst);

  SmtOptions Opts;
  SolverSpec Spec;
  size_t MaxIdle;

  mutable std::mutex M;
  std::vector<std::unique_ptr<Instance>> All;  ///< owns every instance
  std::vector<Instance *> Idle;                ///< subset available to lease
};

} // namespace mix::smt

#endif // MIX_SOLVER_SOLVERPOOL_H
