//===--- QueryHash.cpp - Canonical solver-query hashing ---------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "solver/QueryHash.h"

#include "support/Hash.h"

#include <unordered_map>
#include <vector>

using namespace mix::smt;

uint64_t mix::smt::canonicalQueryHash(const Term *Formula) {
  // Hash-consing makes structurally equal subterms pointer-equal, so the
  // term is a DAG whose shape is determined by structure alone; walking
  // it with a visited set is both linear and canonical.
  //
  // Pass 1: renumber variables by first occurrence in left-to-right
  // preorder. Raw ids are allocation-ordered (and per-worker under
  // --jobs), so they must never reach the digest.
  std::unordered_map<const Term *, uint32_t> VarNorm;
  {
    std::unordered_map<const Term *, bool> Seen;
    std::vector<const Term *> Work{Formula};
    while (!Work.empty()) {
      const Term *T = Work.back();
      Work.pop_back();
      if (!Seen.emplace(T, true).second)
        continue;
      if (T->kind() == TermKind::IntVar || T->kind() == TermKind::BoolVar)
        VarNorm.emplace(T, (uint32_t)VarNorm.size());
      for (unsigned I = T->numOperands(); I != 0; --I)
        Work.push_back(T->operand(I - 1));
    }
  }

  // Pass 2: bottom-up digest with memoization over the DAG.
  std::unordered_map<const Term *, uint64_t> Memo;
  std::vector<std::pair<const Term *, bool>> Stack{{Formula, false}};
  while (!Stack.empty()) {
    auto [T, Expanded] = Stack.back();
    Stack.pop_back();
    if (Memo.count(T))
      continue;
    if (!Expanded) {
      Stack.push_back({T, true});
      for (unsigned I = 0; I != T->numOperands(); ++I)
        Stack.push_back({T->operand(I), false});
      continue;
    }
    StableHasher H;
    H.u8((uint8_t)T->kind());
    switch (T->kind()) {
    case TermKind::IntVar:
    case TermKind::BoolVar:
      H.u32(VarNorm.at(T));
      break;
    case TermKind::IntConst:
    case TermKind::MulConst:
    case TermKind::BoolConst:
      H.i64(T->value());
      break;
    default:
      break;
    }
    H.u32(T->numOperands());
    for (unsigned I = 0; I != T->numOperands(); ++I)
      H.u64(Memo.at(T->operand(I)));
    Memo.emplace(T, H.digest());
  }
  return Memo.at(Formula);
}
