//===--- PathSolver.h - Per-path incremental feasibility --------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bridge between path exploration and AssertionStack. Executors fork
/// states freely (breadth-style), so they cannot each own a physical
/// solver stack; instead every state carries a PathCondition — an
/// immutable, cheaply-copyable chain of branch deltas — and the executor
/// owns ONE PathSolver that re-synchronizes its backend stack to whatever
/// state it is asked about by diffing against the chain it currently has
/// asserted: pop to the common prefix, push the remaining deltas. Sibling
/// paths share their prefix, so the common case at a fork is one pop and
/// one push, not a from-scratch re-solve of the whole path condition —
/// this is the "one stack per path, push/pop branch deltas" shape of the
/// tentpole, realized with one physical stack.
///
/// Every node caches the folded conjunction (hash-consed, so
/// pointer-comparable). PathSolver cross-checks that fold against the
/// executor's own Path term on every query: if some hook rewrote the path
/// outside the chain, the query silently falls back to a direct
/// checkSat of the executor's term (counted in "solver.inc.fallbacks").
/// Correctness therefore never depends on the chain being in sync.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SOLVER_PATHSOLVER_H
#define MIX_SOLVER_PATHSOLVER_H

#include "solver/AssertionStack.h"
#include "solver/ISolver.h"

#include <memory>
#include <vector>

namespace mix::smt {

/// An immutable path condition: a persistent cons-list of branch deltas.
/// Copying is one shared_ptr copy; extension allocates one node. The
/// empty condition denotes true.
class PathCondition {
public:
  PathCondition() = default;

  /// This condition with \p Delta conjoined. Returns *this unchanged when
  /// the conjunction simplifies to the current fold (e.g. a true or
  /// duplicate guard).
  PathCondition extend(TermArena &Arena, const Term *Delta) const {
    const Term *Prev = Tail ? Tail->Folded : Arena.trueTerm();
    const Term *Next = Arena.andTerm(Prev, Delta);
    if (Next == Prev)
      return *this;
    auto N = std::make_shared<Node>();
    N->Parent = Tail;
    N->Delta = Delta;
    N->Folded = Next;
    N->Len = length() + 1;
    PathCondition Out;
    Out.Tail = std::move(N);
    return Out;
  }

  /// The folded conjunction (true when empty). Pointer-equal to the same
  /// sequence of andTerm() calls applied to trueTerm — the drift guard.
  const Term *folded(TermArena &Arena) const {
    return Tail ? Tail->Folded : Arena.trueTerm();
  }

  size_t length() const { return Tail ? Tail->Len : 0; }

private:
  friend class PathSolver;
  struct Node {
    std::shared_ptr<const Node> Parent;
    const Term *Delta = nullptr;
    const Term *Folded = nullptr;
    size_t Len = 0;
  };
  std::shared_ptr<const Node> Tail;
};

/// One physical assertion stack, re-synced per query to the queried
/// path. Construct with Incremental=false to bypass the stack entirely
/// (every query becomes a direct backend checkSat) — the from-scratch
/// baseline the regression tests compare against.
class PathSolver {
public:
  PathSolver(ISolver &Backend, bool Incremental,
             obs::MetricsRegistry *Metrics = nullptr);

  /// Satisfiability of \p PC, whose folded term the caller knows as
  /// \p PathTerm. When the two disagree (the executor's path was rewritten
  /// outside the chain), falls back to checkSat(PathTerm).
  SolveResult checkPath(const PathCondition &PC, const Term *PathTerm,
                        SmtModel *ModelOut = nullptr);

  /// Satisfiability of \p PC with \p Extra conjoined (a probe like a
  /// may-be-null guard that does not extend the path): asserted in a
  /// temporary frame, so the synced path prefix — and its cached model —
  /// is reused across probes.
  SolveResult checkPathWith(const PathCondition &PC, const Term *PathTerm,
                            const Term *Extra, SmtModel *ModelOut = nullptr);

  ISolver &backend() { return Backend; }
  bool incremental() const { return Stack != nullptr; }

private:
  /// Pops to the common prefix of the synced chain and \p PC, then pushes
  /// PC's remaining deltas, one frame each.
  void syncTo(const PathCondition &PC);
  void mirrorStackStats();

  ISolver &Backend;
  std::unique_ptr<AssertionStack> Stack; ///< null = non-incremental mode
  /// The chain nodes currently asserted, outermost first; frame i holds
  /// Synced[i]->Delta.
  std::vector<std::shared_ptr<const PathCondition::Node>> Synced;

  AssertionStack::Stats Mirrored; ///< stack stats already mirrored

  obs::Counter CPush, CPop, CFallbacks, CCached, CModelReuse, CUnsatPrefix,
      CStackQueries;
};

} // namespace mix::smt

#endif // MIX_SOLVER_PATHSOLVER_H
