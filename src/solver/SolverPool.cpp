//===--- SolverPool.cpp - Per-worker SMT solver instances -------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "solver/SolverPool.h"

using namespace mix::smt;

void SolverPool::Lease::release() {
  if (Pool && Inst)
    Pool->releaseInstance(Inst);
  Pool = nullptr;
  Inst = nullptr;
}

SolverPool::Lease SolverPool::acquire() {
  {
    std::lock_guard<std::mutex> Lock(M);
    if (!Idle.empty()) {
      Instance *Inst = Idle.back();
      Idle.pop_back();
      return Lease(this, Inst);
    }
  }
  // Construct outside the lock; arena setup is not free.
  auto Fresh = std::make_unique<Instance>(Spec, Opts);
  Instance *Inst = Fresh.get();
  {
    std::lock_guard<std::mutex> Lock(M);
    All.push_back(std::move(Fresh));
  }
  return Lease(this, Inst);
}

void SolverPool::releaseInstance(Instance *Inst) {
  std::lock_guard<std::mutex> Lock(M);
  if (Idle.size() < MaxIdle)
    Idle.push_back(Inst);
  // Beyond the cap the instance stays owned by All (so leases already
  // pointing at siblings stay valid) but is never handed out again.
}

uint64_t SolverPool::totalQueries() const {
  std::lock_guard<std::mutex> Lock(M);
  uint64_t Total = 0;
  for (const auto &Inst : All)
    Total += Inst->Solver->queries();
  return Total;
}

size_t SolverPool::instancesCreated() const {
  std::lock_guard<std::mutex> Lock(M);
  return All.size();
}
