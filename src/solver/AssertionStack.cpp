//===--- AssertionStack.cpp - Incremental assertion stacks ----------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "solver/AssertionStack.h"

#include "solver/TermEval.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

using namespace mix::smt;

namespace {

/// Restricts \p Model to the variables that actually occur in \p T.
/// Backends with persistent encoders (the native smtlite stack) report
/// values for every variable they ever saw — including ones only popped
/// frames mentioned. Dropping the spurious bindings restores the
/// "unmentioned = unconstrained" reading, which is what makes cached
/// models reusable against future deltas over fresh variables.
void projectModel(const Term *T, SmtModel &Model) {
  std::unordered_set<const Term *> Seen;
  std::unordered_set<unsigned> IntVars, BoolVars;
  std::vector<const Term *> Stack{T};
  while (!Stack.empty()) {
    const Term *N = Stack.back();
    Stack.pop_back();
    if (!Seen.insert(N).second)
      continue;
    if (N->kind() == TermKind::IntVar)
      IntVars.insert(N->varId());
    else if (N->kind() == TermKind::BoolVar)
      BoolVars.insert(N->varId());
    for (unsigned I = 0, E = N->numOperands(); I != E; ++I)
      Stack.push_back(N->operand(I));
  }
  for (auto It = Model.Ints.begin(); It != Model.Ints.end();)
    It = IntVars.count(It->first) ? std::next(It) : Model.Ints.erase(It);
  for (auto It = Model.Bools.begin(); It != Model.Bools.end();)
    It = BoolVars.count(It->first) ? std::next(It) : Model.Bools.erase(It);
}

} // namespace

AssertionStack::AssertionStack(ISolver &Backend) : Backend(Backend) {}

AssertionStack::~AssertionStack() = default;

void AssertionStack::push() {
  Frames.push_back(Assertions.size());
  onPush();
}

void AssertionStack::pop() {
  assert(!Frames.empty() && "pop() on an empty assertion stack");
  size_t Start = Frames.back();
  Frames.pop_back();
  // A cached model of the longer conjunction satisfies every prefix of
  // it, so surviving a pop is sound: re-anchor it at the new length and
  // sibling probes (pop one delta, push another) can evaluate against
  // it instead of re-solving. Only while it is still anchored, though —
  // a fold mismatch at its recorded length means that prefix was
  // already rebuilt into something else.
  for (size_t I = 0; I != Models.size();) {
    ModelCache &MC = Models[I];
    if (MC.Len > Start) {
      if (MC.Len > Assertions.size() || Folded[MC.Len - 1] != MC.Fold) {
        Models.erase(Models.begin() + I);
        continue;
      }
      MC.Len = Start;
      MC.Fold = Start ? Folded[Start - 1] : Backend.arena().trueTerm();
    }
    ++I;
  }
  Assertions.resize(Start);
  Folded.resize(Start);
  onPop();
}

void AssertionStack::assertTerm(const Term *T) {
  assert(T->isBool() && "assertTerm() requires a boolean term");
  const Term *Prev =
      Folded.empty() ? Backend.arena().trueTerm() : Folded.back();
  Assertions.push_back(T);
  Folded.push_back(Backend.arena().andTerm(Prev, T));
  onAssert(T);
}

const Term *AssertionStack::conjunction() const {
  return Folded.empty() ? Backend.arena().trueTerm() : Folded.back();
}

SolveResult AssertionStack::solveCurrent(SmtModel *ModelOut) {
  return Backend.checkSat(conjunction(), ModelOut);
}

SolveResult AssertionStack::checkSat(SmtModel *ModelOut) {
  const Term *Fold = conjunction();

  // Constant fold: the arena already decided the formula.
  if (Fold->kind() == TermKind::BoolConst) {
    ++Statistics.CachedVerdicts;
    if (ModelOut)
      *ModelOut = SmtModel();
    return Fold->value() ? SolveResult::Sat : SolveResult::Unsat;
  }

  // Unsat-prefix cut: the conjunction only grows, so any extension of a
  // known-Unsat prefix is Unsat. Valid while the prefix is still live
  // (fold pointers are identity, so a pop/re-assert that rebuilt a
  // different prefix fails the check).
  if (Unsat.Fold && Unsat.Len <= Assertions.size() &&
      Unsat.Len >= 1 && Folded[Unsat.Len - 1] == Unsat.Fold) {
    ++Statistics.UnsatPrefixCuts;
    return SolveResult::Unsat;
  }

  // Verdict cache: unchanged formula, unchanged answer. A Sat hit can
  // only serve a model request if some cached model belongs to this
  // exact fold; otherwise fall through to a real solve.
  if (LastVerdict.Fold == Fold) {
    bool NeedModel = ModelOut && LastVerdict.R == SolveResult::Sat;
    const ModelCache *Have = nullptr;
    if (NeedModel)
      for (const ModelCache &MC : Models)
        if (MC.Fold == Fold && MC.Len == Assertions.size()) {
          Have = &MC;
          break;
        }
    if (!NeedModel || Have) {
      ++Statistics.CachedVerdicts;
      if (Have)
        *ModelOut = *Have->Model;
      return LastVerdict.R;
    }
  }

  // Model reuse: for each cached model (most recent first) still
  // anchored at a live prefix, evaluate the deltas beyond it; if they
  // all hold, the model (extended with default values for any new
  // variables) satisfies the whole conjunction — Sat with zero queries.
  for (size_t MI = 0; MI != Models.size(); ++MI) {
    ModelCache &MC = Models[MI];
    if (!MC.Model->Complete || MC.Len > Assertions.size())
      continue;
    if (MC.Len != 0 && Folded[MC.Len - 1] != MC.Fold)
      continue;
    bool AllHold = true;
    for (size_t I = MC.Len, E = Assertions.size(); I != E; ++I)
      if (!evalBool(Assertions[I], *MC.Model)) {
        AllHold = false;
        break;
      }
    if (!AllHold)
      continue;
    if (MC.Len == Assertions.size())
      ++Statistics.CachedVerdicts;
    else
      ++Statistics.ModelReuses;
    MC.Len = Assertions.size();
    MC.Fold = Fold;
    LastVerdict = {Fold, SolveResult::Sat};
    if (ModelOut)
      *ModelOut = *MC.Model;
    std::rotate(Models.begin(), Models.begin() + MI, Models.begin() + MI + 1);
    return SolveResult::Sat;
  }

  // Real backend decision.
  auto Captured = std::make_shared<SmtModel>();
  ++Statistics.Queries;
  SolveResult R = solveCurrent(Captured.get());
  if (R == SolveResult::Sat) {
    projectModel(Fold, *Captured);
    LastVerdict = {Fold, SolveResult::Sat};
    Models.insert(Models.begin(),
                  ModelCache{Assertions.size(), Fold, Captured});
    if (Models.size() > MaxCachedModels)
      Models.pop_back();
    if (ModelOut)
      *ModelOut = *Captured;
  } else if (R == SolveResult::Unsat) {
    LastVerdict = {Fold, SolveResult::Unsat};
    Unsat = {Assertions.size(), Fold};
  }
  return R;
}
