//===--- ISolver.h - Pluggable solver backend interface ---------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The backend-neutral solver interface the rest of the project talks to.
/// The paper's prototype used STP behind a thin wrapper; this project now
/// keeps the same shape: every satisfiability engine (the SMT-lite
/// DPLL(T) core, the DNF/Fourier-Motzkin backend, the racing portfolio)
/// implements ISolver, and clients select one through SolverFactory
/// (`--solver=NAME` on the CLIs).
///
/// Three-valued results: Unknown arises only from resource caps; every
/// client in this project treats Unknown in the conservative direction
/// (possible path is explored, exhaustiveness is rejected, a warning is
/// kept).
///
/// Incrementality is exposed through \ref AssertionStack (see
/// AssertionStack.h): openStack() returns a push/pop assertion stack over
/// this backend so path exploration can assert branch deltas instead of
/// re-solving whole path conditions. Backends without native incremental
/// state inherit a generic emulation.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SOLVER_ISOLVER_H
#define MIX_SOLVER_ISOLVER_H

#include "observe/Metrics.h"
#include "observe/Phase.h"
#include "observe/Trace.h"
#include "solver/LinearArith.h"
#include "solver/Term.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mix::smt {

class AssertionStack;

/// Verdict of a satisfiability query.
enum class SolveResult { Sat, Unsat, Unknown };

/// Stable label for a \ref SolveResult ("sat", "unsat", "unknown").
const char *solveResultName(SolveResult R);

/// A satisfying assignment for a Sat query. Variables not mentioned were
/// unconstrained (any value works; treat as 0/false). Complete is false
/// when integer-model reconstruction hit a gap the rational relaxation
/// glossed over — the Sat verdict still stands, but the integer values
/// are unavailable.
struct SmtModel {
  std::map<unsigned, long long> Ints;
  std::map<unsigned, bool> Bools;
  bool Complete = true;

  long long intValue(unsigned Var) const {
    auto It = Ints.find(Var);
    return It == Ints.end() ? 0 : It->second;
  }
  bool boolValue(unsigned Var) const {
    auto It = Bools.find(Var);
    return It != Bools.end() && It->second;
  }
};

/// Renders \p Model as deterministic, name-sorted (name, value) pairs
/// using the source-level variable names interned in \p Arena. Only the
/// variables the model actually constrains appear (unconstrained ones
/// may take any value). The model-extraction surface diagnostic
/// provenance renders concrete witnesses from.
std::vector<std::pair<std::string, std::string>>
modelBindings(const TermArena &Arena, const SmtModel &Model);

/// A persistent memo of query verdicts, keyed by canonicalQueryHash (see
/// solver/QueryHash.h). The canonical hash is backend-independent — it
/// digests the formula's structure alone — so any backend may serve or
/// record a verdict. Implemented by src/persist/ over an on-disk store;
/// solvers consult it only for model-free queries and never store Unknown
/// (a resource-cap artifact, not a property of the formula).
/// Implementations must be thread-safe: SolverPool copies one cache
/// pointer into every pooled instance.
class QueryCache {
public:
  virtual ~QueryCache();
  /// True (with \p Out set to Sat or Unsat) when \p Key has a recorded
  /// verdict.
  virtual bool lookup(uint64_t Key, SolveResult &Out) = 0;
  /// Records a Sat/Unsat verdict for \p Key.
  virtual void store(uint64_t Key, SolveResult Result) = 0;
};

/// Configuration shared by every solver backend.
struct SmtOptions {
  LiaOptions Lia;
  /// Bound on SAT-model / theory-check round trips per query (smtlite).
  unsigned MaxTheoryIterations = 50000;
  /// Bound on the number of DNF cubes the dnf backend expands before
  /// answering Unknown.
  unsigned DnfMaxCubes = 4096;

  /// Observability sinks (see src/observe/). When attached, every query
  /// bumps the "solver.queries" / "solver.sat" / "solver.unsat" /
  /// "solver.unknown" counters and records its latency in the
  /// "solver.query_us" histogram; a trace sink additionally gets one
  /// "solver.query" span per query, tagged with the verdict. Null (the
  /// default) keeps the hot path at a single branch. SolverPool copies
  /// these into every pooled instance, so per-worker solvers aggregate
  /// into the same registry.
  obs::MetricsRegistry *Metrics = nullptr;
  obs::TraceSink *Trace = nullptr;

  /// Per-request telemetry context (see src/observe/Phase.h). When
  /// attached, each query's wall time is added to the request's solver
  /// phase. Null keeps the no-histogram fast path clock-free.
  obs::RequestTelemetry *Telemetry = nullptr;

  /// Optional persistent query memo (see QueryCache above). Null — the
  /// default — keeps checkSat untouched.
  QueryCache *Cache = nullptr;

  /// Cooperative cancellation: when non-null and set, the backend aborts
  /// the in-flight query at its next safe point and returns Unknown. The
  /// portfolio uses this to stop losing backends once a definitive
  /// answer arrived.
  const std::atomic<bool> *Cancel = nullptr;
};

/// The abstract solver backend. One instance serves one term arena;
/// instances are not thread-safe (SolverPool hands out one per worker).
class ISolver {
public:
  virtual ~ISolver();

  /// Stable backend name ("smtlite", "dnf", "portfolio", ...): the
  /// SolverFactory registration key, the `--solver=` value, and the
  /// provenance label for "which backend decided this witness".
  virtual const char *name() const = 0;

  /// Is \p Formula (bool sort) satisfiable? When \p ModelOut is non-null
  /// and the answer is Sat, it receives a satisfying assignment.
  virtual SolveResult checkSat(const Term *Formula,
                               SmtModel *ModelOut = nullptr) = 0;

  /// checkSat, additionally reporting which backend decided the verdict
  /// in \p DecidedBy. For plain backends that is name(); the portfolio
  /// reports the racing winner. Diagnostic provenance uses this so
  /// --explain can attribute a witness (and in particular an Unknown kept
  /// in the conservative direction) to the backend that produced it.
  virtual SolveResult checkSatDecided(const Term *Formula, SmtModel *ModelOut,
                                      std::string &DecidedBy);

  /// Opens an incremental assertion stack over this backend. The default
  /// is the generic emulation (re-solve the asserted conjunction, with
  /// verdict/model caching); backends with native incremental state
  /// override it (smtlite's per-frame clause tagging).
  virtual std::unique_ptr<AssertionStack> openStack();

  /// The term arena queries against this backend must be built in.
  virtual TermArena &arena() = 0;

  /// The configuration this backend was constructed with.
  virtual const SmtOptions &options() const = 0;

  /// Number of queries actually decided by this backend (persistent
  /// cache hits excluded), cumulative over its lifetime.
  virtual uint64_t queries() const = 0;

  // --- Convenience verdict helpers (shared by every backend) -------------

  /// True iff the formula is definitely unsatisfiable. Unknown maps to
  /// false — the conservative direction for feasibility pruning (an
  /// Unknown path is still explored).
  bool isDefinitelyUnsat(const Term *Formula) {
    return checkSat(Formula) == SolveResult::Unsat;
  }

  /// True iff the formula is definitely valid (a tautology). This
  /// implements the paper's exhaustive(g1, ..., gn) check: the
  /// disjunction of path conditions must be a tautology. Unknown maps to
  /// false — the conservative direction (exhaustiveness is rejected).
  bool isDefinitelyValid(const Term *Formula) {
    return checkSat(arena().notTerm(Formula)) == SolveResult::Unsat;
  }

  /// True iff the formula may be satisfiable (Sat or Unknown) — the
  /// conservative answer for "could this error occur".
  bool isPossiblySat(const Term *Formula) {
    return checkSat(Formula) != SolveResult::Unsat;
  }
};

/// Shared backend scaffolding: the metrics/trace instrumentation and the
/// persistent-cache protocol around a virtual decision procedure.
/// SmtSolver (smtlite) and DnfSolver both sit on this.
class SolverBase : public ISolver {
public:
  SolverBase(TermArena &Arena, SmtOptions Opts);

  SolveResult checkSat(const Term *Formula, SmtModel *ModelOut = nullptr) final;
  TermArena &arena() final { return Arena; }
  const SmtOptions &options() const final { return Opts; }
  uint64_t queries() const final { return QueryCount; }

  /// Books one decision made outside checkSat — a native incremental
  /// stack solving its asserted conjunction in place — under the same
  /// counters and histogram, so "solver.queries" means "backend
  /// decisions" in both modes and incremental savings are directly
  /// comparable.
  void noteExternalQuery(SolveResult R, uint64_t DurUs);

protected:
  /// The actual decision procedure.
  virtual SolveResult decide(const Term *Formula, SmtModel *ModelOut) = 0;

  /// True when the cooperative cancellation flag is raised.
  bool cancelled() const {
    return Opts.Cancel && Opts.Cancel->load(std::memory_order_relaxed);
  }

  TermArena &Arena;
  SmtOptions Opts;

private:
  void bumpVerdict(SolveResult R);

  uint64_t QueryCount = 0;

  // Observability handles; detached (free) unless Opts.Metrics was set.
  obs::Counter CQueries, CSat, CUnsat, CUnknown;
  obs::Histogram HQueryUs;
};

} // namespace mix::smt

#endif // MIX_SOLVER_ISOLVER_H
