//===--- Term.h - Solver term language --------------------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The term language of the SMT-lite solver used throughout the project.
/// The paper's prototype used STP; this is our from-scratch stand-in. The
/// fragment is what symbolic execution needs: linear integer arithmetic,
/// booleans, and if-then-else terms (for the SEIf-Defer rule and the
/// null-pointer modelling of Section 4.1).
///
/// Terms are hash-consed in a TermArena: structurally equal terms are
/// pointer-equal, so clients can use pointer identity for the syntactic
/// equivalence tests the paper's Overwrite-Ok rule needs.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SOLVER_TERM_H
#define MIX_SOLVER_TERM_H

#include "support/Hash.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace mix::smt {

/// Term sorts. The solver is two-sorted.
enum class Sort { Bool, Int };

/// Term constructors.
enum class TermKind {
  // Integer-sorted terms.
  IntConst, ///< Integer literal.
  IntVar,   ///< Free integer variable (also used for opaque terms).
  Add,      ///< Binary addition.
  Sub,      ///< Binary subtraction.
  Neg,      ///< Unary negation.
  MulConst, ///< Multiplication by a constant (Value * operand 0).
  IteInt,   ///< if-then-else over integers: Ops = {cond, then, else}.

  // Boolean-sorted terms.
  BoolConst, ///< true / false.
  BoolVar,   ///< Free boolean variable.
  EqInt,     ///< Integer equality.
  Lt,        ///< Integer strict less-than.
  Le,        ///< Integer less-or-equal.
  EqBool,    ///< Boolean equivalence.
  Not,
  And,
  Or,
  Implies,
  IteBool, ///< if-then-else over booleans: Ops = {cond, then, else}.
};

/// A hash-consed, immutable term. Build via TermArena; compare with ==.
class Term {
public:
  TermKind kind() const { return Kind; }
  Sort sort() const { return TermSort; }

  /// Literal value for IntConst, multiplier for MulConst, 0/1 for BoolConst.
  long long value() const { return Value; }

  /// Variable id for IntVar / BoolVar.
  unsigned varId() const {
    assert((Kind == TermKind::IntVar || Kind == TermKind::BoolVar) &&
           "varId() on non-variable term");
    return static_cast<unsigned>(Value);
  }

  unsigned numOperands() const { return static_cast<unsigned>(Ops.size()); }
  const Term *operand(unsigned I) const {
    assert(I < Ops.size() && "operand index out of range");
    return Ops[I];
  }

  bool isBool() const { return TermSort == Sort::Bool; }
  bool isInt() const { return TermSort == Sort::Int; }

  /// Renders the term in SMT-LIB-flavoured prefix syntax (for debugging
  /// and tests).
  std::string str() const;

private:
  friend class TermArena;
  Term(TermKind Kind, Sort TermSort, long long Value,
       std::vector<const Term *> Ops)
      : Kind(Kind), TermSort(TermSort), Value(Value), Ops(std::move(Ops)) {}

  TermKind Kind;
  Sort TermSort;
  long long Value;
  std::vector<const Term *> Ops;
};

/// Renders \p T like Term::str() but with variable indices renumbered in
/// first-occurrence order (left-to-right), so the string depends only on the
/// term's structure — not on how many fresh variables the owning arena had
/// already allocated. Use this wherever a rendered term becomes externally
/// observable output that must be byte-identical across thread schedules
/// (e.g. witness-path path conditions in machine-readable reports).
std::string normalizedStr(const Term *T);

/// Owns and hash-conses terms. Also allocates fresh variable ids.
///
/// The arena applies lightweight local simplifications on construction
/// (constant folding, double negation, neutral elements); these keep terms
/// produced by long symbolic executions compact without a separate
/// simplifier pass.
class TermArena {
public:
  TermArena() = default;
  TermArena(const TermArena &) = delete;
  TermArena &operator=(const TermArena &) = delete;

  // --- Variables ---------------------------------------------------------

  /// Allocates a fresh integer variable with an optional debug name.
  const Term *freshIntVar(std::string Name = "");
  /// Allocates a fresh boolean variable with an optional debug name.
  const Term *freshBoolVar(std::string Name = "");
  /// The already-allocated integer variable with id \p VarId.
  const Term *intVar(unsigned VarId);
  /// The already-allocated boolean variable with id \p VarId.
  const Term *boolVar(unsigned VarId);
  /// Returns the debug name of variable \p VarId of sort \p S (may be "").
  const std::string &varName(Sort S, unsigned VarId) const;
  unsigned numIntVars() const { return (unsigned)IntVarNames.size(); }
  unsigned numBoolVars() const { return (unsigned)BoolVarNames.size(); }

  // --- Integer terms -----------------------------------------------------

  const Term *intConst(long long Value);
  const Term *add(const Term *L, const Term *R);
  const Term *sub(const Term *L, const Term *R);
  const Term *neg(const Term *T);
  const Term *mulConst(long long K, const Term *T);
  const Term *iteInt(const Term *Cond, const Term *Then, const Term *Else);

  // --- Boolean terms -----------------------------------------------------

  const Term *boolConst(bool Value);
  const Term *trueTerm() { return boolConst(true); }
  const Term *falseTerm() { return boolConst(false); }
  const Term *eqInt(const Term *L, const Term *R);
  const Term *lt(const Term *L, const Term *R);
  const Term *le(const Term *L, const Term *R);
  const Term *eqBool(const Term *L, const Term *R);
  const Term *notTerm(const Term *T);
  const Term *andTerm(const Term *L, const Term *R);
  const Term *orTerm(const Term *L, const Term *R);
  const Term *implies(const Term *L, const Term *R);
  const Term *iteBool(const Term *Cond, const Term *Then, const Term *Else);

  /// Generic if-then-else dispatching on the sort of the branches.
  const Term *ite(const Term *Cond, const Term *Then, const Term *Else);

  /// Conjunction of a list (true when empty).
  const Term *andList(const std::vector<const Term *> &Ts);
  /// Disjunction of a list (false when empty).
  const Term *orList(const std::vector<const Term *> &Ts);

private:
  const Term *make(TermKind Kind, Sort S, long long Value,
                   std::vector<const Term *> Ops);

  struct Key {
    TermKind Kind;
    long long Value;
    std::vector<const Term *> Ops;
    bool operator==(const Key &O) const {
      return Kind == O.Kind && Value == O.Value && Ops == O.Ops;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const {
      size_t H = hashCombine((size_t)K.Kind, (size_t)K.Value);
      for (const Term *T : K.Ops)
        H = hashCombine(H, std::hash<const void *>()(T));
      return H;
    }
  };

  std::vector<std::unique_ptr<Term>> Owned;
  std::unordered_map<Key, const Term *, KeyHash> Interned;
  std::vector<std::string> IntVarNames;
  std::vector<std::string> BoolVarNames;
};

} // namespace mix::smt

#endif // MIX_SOLVER_TERM_H
