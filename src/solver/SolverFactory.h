//===--- SolverFactory.h - Solver backend registry --------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name-keyed registry of solver backends and the SolverSpec the driver
/// layer parses `--solver=` / `--solver-portfolio` into. The built-in
/// backends ("smtlite", "dnf") self-register; tests may register extras.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SOLVER_SOLVERFACTORY_H
#define MIX_SOLVER_SOLVERFACTORY_H

#include "solver/ISolver.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace mix::smt {

/// Which backend to run, and whether to race the rest against it. The
/// named backend is always the *primary*: witness models and diagnostics
/// come from it deterministically, so portfolio mode changes latency but
/// never output.
struct SolverSpec {
  std::string Backend = "smtlite";
  bool Portfolio = false;
};

/// Validates and parses a `--solver=` value into \p Out. On failure
/// returns false with a message (listing the registered backends) in
/// \p Err.
bool parseSolverBackend(const std::string &Name, SolverSpec &Out,
                        std::string &Err);

/// Registered backend names, sorted (deterministic across runs).
std::vector<std::string> registeredBackends();

/// Registers a backend factory under \p Name (tests and extensions;
/// built-ins are pre-registered). Returns false if the name is taken.
bool registerSolverBackend(
    const std::string &Name,
    std::function<std::unique_ptr<ISolver>(TermArena &, const SmtOptions &)>
        Factory);

/// Creates the plain backend registered under \p Name over \p Arena.
/// Returns null for an unknown name.
std::unique_ptr<ISolver> createBackend(const std::string &Name,
                                       TermArena &Arena,
                                       const SmtOptions &Opts);

/// Creates the solver \p Spec describes: the named backend, wrapped in a
/// racing portfolio (against every other registered backend) when
/// Spec.Portfolio is set. Returns null for an unknown backend name.
std::unique_ptr<ISolver> createSolver(const SolverSpec &Spec, TermArena &Arena,
                                      const SmtOptions &Opts);

} // namespace mix::smt

#endif // MIX_SOLVER_SOLVERFACTORY_H
