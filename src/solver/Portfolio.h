//===--- Portfolio.h - Racing solver portfolio ------------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Portfolio mode: race the primary backend against rival backends on
/// each verdict-only query; the first definitive (Sat/Unsat) answer wins
/// and the losers are stopped through their cooperative cancel flag.
///
/// Determinism. Definitive verdicts agree across correct backends (the
/// differential harness exists to keep that true), so racing changes
/// which backend *answers*, never what the answer is — except that a
/// rival can rescue a primary resource-cap Unknown into a definitive
/// verdict, which is itself deterministic because rival verdicts don't
/// depend on race timing. Model-bearing queries (witness extraction) do
/// not race at all: they go to the primary alone, so diagnostics are
/// byte-identical with the portfolio on or off, at any `--jobs` level.
///
/// Each rival runs over a private arena (terms are cloned across, memoized
/// per rival) with metrics/trace/cache detached, so "solver.queries" and
/// the persistent cache see exactly the single-backend story. The
/// portfolio layer itself books the per-query counters plus
/// "solver.portfolio.win.<backend>" and
/// "solver.portfolio.latency_us.<backend>".
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SOLVER_PORTFOLIO_H
#define MIX_SOLVER_PORTFOLIO_H

#include "solver/ISolver.h"

#include <unordered_map>

namespace mix::smt {

/// ISolver that races a primary backend against rivals per query.
class PortfolioSolver : public ISolver {
public:
  /// \p BackendNames must name registered backends; the first is the
  /// primary. Construction fails an assert on unknown names — callers go
  /// through SolverFactory, which validates first.
  PortfolioSolver(TermArena &Arena, SmtOptions Opts,
                  const std::vector<std::string> &BackendNames);
  ~PortfolioSolver() override;

  const char *name() const override { return "portfolio"; }
  SolveResult checkSat(const Term *Formula,
                       SmtModel *ModelOut = nullptr) override;
  SolveResult checkSatDecided(const Term *Formula, SmtModel *ModelOut,
                              std::string &DecidedBy) override;
  TermArena &arena() override { return Arena; }
  const SmtOptions &options() const override { return Opts; }
  uint64_t queries() const override { return QueryCount; }

  ISolver &primary() { return *Primary; }

private:
  SolveResult decideRaced(const Term *Formula, std::string &DecidedBy);

  TermArena &Arena;
  SmtOptions Opts;

  /// Raised to stop the losers once a definitive verdict lands; rivals
  /// and the primary all watch this flag during raced queries.
  std::atomic<bool> Cancel{false};

  std::unique_ptr<ISolver> Primary;
  struct Rival {
    std::string Name;
    std::unique_ptr<TermArena> Terms;
    std::unique_ptr<ISolver> Backend;
    std::unordered_map<const Term *, const Term *> CloneMemo;
  };
  std::vector<Rival> Rivals;

  uint64_t QueryCount = 0;

  obs::Counter CQueries, CSat, CUnsat, CUnknown;
  obs::Histogram HQueryUs;
  /// Win counter and latency histogram per lane, index-aligned with
  /// {primary, rivals...}.
  std::vector<obs::Counter> CWins;
  std::vector<obs::Histogram> HLatency;
};

} // namespace mix::smt

#endif // MIX_SOLVER_PORTFOLIO_H
