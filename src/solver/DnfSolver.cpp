//===--- DnfSolver.cpp - DNF/Fourier-Motzkin solver backend ---------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "solver/DnfSolver.h"

#include "solver/SmtInternals.h"

#include <cassert>

using namespace mix::smt;
using namespace mix::smt::detail;

namespace {

/// A literal of the propositional skeleton: an atom (EqInt/Lt/Le or
/// BoolVar) with a polarity.
struct CubeLit {
  const Term *Atom;
  bool Positive;
};

/// A conjunction of skeleton literals.
using Cube = std::vector<CubeLit>;

bool expandDnf(const Term *T, bool Negated, unsigned MaxCubes,
               std::vector<Cube> &Out);

/// Appends the cubes of (X under NegX) /\ (Y under NegY) to \p Out.
bool dnfProduct(const Term *X, bool NegX, const Term *Y, bool NegY,
                unsigned MaxCubes, std::vector<Cube> &Out) {
  std::vector<Cube> Left, Right;
  if (!expandDnf(X, NegX, MaxCubes, Left) ||
      !expandDnf(Y, NegY, MaxCubes, Right))
    return false;
  if (Out.size() + Left.size() * Right.size() > MaxCubes)
    return false;
  for (const Cube &L : Left)
    for (const Cube &R : Right) {
      Cube C = L;
      C.insert(C.end(), R.begin(), R.end());
      Out.push_back(std::move(C));
    }
  return true;
}

/// Expands the NNF of \p T (computed on the fly via \p Negated) into DNF
/// cubes, appending to \p Out. Returns false when the expansion exceeds
/// \p MaxCubes — the resource cap that bounds the worst-case exponential.
bool expandDnf(const Term *T, bool Negated, unsigned MaxCubes,
               std::vector<Cube> &Out) {
  switch (T->kind()) {
  case TermKind::BoolConst: {
    bool Value = (T->value() != 0) != Negated;
    if (Value)
      Out.push_back({}); // empty cube = true
    // false contributes no cube
    return Out.size() <= MaxCubes;
  }
  case TermKind::BoolVar:
  case TermKind::EqInt:
  case TermKind::Lt:
  case TermKind::Le:
    Out.push_back({{T, !Negated}});
    return Out.size() <= MaxCubes;
  case TermKind::Not:
    return expandDnf(T->operand(0), !Negated, MaxCubes, Out);
  case TermKind::And:
  case TermKind::Or: {
    const Term *A = T->operand(0);
    const Term *B = T->operand(1);
    if ((T->kind() == TermKind::And) != Negated)
      return dnfProduct(A, Negated, B, Negated, MaxCubes, Out);
    // Disjunction: concatenate both operands' cubes.
    return expandDnf(A, Negated, MaxCubes, Out) &&
           expandDnf(B, Negated, MaxCubes, Out) && Out.size() <= MaxCubes;
  }
  case TermKind::Implies: {
    const Term *A = T->operand(0);
    const Term *B = T->operand(1);
    if (!Negated) // a => b  ==  ~a \/ b
      return expandDnf(A, true, MaxCubes, Out) &&
             expandDnf(B, false, MaxCubes, Out) && Out.size() <= MaxCubes;
    // ~(a => b)  ==  a /\ ~b
    return dnfProduct(A, false, B, true, MaxCubes, Out);
  }
  case TermKind::EqBool: {
    // a <=> b  ==  (a /\ b) \/ (~a /\ ~b); negated: (a /\ ~b) \/ (~a /\ b).
    const Term *A = T->operand(0);
    const Term *B = T->operand(1);
    if (!Negated)
      return dnfProduct(A, false, B, false, MaxCubes, Out) &&
             dnfProduct(A, true, B, true, MaxCubes, Out);
    return dnfProduct(A, false, B, true, MaxCubes, Out) &&
           dnfProduct(A, true, B, false, MaxCubes, Out);
  }
  case TermKind::IteBool: {
    // ite(c, a, b) == (c /\ a) \/ (~c /\ b); negation pushes into a and b.
    const Term *C = T->operand(0);
    const Term *A = T->operand(1);
    const Term *B = T->operand(2);
    return dnfProduct(C, false, A, Negated, MaxCubes, Out) &&
           dnfProduct(C, true, B, Negated, MaxCubes, Out);
  }
  default:
    assert(false && "non-boolean term in DNF expansion");
    return false;
  }
}

} // namespace

SolveResult DnfSolver::decide(const Term *Formula, SmtModel *ModelOut) {
  assert(Formula->isBool() && "checkSat() requires a boolean formula");

  // Lower if-then-else integer terms and conjoin their definitions.
  IteLowering Lowering(Arena);
  const Term *F = Lowering.lower(Formula);
  for (const Term *Def : Lowering.definitions())
    F = Arena.andTerm(F, Def);

  if (F->kind() == TermKind::BoolConst) {
    if (ModelOut)
      *ModelOut = SmtModel();
    return F->value() ? SolveResult::Sat : SolveResult::Unsat;
  }

  std::vector<Cube> Cubes;
  if (!expandDnf(F, /*Negated=*/false, Opts.DnfMaxCubes, Cubes))
    return SolveResult::Unknown; // cube cap exceeded: resource cap

  bool AnyUnknown = false;
  for (const Cube &C : Cubes) {
    if (cancelled())
      return SolveResult::Unknown;

    // Propositional consistency over boolean variables and constants.
    std::map<unsigned, bool> BoolAssign;
    bool Consistent = true;
    std::vector<LinConstraint> Constraints;
    for (const CubeLit &L : C) {
      switch (L.Atom->kind()) {
      case TermKind::BoolVar: {
        auto [It, Inserted] = BoolAssign.try_emplace(L.Atom->varId(),
                                                     L.Positive);
        if (!Inserted && It->second != L.Positive)
          Consistent = false;
        break;
      }
      case TermKind::EqInt:
      case TermKind::Lt:
      case TermKind::Le:
        Constraints.push_back(atomToConstraint(L.Atom, L.Positive));
        break;
      default:
        assert(false && "unexpected cube literal");
        break;
      }
      if (!Consistent)
        break;
    }
    if (!Consistent)
      continue;

    if (Constraints.empty()) {
      if (ModelOut) {
        *ModelOut = SmtModel();
        for (const auto &[Var, Value] : BoolAssign)
          ModelOut->Bools[Var] = Value;
      }
      return SolveResult::Sat;
    }

    LiaResult R = checkLinearConjunction(Constraints, Opts.Lia);
    if (R.Verdict == LiaVerdict::Sat) {
      if (ModelOut) {
        *ModelOut = SmtModel();
        ModelOut->Ints = R.Model;
        ModelOut->Complete = R.HasModel;
        for (const auto &[Var, Value] : BoolAssign)
          ModelOut->Bools[Var] = Value;
      }
      return SolveResult::Sat;
    }
    if (R.Verdict == LiaVerdict::Unknown)
      AnyUnknown = true;
    // Unsat cube: try the next one.
  }

  return AnyUnknown ? SolveResult::Unknown : SolveResult::Unsat;
}
