//===--- ISolver.cpp - Pluggable solver backend interface -----------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "solver/ISolver.h"

#include "solver/AssertionStack.h"
#include "solver/QueryHash.h"

#include <algorithm>
#include <cassert>
#include <chrono>

using namespace mix::smt;

const char *mix::smt::solveResultName(SolveResult R) {
  switch (R) {
  case SolveResult::Sat:
    return "sat";
  case SolveResult::Unsat:
    return "unsat";
  case SolveResult::Unknown:
    return "unknown";
  }
  return "unknown";
}

QueryCache::~QueryCache() = default;

ISolver::~ISolver() = default;

SolveResult ISolver::checkSatDecided(const Term *Formula, SmtModel *ModelOut,
                                     std::string &DecidedBy) {
  DecidedBy = name();
  return checkSat(Formula, ModelOut);
}

std::unique_ptr<AssertionStack> ISolver::openStack() {
  return std::make_unique<AssertionStack>(*this);
}

std::vector<std::pair<std::string, std::string>>
mix::smt::modelBindings(const TermArena &Arena, const SmtModel &Model) {
  std::vector<std::pair<std::string, std::string>> Out;
  for (const auto &[Var, Value] : Model.Ints)
    if (Var < Arena.numIntVars())
      Out.emplace_back(Arena.varName(Sort::Int, Var), std::to_string(Value));
  for (const auto &[Var, Value] : Model.Bools)
    if (Var < Arena.numBoolVars())
      Out.emplace_back(Arena.varName(Sort::Bool, Var),
                       Value ? "true" : "false");
  std::sort(Out.begin(), Out.end());
  return Out;
}

SolverBase::SolverBase(TermArena &Arena, SmtOptions Opts)
    : Arena(Arena), Opts(Opts) {
  if (Opts.Metrics) {
    CQueries = Opts.Metrics->counter("solver.queries");
    CSat = Opts.Metrics->counter("solver.sat");
    CUnsat = Opts.Metrics->counter("solver.unsat");
    CUnknown = Opts.Metrics->counter("solver.unknown");
    HQueryUs = Opts.Metrics->histogram("solver.query_us");
  }
}

void SolverBase::bumpVerdict(SolveResult R) {
  (R == SolveResult::Sat     ? CSat
   : R == SolveResult::Unsat ? CUnsat
                             : CUnknown)
      .inc();
}

void SolverBase::noteExternalQuery(SolveResult R, uint64_t DurUs) {
  ++QueryCount;
  CQueries.inc();
  bumpVerdict(R);
  HQueryUs.record(DurUs);
  if (Opts.Telemetry)
    Opts.Telemetry->addPhase(obs::Phase::Solver, DurUs);
}

SolveResult SolverBase::checkSat(const Term *Formula, SmtModel *ModelOut) {
  // Persistent memo (src/persist/): only verdicts are stored, so a model
  // request must run the real solver; Unknown is a resource-cap artifact
  // and is neither served nor recorded. A hit still counts as a query so
  // hit-rate arithmetic against "solver.queries" stays meaningful.
  uint64_t CacheKey = 0;
  bool UseCache = Opts.Cache && !ModelOut;
  if (UseCache) {
    CacheKey = canonicalQueryHash(Formula);
    SolveResult R;
    if (Opts.Cache->lookup(CacheKey, R)) {
      CQueries.inc();
      (R == SolveResult::Sat ? CSat : CUnsat).inc();
      return R;
    }
  }

  // The uninstrumented run is the common case: every sink null, so the
  // whole observability layer costs three branches per query and no
  // clock reads.
  if (!HQueryUs && !Opts.Trace && !Opts.Telemetry) {
    SolveResult R = decide(Formula, ModelOut);
    ++QueryCount;
    CQueries.inc();
    bumpVerdict(R);
    if (UseCache && R != SolveResult::Unknown)
      Opts.Cache->store(CacheKey, R);
    return R;
  }

  uint64_t Start = Opts.Trace ? Opts.Trace->nowUs() : 0;
  auto T0 = std::chrono::steady_clock::now();
  SolveResult R = decide(Formula, ModelOut);
  uint64_t DurUs =
      (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - T0)
          .count();
  ++QueryCount;
  CQueries.inc();
  bumpVerdict(R);
  HQueryUs.record(DurUs);
  if (Opts.Telemetry)
    Opts.Telemetry->addPhase(obs::Phase::Solver, DurUs);
  if (Opts.Trace)
    Opts.Trace->complete("solver.query", "solver", Start, DurUs,
                         std::string("{\"result\": \"") + solveResultName(R) +
                             "\"}");
  if (UseCache && R != SolveResult::Unknown)
    Opts.Cache->store(CacheKey, R);
  return R;
}
