//===--- QueryHash.h - Canonical solver-query hashing -----------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The key half of the persistent solver-query cache (src/persist/): a
/// stable 64-bit digest of a formula that is invariant under variable-id
/// allocation order. TermArena hands out ids in creation order, which
/// depends on execution history and on --jobs (each worker owns an
/// arena), so raw ids cannot appear in a cross-run key. Instead,
/// variables are renumbered by first occurrence in a deterministic
/// left-to-right preorder walk of the formula — alpha-equivalent queries
/// built in different runs digest identically, and structurally different
/// queries (modulo 64-bit collisions) do not.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SOLVER_QUERYHASH_H
#define MIX_SOLVER_QUERYHASH_H

#include "solver/Term.h"

#include <cstdint>

namespace mix::smt {

/// Stable, variable-renaming-invariant digest of \p Formula. Safe to use
/// as an on-disk cache key: satisfiability is decided by structure alone,
/// so two formulas with equal digests (no collision) have the same
/// Sat/Unsat verdict.
uint64_t canonicalQueryHash(const Term *Formula);

} // namespace mix::smt

#endif // MIX_SOLVER_QUERYHASH_H
