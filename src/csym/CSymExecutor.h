//===--- CSymExecutor.h - Symbolic executor for mini-C ----------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The C symbolic executor of Section 4 (the Otter substitute). It
/// executes one function at a time on fully symbolic inputs:
///
///  - memory is lazily initialized "in an incremental manner so that we
///    can sidestep the issue of initializing an arbitrarily recursive
///    data structure; MIXY only initializes as much as is required";
///  - pointers from the calling context start as (alpha ? loc : 0) when
///    their qualifiers allow null, or as a definite fresh location when
///    nonnull (Section 4.1, "From Types to Symbolic Values");
///  - conditionals fork, with solver-pruned infeasible branches;
///  - loops unroll up to a bound (paths beyond it are marked incomplete);
///  - dereferences and calls to nonnull-annotated parameters raise
///    null-dereference warnings when the solver finds the null case
///    feasible under the path condition;
///  - calls to MIX(typed) functions are delegated to a TypedCallHook (the
///    MIXY driver), reproducing the function-granularity block switching
///    of Section 4.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_CSYM_CSYMEXECUTOR_H
#define MIX_CSYM_CSYMEXECUTOR_H

#include "cfront/CSema.h"
#include "csym/CSymValue.h"
#include "provenance/Provenance.h"
#include "solver/PathSolver.h"
#include "support/Diagnostics.h"

#include <optional>
#include <set>
#include <string>
#include <vector>

namespace mix::c {

class CSymExecutor;

/// One execution path's mutable state. Locals live here (not in a shared
/// frame) because declarations inside branches allocate per path.
struct CSymState {
  const smt::Term *Path = nullptr;
  /// The same condition as \ref Path, kept as a chain of branch deltas so
  /// the executor's PathSolver can sync its assertion stack by diffing
  /// against a sibling path instead of re-solving from scratch. Invariant:
  /// PC.folded(Terms) == Path whenever Path was only ever extended through
  /// the executor's own branch sites (PathSolver falls back to a direct
  /// query if a hook breaks this).
  smt::PathCondition PC;
  CStore Store;
  std::map<std::string, LocId> Locals;
  std::map<std::string, const CType *> LocalTypes;
  bool Returned = false;
  CSymValue RetValue;
  /// With provenance recording on (CSymOptions::Prov): the branch
  /// decisions that produced this path, in execution order. Always empty
  /// when recording is off, so state copies stay cheap.
  std::vector<prov::WitnessStep> Trail;
};

/// MIXY's hook for calls to MIX(typed) functions met during symbolic
/// execution (the SETypBlock direction at function granularity).
class TypedCallHook {
public:
  virtual ~TypedCallHook() = default;

  /// Models the call with the type system. May inspect \p Args (e.g. to
  /// seed null constraints), must set \p RetOut, and may modify
  /// \p State (typically havocking the store). Returns false to fall back
  /// to the executor's conservative extern modelling.
  virtual bool callTypedFunction(CSymExecutor &Exec, CSymState &State,
                                 const CCall *Call, const CFuncDecl *Callee,
                                 const std::vector<CSymValue> &Args,
                                 CSymValue &RetOut) = 0;
};

/// A pluggable engine for function-body execution. The unified concolic
/// core (src/concolic/CIrExecutor) implements this over lowered bytecode;
/// CSymExecutor routes every body — the entry function's and each inlined
/// callee's — through it, falling back to its own AST walker when the
/// engine declines (body not lowerable). The engine drives the executor
/// purely through its public adapter API below, so the two always agree
/// on memory, diagnostics, and statistics.
class CBodyEngine {
public:
  virtual ~CBodyEngine() = default;

  /// Executes \p F's body from \p State at inline depth \p Depth,
  /// appending the resulting paths to \p Out. Returns false — before any
  /// side effect on \p Out, the executor, or \p State — to decline, in
  /// which case the caller walks the AST with the untouched state. On
  /// true, \p State has been consumed.
  virtual bool runBody(const CFuncDecl *F, CSymState &State, unsigned Depth,
                       std::vector<CSymState> &Out) = 0;
};

/// Tuning knobs.
struct CSymOptions {
  unsigned LoopBound = 8;
  unsigned MaxCallDepth = 24;
  unsigned MaxPaths = 4096;
  /// Seed pointer parameters as possibly-null unless told otherwise.
  bool ParamsMayBeNull = true;
  /// Check nonnull annotations on the parameters of called functions.
  bool CheckNonnullArguments = true;
  /// Warn on dereferences whose null case is feasible.
  bool CheckDereferences = true;
  /// Route feasibility checks through an incremental AssertionStack that
  /// pushes/pops branch deltas between sibling paths (the tentpole's
  /// per-path stacks). Off = every check is a from-scratch checkSat; the
  /// verdicts and diagnostics are identical either way.
  bool IncrementalSolver = true;

  /// Provenance recording (see src/provenance/). When attached, states
  /// carry branch trails and every warning emitted with a state in hand
  /// gets a witness path (trail, feasible null path condition, and a
  /// solver model for it). Null — the default — records nothing.
  prov::ProvenanceSink *Prov = nullptr;
};

/// Result of symbolically executing one function.
struct CSymResult {
  struct PathOut {
    const smt::Term *Path = nullptr;
    bool Returned = false;
    CSymValue Ret;
    CStore Store;
  };
  std::vector<PathOut> Paths;
  /// Loop bound / path budget / call depth tripped: the enumeration is
  /// not exhaustive.
  bool Incomplete = false;
  /// Warnings found on feasible paths (also reported to the diagnostic
  /// engine, deduplicated).
  unsigned WarningCount = 0;

  /// The memory object each pointer parameter was seeded to reference
  /// (NoLoc for non-pointer parameters).
  std::vector<LocId> ParamPointeeLocs;
  /// The storage object of each parameter, by position.
  std::vector<LocId> ParamLocs;
  /// The solver term each scalar parameter was seeded with (null for
  /// pointer parameters). Differential tests use these to evaluate path
  /// conditions under concrete inputs.
  std::vector<const smt::Term *> ParamTerms;
};

/// How a pointer coming from the typed world may behave (Section 4.1).
enum class NullSeed {
  MayBeNull, ///< qualifier solved to null (or optimistic fallback failed)
  Nonnull,   ///< qualifier solved to nonnull (or optimistic assumption)
};

/// The executor. One instance per analysis run; warnings deduplicate
/// across runFunction calls.
class CSymExecutor {
public:
  CSymExecutor(const CProgram &Program, CAstContext &Ctx,
               DiagnosticEngine &Diags, smt::TermArena &Terms,
               smt::ISolver &Solver, CSymOptions Opts = CSymOptions());

  void setTypedCallHook(TypedCallHook *Hook) { this->Hook = Hook; }

  /// Installs (or clears) the body-execution engine. The executor keeps
  /// walking the AST for bodies the engine declines.
  void setBodyEngine(CBodyEngine *Engine) { this->Engine = Engine; }

  /// Executes \p F with symbolic arguments. \p ParamSeeds gives the
  /// nullability of pointer parameters and \p GlobalSeeds that of
  /// pointer-typed globals (both from the typed calling context,
  /// Section 4.1); missing entries default to declared annotations and
  /// the ParamsMayBeNull option.
  CSymResult
  runFunction(const CFuncDecl *F, const std::vector<NullSeed> &ParamSeeds = {},
              const std::map<std::string, NullSeed> &GlobalSeeds = {});

  // --- queries used by MIXY's symbolic-to-typed translation -------------

  /// The storage object of global \p Name (created on demand; stable
  /// across paths and runs).
  LocId globalLoc(const std::string &Name);

  /// Is `value == null` feasible under \p Path? ("we ask whether
  /// g and (s = 0) is satisfiable", Section 4.1.)
  bool mayBeNull(const smt::Term *Path, const CSymValue &Value);

  /// Reads a cell from a result path's final store *without* lazily
  /// initializing (returns nullopt when never touched).
  static std::optional<CSymValue> finalCell(const CSymResult::PathOut &P,
                                            LocId Loc,
                                            const std::string &Field);

  /// Declared type of a cell (object type or struct field type).
  const CType *cellType(LocId Loc, const std::string &Field) const;

  /// Allocates a fresh object of type \p Ty (exposed for the hook).
  LocId newObject(const CType *Ty, std::string Name);

  /// Havocs the entire store of \p State: every cell re-initializes
  /// lazily on next access (MIXY "has to consider the entire memory when
  /// switching", Section 4.6).
  void havocStore(CSymState &State) { State.Store.clear(); }

  /// Builds the lazily-initialized value for a pointer cell seeded as \p
  /// Seed: nonnull -> fresh object; may-be-null -> (alpha ? obj : null).
  CSymValue seededPointer(const CType *PtrTy, NullSeed Seed,
                          const std::string &Name);

  smt::TermArena &terms() { return Terms; }
  smt::ISolver &solver() { return Solver; }
  DiagnosticEngine &diags() { return Diags; }
  const CProgram &program() const { return Program; }

  /// Seeds the cross-run warning dedup set without reporting anything.
  /// Returns true when the warning was not yet recorded. MIXY uses this
  /// when replaying persisted block diagnostics, so a replayed warning
  /// and a freshly executed one deduplicate against each other exactly
  /// as two fresh runs would.
  bool tryMarkWarningEmitted(SourceLoc Loc, const std::string &Message) {
    return EmittedWarnings.insert(Loc.str() + "|" + Message).second;
  }

  /// Cumulative statistics.
  struct Stats {
    unsigned PathsExplored = 0;
    unsigned ForksPruned = 0;
    unsigned NullChecks = 0;
    unsigned CallsInlined = 0;
    unsigned TypedCalls = 0;
  };
  const Stats &stats() const { return Statistics; }

  // --- adapter API -------------------------------------------------------
  //
  // The memory-model/diagnostics surface a CBodyEngine drives. This is
  // the executor's role under the unified concolic core: the *state*
  // layer (lazy-init store, pointer case analysis, feasibility checks,
  // deduplicated warnings with witness provenance) while the engine owns
  // instruction dispatch. The AST walker below is one client of this
  // surface; the IR interpreter is the other.

  struct Frame {
    const CFuncDecl *Func = nullptr;
    unsigned Depth = 0;
  };

  /// A state paired with the value an expression produced on that path.
  struct Flow {
    CSymState State;
    CSymValue Value;
  };

  /// A guarded storage designator (the result of lvalue resolution).
  struct LVal {
    const smt::Term *Guard;
    LocId Loc;
    std::string Field;
  };

  /// A state paired with the cells an lvalue resolved to on that path.
  struct LResolved {
    CSymState State;
    std::vector<LVal> Cells;
  };

  /// Dispatches a call with evaluated arguments to a known callee: typed
  /// hook, nonnull-argument checks, extern modelling, or inlining.
  void dispatchCall(const CCall *Call, const CFuncDecl *Callee,
                    const std::vector<CSymValue> &Args, CSymState State,
                    const Frame &Frame, std::vector<Flow> &Out);
  /// Conservative model of a call that cannot be inlined.
  Flow externCall(const CCall *Call, const CFuncDecl *Callee,
                  const std::vector<CSymValue> &Args, CSymState State);

  /// Applies \p Op to already-evaluated operand values.
  CSymValue evalBinaryValues(CBinaryOp Op, const CSymValue &L,
                             const CSymValue &R);
  /// The guard under which two pointer(ish) values are equal.
  const smt::Term *pointerEqGuard(const CSymValue &L, const CSymValue &R);

  /// Reads a cell, lazily initializing it.
  CSymValue readCell(CSymState &State, LocId Loc, const std::string &Field);
  /// Writes through guarded cells (Morris's general axiom of assignment).
  void writeCells(CSymState &State, const std::vector<LVal> &Cells,
                  const CSymValue &Value);

  /// Builds the lazy initial value for a cell of type \p Ty.
  CSymValue lazyInit(const CType *Ty, const std::string &Name);

  /// Coerces a value to a boolean term (C truthiness).
  const smt::Term *truthTerm(const CSymValue &V);
  /// Coerces a value to an int-sorted scalar term.
  const smt::Term *intTerm(const CSymValue &V);

  /// Is the state's path condition satisfiable? Uses the incremental
  /// stack when enabled (state chains share prefixes with siblings).
  bool feasible(const CSymState &State);
  /// Is Path ∧ Extra satisfiable? \p Extra is a probe (a null guard, a
  /// branch condition being tested) asserted in a temporary frame, so the
  /// synced path prefix is reused across probes on the same state.
  bool feasibleWith(const CSymState &State, const smt::Term *Extra);
  /// Conjoins \p Cond onto both representations of the state's path
  /// condition, keeping the Path/PC invariant.
  void extendPath(CSymState &State, const smt::Term *Cond) {
    State.Path = Terms.andTerm(State.Path, Cond);
    State.PC = State.PC.extend(Terms, Cond);
  }

  /// Reports a (deduplicated) warning. When \p State is given and
  /// provenance recording is on, the warning carries a witness path built
  /// from the state's branch trail and \p WitnessCond — the feasible
  /// condition that triggered the warning (defaults to the state's path
  /// condition) — with a satisfying model extracted from the solver.
  void warn(SourceLoc Loc, const std::string &Message,
            const CSymState *State = nullptr,
            const smt::Term *WitnessCond = nullptr);

  const CSymOptions &options() const { return Opts; }
  CAstContext &context() { return Ctx; }
  CSema &sema() { return Sema; }

  /// execStmt's entry budget check: too many paths explored this run?
  bool pathBudgetExceeded() const { return PathsThisRun > Opts.MaxPaths; }
  /// Marks the current run's enumeration as non-exhaustive.
  void noteIncomplete() { IncompleteThisRun = true; }
  /// Counts a feasible branch outcome (both sides of a fork count).
  void notePathExplored() {
    ++PathsThisRun;
    ++Statistics.PathsExplored;
  }
  /// Counts an infeasible branch outcome pruned by the solver.
  void noteForkPruned() { ++Statistics.ForksPruned; }
  /// Counts a null-dereference feasibility check.
  void noteNullCheck() { ++Statistics.NullChecks; }

private:
  // Statement execution: transforms one path into many.
  std::vector<CSymState> execStmt(const CStmt *S, CSymState State,
                                  const Frame &Frame);
  std::vector<CSymState> execWhile(const CWhileStmt *W, CSymState State,
                                   const Frame &Frame);

  /// Executes \p F's body: through the installed engine when it accepts,
  /// the AST walker otherwise. Both runFunction and inlineCall route
  /// bodies through here, so mixed-mode runs (engine for lowerable
  /// bodies, walker for the rest) compose per callee.
  std::vector<CSymState> runBody(const CFuncDecl *F, CSymState State,
                                 const Frame &Frame);

  // Expression evaluation (calls can fork).
  std::vector<Flow> evalExpr(const CExpr *E, CSymState State,
                             const Frame &Frame);
  std::vector<Flow> evalCall(const CCall *Call, CSymState State,
                             const Frame &Frame);
  std::vector<Flow> inlineCall(const CFuncDecl *F,
                               const std::vector<CSymValue> &Args,
                               CSymState State, unsigned Depth);

  /// Resolves an lvalue to guarded cells, warning about feasible null
  /// dereferences along the way and refining the path condition
  /// (continuing execution assumes the dereference did not trap).
  std::vector<LResolved> resolveLValue(const CExpr *E, CSymState State,
                                       const Frame &Frame);

  const CType *typeOf(const CExpr *E, const CSymState &State,
                      const Frame &Frame);
  CScope scopeOf(const CSymState &State, const Frame &Frame) const;

  const CProgram &Program;
  CAstContext &Ctx;
  CSema Sema;
  DiagnosticEngine &Diags;
  smt::TermArena &Terms;
  smt::ISolver &Solver;
  smt::PathSolver PathChecker;
  CSymOptions Opts;
  TypedCallHook *Hook = nullptr;
  CBodyEngine *Engine = nullptr;

  struct ObjInfo {
    const CType *Ty;
    std::string Name;
  };
  std::vector<ObjInfo> Objects; // index 0 unused (NoLoc)
  std::map<std::string, LocId> GlobalLocs;

  std::set<std::string> EmittedWarnings;
  unsigned WarningsThisRun = 0;
  bool IncompleteThisRun = false;
  unsigned PathsThisRun = 0;
  Stats Statistics;
};

} // namespace mix::c

#endif // MIX_CSYM_CSYMEXECUTOR_H
