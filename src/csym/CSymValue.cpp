//===--- CSymValue.cpp - Symbolic values and stores for mini-C -------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "csym/CSymValue.h"

using namespace mix::c;
using mix::smt::Term;
using mix::smt::TermArena;

const Term *CSymValue::nullGuard(TermArena &A) const {
  assert(isPtr() && "nullGuard() on scalar value");
  const Term *G = A.falseTerm();
  for (const PtrCase &C : Cases)
    if (C.Target.K == PtrTarget::Kind::Null)
      G = A.orTerm(G, C.Guard);
  return G;
}

const Term *CSymValue::nonNullGuard(TermArena &A) const {
  assert(isPtr() && "nonNullGuard() on scalar value");
  const Term *G = A.falseTerm();
  for (const PtrCase &C : Cases)
    if (C.Target.K != PtrTarget::Kind::Null)
      G = A.orTerm(G, C.Guard);
  return G;
}

CSymValue CSymValue::ite(TermArena &A, const Term *Cond,
                         const CSymValue &Then, const CSymValue &Else) {
  if (Cond->kind() == smt::TermKind::BoolConst)
    return Cond->value() ? Then : Else;
  if (Then.isScalar() && Else.isScalar())
    return scalar(A.iteInt(Cond, Then.scalarTerm(), Else.scalarTerm()));

  assert(Then.isPtr() && Else.isPtr() && "ite over mismatched value kinds");
  std::vector<PtrCase> Merged;
  for (const PtrCase &C : Then.Cases) {
    const Term *G = A.andTerm(Cond, C.Guard);
    if (G->kind() == smt::TermKind::BoolConst && !G->value())
      continue;
    // Coalesce with an existing identical target.
    bool Fused = false;
    for (PtrCase &M : Merged)
      if (M.Target == C.Target) {
        M.Guard = A.orTerm(M.Guard, G);
        Fused = true;
        break;
      }
    if (!Fused)
      Merged.push_back({G, C.Target});
  }
  for (const PtrCase &C : Else.Cases) {
    const Term *G = A.andTerm(A.notTerm(Cond), C.Guard);
    if (G->kind() == smt::TermKind::BoolConst && !G->value())
      continue;
    bool Fused = false;
    for (PtrCase &M : Merged)
      if (M.Target == C.Target) {
        M.Guard = A.orTerm(M.Guard, G);
        Fused = true;
        break;
      }
    if (!Fused)
      Merged.push_back({G, C.Target});
  }
  return pointer(std::move(Merged));
}

std::string CSymValue::str() const {
  if (isScalar())
    return Term_ ? Term_->str() : "<uninit>";
  std::string Out = "ptr{";
  for (size_t I = 0; I != Cases.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += Cases[I].Guard->str() + " -> ";
    switch (Cases[I].Target.K) {
    case PtrTarget::Kind::Null:
      Out += "null";
      break;
    case PtrTarget::Kind::Object:
      Out += "obj" + std::to_string(Cases[I].Target.Loc);
      if (!Cases[I].Target.Field.empty())
        Out += "." + Cases[I].Target.Field;
      break;
    case PtrTarget::Kind::Function:
      Out += "&" + Cases[I].Target.Fn->name();
      break;
    case PtrTarget::Kind::UnknownFn:
      Out += "<unknown-fn>";
      break;
    }
  }
  Out += "}";
  return Out;
}
