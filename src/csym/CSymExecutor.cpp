//===--- CSymExecutor.cpp - Symbolic executor for mini-C --------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "csym/CSymExecutor.h"

using namespace mix::c;
using mix::smt::Term;

CSymExecutor::CSymExecutor(const CProgram &Program, CAstContext &Ctx,
                           DiagnosticEngine &Diags, smt::TermArena &Terms,
                           smt::ISolver &Solver, CSymOptions Opts)
    : Program(Program), Ctx(Ctx), Sema(Program, Ctx, Diags), Diags(Diags),
      Terms(Terms), Solver(Solver),
      PathChecker(Solver, Opts.IncrementalSolver, Solver.options().Metrics),
      Opts(Opts) {
  Objects.push_back({nullptr, "<none>"}); // slot 0 = NoLoc
}

LocId CSymExecutor::newObject(const CType *Ty, std::string Name) {
  Objects.push_back({Ty, std::move(Name)});
  return (LocId)(Objects.size() - 1);
}

LocId CSymExecutor::globalLoc(const std::string &Name) {
  auto It = GlobalLocs.find(Name);
  if (It != GlobalLocs.end())
    return It->second;
  const CGlobalDecl *G = Program.findGlobal(Name);
  assert(G && "globalLoc() for unknown global");
  LocId Loc = newObject(G->type(), Name);
  GlobalLocs[Name] = Loc;
  return Loc;
}

const CType *CSymExecutor::cellType(LocId Loc,
                                    const std::string &Field) const {
  const CType *Ty = Objects[Loc].Ty;
  std::string Rest = Field;
  while (Ty && !Rest.empty()) {
    size_t Dot = Rest.find('.');
    std::string Head = Rest.substr(0, Dot);
    Rest = Dot == std::string::npos ? "" : Rest.substr(Dot + 1);
    if (!Ty->isStruct())
      return nullptr;
    const CStructDecl::Field *F = Ty->structDecl()->findField(Head);
    if (!F)
      return nullptr;
    Ty = F->Ty;
  }
  return Ty;
}

bool CSymExecutor::feasible(const CSymState &State) {
  if (State.Path->kind() == smt::TermKind::BoolConst)
    return State.Path->value() != 0;
  return PathChecker.checkPath(State.PC, State.Path) !=
         smt::SolveResult::Unsat;
}

bool CSymExecutor::feasibleWith(const CSymState &State, const Term *Extra) {
  const Term *Whole = Terms.andTerm(State.Path, Extra);
  if (Whole->kind() == smt::TermKind::BoolConst)
    return Whole->value() != 0;
  return PathChecker.checkPathWith(State.PC, State.Path, Extra) !=
         smt::SolveResult::Unsat;
}

void CSymExecutor::warn(SourceLoc Loc, const std::string &Message,
                        const CSymState *State, const Term *WitnessCond) {
  std::string Key = Loc.str() + "|" + Message;
  if (!EmittedWarnings.insert(Key).second)
    return;
  ++WarningsThisRun;
  size_t Idx = Diags.report(DiagKind::Warning, Loc, Message);
  if (Opts.Prov && State) {
    auto Payload = std::make_shared<prov::DiagProvenance>();
    prov::WitnessPath W;
    W.Steps = State->Trail;
    const Term *Cond = WitnessCond ? WitnessCond : State->Path;
    // Renumber variables in first-occurrence order: the raw arena indices
    // depend on how many fresh terms this worker had already allocated,
    // which varies with the parallel schedule, and the rendered condition
    // must be byte-identical across --jobs and replay.
    W.PathCondition = smt::normalizedStr(Cond);
    smt::SmtModel Model;
    std::string DecidedBy;
    if (Solver.checkSatDecided(Cond, &Model, DecidedBy) ==
        smt::SolveResult::Sat) {
      for (auto &[Name, Value] : smt::modelBindings(Terms, Model))
        W.Model.push_back({Name, Value});
      W.ModelComplete = Model.Complete;
    }
    W.DecidedBy = std::move(DecidedBy);
    Payload->Witness = std::move(W);
    Diags.attachProvenance(Idx, std::move(Payload));
    Opts.Prov->countWitness();
  }
}

CScope CSymExecutor::scopeOf(const CSymState &State,
                             const Frame &Frame) const {
  CScope Scope;
  Scope.Func = Frame.Func;
  Scope.Locals = State.LocalTypes;
  return Scope;
}

const CType *CSymExecutor::typeOf(const CExpr *E, const CSymState &State,
                                  const Frame &Frame) {
  return Sema.typeOf(E, scopeOf(State, Frame));
}

CSymValue CSymExecutor::seededPointer(const CType *PtrTy, NullSeed Seed,
                                      const std::string &Name) {
  assert(PtrTy->isPointer() && "seededPointer() needs a pointer type");
  const CType *Pointee = PtrTy->pointee();
  if (Pointee->isFunc())
    return CSymValue::pointerTo(Terms, PtrTarget::unknownFn());
  // void* pointees become int cells (the paper's executor is untyped at
  // this level; ours needs some object type).
  if (Pointee->isVoid())
    Pointee = Ctx.intType();
  LocId Obj = newObject(Pointee, Name + "->");
  if (Seed == NullSeed::Nonnull)
    return CSymValue::pointerTo(Terms, PtrTarget::object(Obj));
  // (alpha ? loc : 0) — Section 4.1.
  const Term *Alpha = Terms.freshBoolVar(Name + "_nonnull");
  return CSymValue::pointer({{Alpha, PtrTarget::object(Obj)},
                             {Terms.notTerm(Alpha), PtrTarget::null()}});
}

CSymValue CSymExecutor::lazyInit(const CType *Ty, const std::string &Name) {
  if (!Ty)
    return CSymValue::scalar(Terms.freshIntVar(Name));
  if (Ty->isPointer()) {
    NullSeed Seed = NullSeed::MayBeNull;
    if (Ty->qualifier() == QualAnnot::Nonnull)
      Seed = NullSeed::Nonnull;
    else if (Ty->qualifier() == QualAnnot::None && !Opts.ParamsMayBeNull)
      Seed = NullSeed::Nonnull;
    return seededPointer(Ty, Seed, Name);
  }
  // Scalars (and, degenerately, whole structs read as values).
  return CSymValue::scalar(Terms.freshIntVar(Name));
}

CSymValue CSymExecutor::readCell(CSymState &State, LocId Loc,
                                 const std::string &Field) {
  CellKey Key{Loc, Field};
  if (const CSymValue *V = State.Store.get(Key))
    return *V;
  std::string Name = Objects[Loc].Name;
  if (!Field.empty())
    Name += "." + Field;
  CSymValue Init = lazyInit(cellType(Loc, Field), Name);
  State.Store.set(Key, Init);
  return Init;
}

void CSymExecutor::writeCells(CSymState &State,
                              const std::vector<LVal> &Cells,
                              const CSymValue &Value) {
  for (const LVal &Cell : Cells) {
    CellKey Key{Cell.Loc, Cell.Field};
    if (Cell.Guard->kind() == smt::TermKind::BoolConst &&
        Cell.Guard->value()) {
      // Strong update.
      State.Store.set(Key, Value);
      continue;
    }
    // Morris's general axiom of assignment: conditional update of every
    // possibly-aliased cell.
    CSymValue Old = readCell(State, Cell.Loc, Cell.Field);
    if (Old.kind() != Value.kind()) {
      // Type confusion through a wild pointer; overwrite outright under
      // the guard by preferring the new value.
      State.Store.set(Key, Value);
      continue;
    }
    State.Store.set(Key, CSymValue::ite(Terms, Cell.Guard, Value, Old));
  }
}

const Term *CSymExecutor::truthTerm(const CSymValue &V) {
  if (V.isPtr())
    return V.nonNullGuard(Terms);
  const Term *T = V.scalarTerm();
  if (T->isBool())
    return T;
  return Terms.notTerm(Terms.eqInt(T, Terms.intConst(0)));
}

const Term *CSymExecutor::intTerm(const CSymValue &V) {
  if (V.isPtr())
    // Pointers used as integers: only their nullness is observable.
    return Terms.iteInt(V.nonNullGuard(Terms), Terms.freshIntVar("ptrint"),
                        Terms.intConst(0));
  const Term *T = V.scalarTerm();
  if (T->isBool())
    return Terms.iteInt(T, Terms.intConst(1), Terms.intConst(0));
  return T;
}

// === lvalue resolution ======================================================

std::vector<CSymExecutor::LResolved>
CSymExecutor::resolveLValue(const CExpr *E, CSymState State,
                            const Frame &Frame) {
  switch (E->kind()) {
  case CExprKind::Ident: {
    const auto *Id = cast<CIdent>(E);
    LocId Loc = NoLoc;
    auto It = State.Locals.find(Id->name());
    if (It != State.Locals.end())
      Loc = It->second;
    else if (Program.findGlobal(Id->name()))
      Loc = globalLoc(Id->name());
    if (Loc == NoLoc) {
      warn(E->loc(), "unknown variable '" + Id->name() + "'");
      return {};
    }
    return {{std::move(State), {{Terms.trueTerm(), Loc, ""}}}};
  }
  case CExprKind::Unary: {
    const auto *U = cast<CUnary>(E);
    if (U->op() != CUnaryOp::Deref)
      break;
    std::vector<LResolved> Out;
    for (Flow &F : evalExpr(U->sub(), std::move(State), Frame)) {
      if (!F.Value.isPtr()) {
        warn(E->loc(), "dereference of a non-pointer value");
        continue;
      }
      // Null-dereference check (the executor "reports an error if 0 is
      // ever dereferenced").
      if (Opts.CheckDereferences) {
        ++Statistics.NullChecks;
        const Term *NullG = F.Value.nullGuard(Terms);
        if (feasibleWith(F.State, NullG))
          warn(E->loc(), "possible null dereference", &F.State,
               Terms.andTerm(F.State.Path, NullG));
      }
      // Continue under the assumption the dereference survived.
      LResolved R;
      R.State = std::move(F.State);
      extendPath(R.State, F.Value.nonNullGuard(Terms));
      if (!feasible(R.State))
        continue; // definitely null: this path dies here
      for (const PtrCase &C : F.Value.cases()) {
        if (C.Target.K != PtrTarget::Kind::Object)
          continue;
        R.Cells.push_back({C.Guard, C.Target.Loc, C.Target.Field});
      }
      Out.push_back(std::move(R));
    }
    return Out;
  }
  case CExprKind::Member: {
    const auto *M = cast<CMember>(E);
    if (!M->isArrow()) {
      // base.field: extend the base cells' field paths.
      std::vector<LResolved> Out = resolveLValue(M->base(), std::move(State),
                                                 Frame);
      for (LResolved &R : Out)
        for (LVal &Cell : R.Cells)
          Cell.Field = Cell.Field.empty() ? M->field()
                                          : Cell.Field + "." + M->field();
      return Out;
    }
    // base->field: like *base, then select the field.
    std::vector<LResolved> Out;
    for (Flow &F : evalExpr(M->base(), std::move(State), Frame)) {
      if (!F.Value.isPtr()) {
        warn(E->loc(), "'->' on a non-pointer value");
        continue;
      }
      if (Opts.CheckDereferences) {
        ++Statistics.NullChecks;
        const Term *NullG = F.Value.nullGuard(Terms);
        if (feasibleWith(F.State, NullG))
          warn(E->loc(), "possible null dereference", &F.State,
               Terms.andTerm(F.State.Path, NullG));
      }
      LResolved R;
      R.State = std::move(F.State);
      extendPath(R.State, F.Value.nonNullGuard(Terms));
      if (!feasible(R.State))
        continue;
      for (const PtrCase &C : F.Value.cases()) {
        if (C.Target.K != PtrTarget::Kind::Object)
          continue;
        std::string Field = C.Target.Field.empty()
                                ? M->field()
                                : C.Target.Field + "." + M->field();
        R.Cells.push_back({C.Guard, C.Target.Loc, Field});
      }
      Out.push_back(std::move(R));
    }
    return Out;
  }
  default:
    break;
  }
  warn(E->loc(), "expression is not an lvalue");
  return {};
}

// === expressions =============================================================

std::vector<CSymExecutor::Flow>
CSymExecutor::evalExpr(const CExpr *E, CSymState State, const Frame &Frame) {
  switch (E->kind()) {
  case CExprKind::IntLit:
    return {{std::move(State),
             CSymValue::scalar(
                 Terms.intConst(cast<CIntLit>(E)->value()))}};
  case CExprKind::SizeOf:
    // A nonzero size constant; the exact value is immaterial here.
    return {{std::move(State), CSymValue::scalar(Terms.intConst(8))}};
  case CExprKind::StrLit: {
    LocId Obj = newObject(Ctx.charType(), "<string>");
    return {{std::move(State),
             CSymValue::pointerTo(Terms, PtrTarget::object(Obj))}};
  }
  case CExprKind::NullLit:
    return {{std::move(State), CSymValue::nullPointer(Terms)}};
  case CExprKind::Ident: {
    const auto *Id = cast<CIdent>(E);
    if (!State.Locals.count(Id->name()) &&
        !Program.findGlobal(Id->name()))
      if (const CFuncDecl *F = Program.findFunc(Id->name()))
        return {{std::move(State),
                 CSymValue::pointerTo(Terms, PtrTarget::function(F))}};
    std::vector<Flow> Out;
    for (LResolved &R : resolveLValue(E, std::move(State), Frame)) {
      if (R.Cells.empty())
        continue;
      CSymValue V = readCell(R.State, R.Cells[0].Loc, R.Cells[0].Field);
      Out.push_back({std::move(R.State), std::move(V)});
    }
    return Out;
  }
  case CExprKind::Unary: {
    const auto *U = cast<CUnary>(E);
    switch (U->op()) {
    case CUnaryOp::Deref: {
      std::vector<Flow> Out;
      for (Flow &F : evalExpr(U->sub(), std::move(State), Frame)) {
        // Functions decay: *f is f for function-pointer values.
        if (F.Value.isPtr()) {
          bool IsFnPtr = false;
          for (const PtrCase &C : F.Value.cases())
            if (C.Target.K == PtrTarget::Kind::Function ||
                C.Target.K == PtrTarget::Kind::UnknownFn)
              IsFnPtr = true;
          if (IsFnPtr) {
            Out.push_back(std::move(F));
            continue;
          }
        }
        if (!F.Value.isPtr()) {
          warn(E->loc(), "dereference of a non-pointer value");
          continue;
        }
        // Reading through a data pointer: null check, then merge the
        // possible cells' contents.
        if (Opts.CheckDereferences) {
          ++Statistics.NullChecks;
          const Term *NullG = F.Value.nullGuard(Terms);
          if (feasibleWith(F.State, NullG))
            warn(E->loc(), "possible null dereference", &F.State,
                 Terms.andTerm(F.State.Path, NullG));
        }
        CSymState S = std::move(F.State);
        extendPath(S, F.Value.nonNullGuard(Terms));
        if (!feasible(S))
          continue;
        CSymValue Acc;
        bool First = true;
        for (const PtrCase &C : F.Value.cases()) {
          if (C.Target.K != PtrTarget::Kind::Object)
            continue;
          CSymValue Next = readCell(S, C.Target.Loc, C.Target.Field);
          if (First) {
            Acc = std::move(Next);
            First = false;
          } else if (Next.kind() == Acc.kind()) {
            Acc = CSymValue::ite(Terms, C.Guard, Next, Acc);
          }
        }
        if (First)
          continue; // no object target: nothing to read
        Out.push_back({std::move(S), std::move(Acc)});
      }
      return Out;
    }
    case CUnaryOp::AddrOf: {
      std::vector<Flow> Out;
      for (LResolved &R :
           resolveLValue(U->sub(), std::move(State), Frame)) {
        std::vector<PtrCase> Cases;
        for (const LVal &Cell : R.Cells)
          Cases.push_back(
              {Cell.Guard, PtrTarget::object(Cell.Loc, Cell.Field)});
        if (Cases.empty())
          continue;
        Out.push_back({std::move(R.State), CSymValue::pointer(Cases)});
      }
      return Out;
    }
    case CUnaryOp::Not: {
      std::vector<Flow> Out;
      for (Flow &F : evalExpr(U->sub(), std::move(State), Frame)) {
        const Term *B = Terms.notTerm(truthTerm(F.Value));
        Out.push_back({std::move(F.State), CSymValue::scalar(B)});
      }
      return Out;
    }
    case CUnaryOp::Neg: {
      std::vector<Flow> Out;
      for (Flow &F : evalExpr(U->sub(), std::move(State), Frame))
        Out.push_back({std::move(F.State),
                       CSymValue::scalar(Terms.neg(intTerm(F.Value)))});
      return Out;
    }
    }
    return {};
  }
  case CExprKind::Binary: {
    const auto *B = cast<CBinary>(E);
    std::vector<Flow> Out;
    for (Flow &L : evalExpr(B->lhs(), std::move(State), Frame)) {
      for (Flow &R : evalExpr(B->rhs(), L.State, Frame)) {
        CSymValue V = evalBinaryValues(B->op(), L.Value, R.Value);
        Out.push_back({std::move(R.State), std::move(V)});
      }
    }
    return Out;
  }
  case CExprKind::Assign: {
    const auto *A = cast<CAssign>(E);
    std::vector<Flow> Out;
    for (LResolved &R :
         resolveLValue(A->target(), std::move(State), Frame)) {
      for (Flow &V : evalExpr(A->value(), std::move(R.State), Frame)) {
        writeCells(V.State, R.Cells, V.Value);
        Out.push_back({std::move(V.State), V.Value});
      }
    }
    return Out;
  }
  case CExprKind::Call:
    return evalCall(cast<CCall>(E), std::move(State), Frame);
  case CExprKind::Member: {
    std::vector<Flow> Out;
    for (LResolved &R : resolveLValue(E, std::move(State), Frame)) {
      if (R.Cells.empty())
        continue;
      CSymValue Acc = readCell(R.State, R.Cells[0].Loc, R.Cells[0].Field);
      for (size_t I = 1; I != R.Cells.size(); ++I) {
        CSymValue Next =
            readCell(R.State, R.Cells[I].Loc, R.Cells[I].Field);
        if (Next.kind() == Acc.kind())
          Acc = CSymValue::ite(Terms, R.Cells[I].Guard, Next, Acc);
      }
      Out.push_back({std::move(R.State), std::move(Acc)});
    }
    return Out;
  }
  case CExprKind::Cast: {
    const auto *C = cast<CCast>(E);
    // (T*)malloc(...): allocate an object of the cast's pointee type.
    if (const auto *Call = dyn_cast<CCall>(C->sub()))
      if (const auto *Id = dyn_cast<CIdent>(Call->callee()))
        if (Id->name() == "malloc" && !Program.findFunc("malloc") &&
            C->target()->isPointer()) {
          const CType *Pointee = C->target()->pointee();
          if (Pointee->isVoid())
            Pointee = Ctx.intType();
          LocId Obj = newObject(Pointee, "malloc@" + E->loc().str());
          return {{std::move(State),
                   CSymValue::pointerTo(Terms, PtrTarget::object(Obj))}};
        }
    return evalExpr(C->sub(), std::move(State), Frame);
  }
  }
  return {};
}

CSymValue CSymExecutor::evalBinaryValues(CBinaryOp Op, const CSymValue &L,
                                         const CSymValue &R) {
  // Pointer comparisons.
  if ((L.isPtr() || R.isPtr()) &&
      (Op == CBinaryOp::Eq || Op == CBinaryOp::Ne)) {
    const Term *EqG = pointerEqGuard(L, R);
    return CSymValue::scalar(Op == CBinaryOp::Eq ? EqG
                                                 : Terms.notTerm(EqG));
  }
  // Pointer arithmetic keeps the pointer (offsets are not modeled).
  if (L.isPtr() && (Op == CBinaryOp::Add || Op == CBinaryOp::Sub))
    return L;
  if (R.isPtr() && Op == CBinaryOp::Add)
    return R;

  switch (Op) {
  case CBinaryOp::Add:
    return CSymValue::scalar(Terms.add(intTerm(L), intTerm(R)));
  case CBinaryOp::Sub:
    return CSymValue::scalar(Terms.sub(intTerm(L), intTerm(R)));
  case CBinaryOp::Eq:
    return CSymValue::scalar(Terms.eqInt(intTerm(L), intTerm(R)));
  case CBinaryOp::Ne:
    return CSymValue::scalar(
        Terms.notTerm(Terms.eqInt(intTerm(L), intTerm(R))));
  case CBinaryOp::Lt:
    return CSymValue::scalar(Terms.lt(intTerm(L), intTerm(R)));
  case CBinaryOp::Gt:
    return CSymValue::scalar(Terms.lt(intTerm(R), intTerm(L)));
  case CBinaryOp::Le:
    return CSymValue::scalar(Terms.le(intTerm(L), intTerm(R)));
  case CBinaryOp::Ge:
    return CSymValue::scalar(Terms.le(intTerm(R), intTerm(L)));
  case CBinaryOp::LAnd:
    // Both operands were evaluated (side effects of the right-hand side
    // are not short-circuited — a documented simplification).
    return CSymValue::scalar(Terms.andTerm(truthTerm(L), truthTerm(R)));
  case CBinaryOp::LOr:
    return CSymValue::scalar(Terms.orTerm(truthTerm(L), truthTerm(R)));
  }
  return CSymValue::scalar(Terms.intConst(0));
}

const Term *CSymExecutor::pointerEqGuard(const CSymValue &L,
                                         const CSymValue &R) {
  // Scalar zero against a pointer: a null test.
  auto IsZero = [](const CSymValue &V) {
    return V.isScalar() && V.scalarTerm()->kind() == smt::TermKind::IntConst &&
           V.scalarTerm()->value() == 0;
  };
  if (L.isPtr() && IsZero(R))
    return L.nullGuard(Terms);
  if (R.isPtr() && IsZero(L))
    return R.nullGuard(Terms);
  if (!L.isPtr() || !R.isPtr())
    return Terms.freshBoolVar("ptrcmp");

  const Term *EqG = Terms.falseTerm();
  for (const PtrCase &A : L.cases())
    for (const PtrCase &B : R.cases()) {
      const Term *Both = Terms.andTerm(A.Guard, B.Guard);
      if (A.Target.K == PtrTarget::Kind::UnknownFn ||
          B.Target.K == PtrTarget::Kind::UnknownFn) {
        EqG = Terms.orTerm(EqG,
                           Terms.andTerm(Both, Terms.freshBoolVar("ucmp")));
        continue;
      }
      if (A.Target == B.Target)
        EqG = Terms.orTerm(EqG, Both);
    }
  return EqG;
}

// === calls ===================================================================

std::vector<CSymExecutor::Flow>
CSymExecutor::evalCall(const CCall *Call, CSymState State,
                       const Frame &Frame) {
  // Bare malloc (no cast): an int-typed object.
  if (const auto *Id = dyn_cast<CIdent>(Call->callee()))
    if (Id->name() == "malloc" && !Program.findFunc("malloc")) {
      LocId Obj = newObject(Ctx.intType(), "malloc@" + Call->loc().str());
      return {{std::move(State),
               CSymValue::pointerTo(Terms, PtrTarget::object(Obj))}};
    }

  // Evaluate the arguments left to right, threading states.
  std::vector<std::pair<CSymState, std::vector<CSymValue>>> ArgStates;
  ArgStates.emplace_back(std::move(State), std::vector<CSymValue>());
  for (const CExpr *Arg : Call->args()) {
    std::vector<std::pair<CSymState, std::vector<CSymValue>>> Next;
    for (auto &[S, Vals] : ArgStates)
      for (Flow &F : evalExpr(Arg, std::move(S), Frame)) {
        std::vector<CSymValue> Extended = Vals;
        Extended.push_back(F.Value);
        Next.emplace_back(std::move(F.State), std::move(Extended));
      }
    ArgStates = std::move(Next);
  }

  std::vector<Flow> Out;
  const CFuncDecl *Direct = Sema.directCallee(Call);

  for (auto &[S, Args] : ArgStates) {
    if (Direct) {
      dispatchCall(Call, Direct, Args, std::move(S), Frame, Out);
      continue;
    }
    // Indirect call: evaluate the callee pointer and fork per target.
    for (Flow &F : evalExpr(Call->callee(), std::move(S), Frame)) {
      if (!F.Value.isPtr()) {
        warn(Call->loc(), "call through a non-pointer value");
        continue;
      }
      bool AnyTarget = false;
      for (const PtrCase &C : F.Value.cases()) {
        if (!feasibleWith(F.State, C.Guard))
          continue;
        CSymState Branch = F.State;
        extendPath(Branch, C.Guard);
        switch (C.Target.K) {
        case PtrTarget::Kind::Function:
          AnyTarget = true;
          dispatchCall(Call, C.Target.Fn, Args, std::move(Branch), Frame,
                       Out);
          break;
        case PtrTarget::Kind::UnknownFn: {
          // Section 4.5, Case 4: "our symbolic executor does not support
          // calling symbolic function pointers". Warn and model the call
          // conservatively.
          AnyTarget = true;
          warn(Call->loc(),
               "call through unknown function pointer cannot be "
               "executed symbolically; consider MIX(typed)",
               &Branch);
          Flow Conservative = externCall(Call, nullptr, Args,
                                         std::move(Branch));
          Out.push_back(std::move(Conservative));
          break;
        }
        case PtrTarget::Kind::Null:
          warn(Call->loc(), "possible call through null function pointer",
               &Branch);
          break;
        case PtrTarget::Kind::Object:
          break;
        }
      }
      if (!AnyTarget)
        warn(Call->loc(), "indirect call has no callable target");
    }
  }
  return Out;
}

void CSymExecutor::dispatchCall(const CCall *Call, const CFuncDecl *Callee,
                                const std::vector<CSymValue> &Args,
                                CSymState State, const Frame &Frame,
                                std::vector<Flow> &Out) {
  // MIXY's frontier: MIX(typed) functions are modeled by the type system.
  if (Hook && Callee->mixAnnot() == MixAnnot::Typed) {
    ++Statistics.TypedCalls;
    CSymValue Ret;
    if (Hook->callTypedFunction(*this, State, Call, Callee, Args, Ret)) {
      Out.push_back({std::move(State), std::move(Ret)});
      return;
    }
  }

  // Nonnull annotations on parameters are checked at the call even when
  // the body is not executed (the sysutil_free(nonnull) pattern).
  if (Opts.CheckNonnullArguments) {
    for (size_t I = 0; I != Args.size() && I != Callee->params().size();
         ++I) {
      const CType *ParamTy = Callee->params()[I].Ty;
      if (!ParamTy->isPointer() ||
          ParamTy->qualifier() != QualAnnot::Nonnull || !Args[I].isPtr())
        continue;
      ++Statistics.NullChecks;
      const Term *NullG = Args[I].nullGuard(Terms);
      const Term *NullPath = Terms.andTerm(State.Path, NullG);
      if (feasibleWith(State, NullG))
        warn(Call->loc(),
             "possibly-null argument passed to nonnull "
             "parameter '" +
                 Callee->params()[I].Name + "' of " + Callee->name(),
             &State, NullPath);
    }
  }

  if (!Callee->isDefined() || Frame.Depth >= Opts.MaxCallDepth) {
    if (Callee->isDefined())
      IncompleteThisRun = true; // depth budget truncated the inlining
    Out.push_back(externCall(Call, Callee, Args, std::move(State)));
    return;
  }

  ++Statistics.CallsInlined;
  for (Flow &F : inlineCall(Callee, Args, std::move(State),
                            Frame.Depth + 1))
    Out.push_back(std::move(F));
}

std::vector<CSymExecutor::Flow>
CSymExecutor::inlineCall(const CFuncDecl *F,
                         const std::vector<CSymValue> &Args, CSymState State,
                         unsigned Depth) {
  // Save the caller's local bindings; the callee gets fresh ones.
  std::map<std::string, LocId> CallerLocals = std::move(State.Locals);
  std::map<std::string, const CType *> CallerTypes =
      std::move(State.LocalTypes);
  State.Locals.clear();
  State.LocalTypes.clear();

  Frame Callee;
  Callee.Func = F;
  Callee.Depth = Depth;

  for (size_t I = 0; I != F->params().size(); ++I) {
    const auto &P = F->params()[I];
    LocId Loc = newObject(P.Ty, F->name() + "::" + P.Name);
    State.Locals[P.Name] = Loc;
    State.LocalTypes[P.Name] = P.Ty;
    if (I < Args.size())
      State.Store.set({Loc, ""}, Args[I]);
  }

  std::vector<Flow> Out;
  for (CSymState &S : runBody(F, std::move(State), Callee)) {
    CSymValue Ret;
    if (S.Returned)
      Ret = std::move(S.RetValue);
    else if (F->returnType()->isPointer())
      Ret = CSymValue::nullPointer(Terms);
    else
      Ret = CSymValue::scalar(Terms.intConst(0));
    S.Returned = false;
    S.RetValue = CSymValue();
    S.Locals = CallerLocals;
    S.LocalTypes = CallerTypes;
    Out.push_back({std::move(S), std::move(Ret)});
  }
  return Out;
}

CSymExecutor::Flow CSymExecutor::externCall(const CCall *Call,
                                            const CFuncDecl *Callee,
                                            const std::vector<CSymValue> &,
                                            CSymState State) {
  // Conservative model of an unknown body: no memory effects, a fresh
  // result shaped by the declared return type and its annotations.
  const CType *RetTy = Callee ? Callee->returnType() : nullptr;
  std::string Name = Callee ? Callee->name() + "()" : "<indirect>()";
  CSymValue Ret = RetTy && RetTy->isPointer()
                      ? lazyInit(RetTy, Name)
                      : CSymValue::scalar(Terms.freshIntVar(Name));
  (void)Call;
  return {std::move(State), std::move(Ret)};
}

// === statements ==============================================================

std::vector<CSymState> CSymExecutor::runBody(const CFuncDecl *F,
                                             CSymState State,
                                             const Frame &Frame) {
  if (Engine) {
    std::vector<CSymState> Out;
    if (Engine->runBody(F, State, Frame.Depth, Out))
      return Out;
  }
  return execStmt(F->body(), std::move(State), Frame);
}

std::vector<CSymState> CSymExecutor::execStmt(const CStmt *S, CSymState State,
                                              const Frame &Frame) {
  if (State.Returned)
    return {std::move(State)};
  if (PathsThisRun > Opts.MaxPaths) {
    IncompleteThisRun = true;
    return {std::move(State)};
  }

  switch (S->kind()) {
  case CStmtKind::Expr: {
    std::vector<CSymState> Out;
    for (Flow &F : evalExpr(cast<CExprStmt>(S)->expr(), std::move(State),
                            Frame))
      Out.push_back(std::move(F.State));
    return Out;
  }
  case CStmtKind::Decl: {
    const auto *D = cast<CDeclStmt>(S);
    LocId Loc = newObject(D->type(), Frame.Func->name() + "::" + D->name());
    State.Locals[D->name()] = Loc;
    State.LocalTypes[D->name()] = D->type();
    if (!D->init())
      return {std::move(State)};
    std::vector<CSymState> Out;
    for (Flow &F : evalExpr(D->init(), std::move(State), Frame)) {
      F.State.Store.set({Loc, ""}, F.Value);
      Out.push_back(std::move(F.State));
    }
    return Out;
  }
  case CStmtKind::If: {
    const auto *I = cast<CIfStmt>(S);
    std::vector<CSymState> Out;
    for (Flow &F : evalExpr(I->cond(), std::move(State), Frame)) {
      const Term *Cond = truthTerm(F.Value);

      if (feasibleWith(F.State, Cond)) {
        ++PathsThisRun;
        ++Statistics.PathsExplored;
        CSymState Then = F.State;
        extendPath(Then, Cond);
        if (Opts.Prov)
          Then.Trail.push_back({I->cond()->loc(), "condition true"});
        for (CSymState &R : execStmt(I->thenStmt(), std::move(Then), Frame))
          Out.push_back(std::move(R));
      } else {
        ++Statistics.ForksPruned;
      }

      const Term *NotCond = Terms.notTerm(Cond);
      if (feasibleWith(F.State, NotCond)) {
        ++PathsThisRun;
        ++Statistics.PathsExplored;
        CSymState Else = std::move(F.State);
        extendPath(Else, NotCond);
        if (Opts.Prov)
          Else.Trail.push_back({I->cond()->loc(), "condition false"});
        if (I->elseStmt()) {
          for (CSymState &R :
               execStmt(I->elseStmt(), std::move(Else), Frame))
            Out.push_back(std::move(R));
        } else {
          Out.push_back(std::move(Else));
        }
      } else {
        ++Statistics.ForksPruned;
      }
    }
    return Out;
  }
  case CStmtKind::While:
    return execWhile(cast<CWhileStmt>(S), std::move(State), Frame);
  case CStmtKind::Return: {
    const auto *R = cast<CReturnStmt>(S);
    if (!R->value()) {
      State.Returned = true;
      State.RetValue = CSymValue::scalar(Terms.intConst(0));
      return {std::move(State)};
    }
    std::vector<CSymState> Out;
    for (Flow &F : evalExpr(R->value(), std::move(State), Frame)) {
      F.State.Returned = true;
      F.State.RetValue = std::move(F.Value);
      Out.push_back(std::move(F.State));
    }
    return Out;
  }
  case CStmtKind::Block: {
    std::vector<CSymState> Active;
    Active.push_back(std::move(State));
    for (const CStmt *Sub : cast<CBlockStmt>(S)->stmts()) {
      std::vector<CSymState> Next;
      for (CSymState &A : Active)
        for (CSymState &R : execStmt(Sub, std::move(A), Frame))
          Next.push_back(std::move(R));
      Active = std::move(Next);
    }
    return Active;
  }
  }
  return {std::move(State)};
}

std::vector<CSymState> CSymExecutor::execWhile(const CWhileStmt *W,
                                               CSymState State,
                                               const Frame &Frame) {
  // Bounded unrolling: each round forks on the condition; paths that are
  // still looping after the bound are kept (without the exit constraint)
  // and the run is flagged incomplete.
  std::vector<CSymState> Active;
  Active.push_back(std::move(State));
  std::vector<CSymState> Exited;

  for (unsigned Round = 0; Round != Opts.LoopBound && !Active.empty();
       ++Round) {
    std::vector<CSymState> NextActive;
    for (CSymState &A : Active) {
      if (A.Returned) {
        Exited.push_back(std::move(A));
        continue;
      }
      for (Flow &F : evalExpr(W->cond(), std::move(A), Frame)) {
        const Term *Cond = truthTerm(F.Value);
        const Term *NotCond = Terms.notTerm(Cond);
        if (feasibleWith(F.State, NotCond)) {
          CSymState Exit = F.State;
          extendPath(Exit, NotCond);
          if (Opts.Prov)
            Exit.Trail.push_back({W->cond()->loc(), "loop exit"});
          Exited.push_back(std::move(Exit));
        }
        if (feasibleWith(F.State, Cond)) {
          CSymState Loop = std::move(F.State);
          extendPath(Loop, Cond);
          if (Opts.Prov)
            Loop.Trail.push_back({W->cond()->loc(), "loop iteration"});
          for (CSymState &R : execStmt(W->body(), std::move(Loop), Frame))
            NextActive.push_back(std::move(R));
        }
      }
    }
    Active = std::move(NextActive);
  }

  if (!Active.empty()) {
    IncompleteThisRun = true;
    for (CSymState &A : Active)
      Exited.push_back(std::move(A));
  }
  return Exited;
}

// === entry point =============================================================

CSymResult
CSymExecutor::runFunction(const CFuncDecl *F,
                          const std::vector<NullSeed> &ParamSeeds,
                          const std::map<std::string, NullSeed> &GlobalSeeds) {
  assert(F->isDefined() && "runFunction() on an extern declaration");
  WarningsThisRun = 0;
  IncompleteThisRun = false;
  PathsThisRun = 0;

  CSymResult Result;
  CSymState State;
  State.Path = Terms.trueTerm();

  // Seed pointer-typed globals from the typed calling context.
  for (const auto &[Name, Seed] : GlobalSeeds) {
    const CGlobalDecl *G = Program.findGlobal(Name);
    if (!G || !G->type()->isPointer())
      continue;
    State.Store.set({globalLoc(Name), ""},
                    seededPointer(G->type(), Seed, Name));
  }

  Frame Top;
  Top.Func = F;
  Top.Depth = 0;

  for (size_t I = 0; I != F->params().size(); ++I) {
    const auto &P = F->params()[I];
    LocId Loc = newObject(P.Ty, F->name() + "::" + P.Name);
    State.Locals[P.Name] = Loc;
    State.LocalTypes[P.Name] = P.Ty;
    Result.ParamLocs.push_back(Loc);

    if (P.Ty->isPointer()) {
      NullSeed Seed;
      if (I < ParamSeeds.size())
        Seed = ParamSeeds[I];
      else if (P.Ty->qualifier() == QualAnnot::Nonnull)
        Seed = NullSeed::Nonnull;
      else
        Seed = Opts.ParamsMayBeNull ? NullSeed::MayBeNull
                                    : NullSeed::Nonnull;
      CSymValue V = seededPointer(P.Ty, Seed, F->name() + "::" + P.Name);
      LocId Pointee = NoLoc;
      for (const PtrCase &C : V.cases())
        if (C.Target.K == PtrTarget::Kind::Object)
          Pointee = C.Target.Loc;
      Result.ParamPointeeLocs.push_back(Pointee);
      Result.ParamTerms.push_back(nullptr);
      State.Store.set({Loc, ""}, std::move(V));
    } else {
      Result.ParamPointeeLocs.push_back(NoLoc);
      const smt::Term *ParamTerm =
          Terms.freshIntVar(F->name() + "::" + P.Name);
      Result.ParamTerms.push_back(ParamTerm);
      State.Store.set({Loc, ""}, CSymValue::scalar(ParamTerm));
    }
  }

  for (CSymState &S : runBody(F, std::move(State), Top)) {
    CSymResult::PathOut P;
    P.Path = S.Path;
    P.Returned = S.Returned;
    if (S.Returned)
      P.Ret = std::move(S.RetValue);
    P.Store = std::move(S.Store);
    Result.Paths.push_back(std::move(P));
  }
  Result.Incomplete = IncompleteThisRun;
  Result.WarningCount = WarningsThisRun;
  return Result;
}

bool CSymExecutor::mayBeNull(const Term *Path, const CSymValue &Value) {
  if (!Value.isPtr())
    return false;
  const Term *NullG = Value.nullGuard(Terms);
  return !Solver.isDefinitelyUnsat(Terms.andTerm(Path, NullG));
}

std::optional<CSymValue>
CSymExecutor::finalCell(const CSymResult::PathOut &P, LocId Loc,
                        const std::string &Field) {
  const CSymValue *V = P.Store.get({Loc, Field});
  if (!V)
    return std::nullopt;
  return *V;
}
