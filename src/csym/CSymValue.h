//===--- CSymValue.h - Symbolic values and stores for mini-C ----*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Value and memory representation of the C symbolic executor (the Otter
/// substitute), following Section 4.2:
///
///  - memory is "a map from locations to separate arrays": a store maps
///    abstract locations (objects) and their fields to symbolic values;
///  - scalars are solver terms;
///  - pointers are guarded target lists — each case holds a boolean guard
///    term and a target (an object, null, a known function, or an unknown
///    function). Writes through multi-case pointers update every possible
///    target conditionally, which is exactly Morris's general axiom of
///    assignment ("aliasing between arrays is modeled using Morris's
///    general axiom of assignment");
///  - a null target case makes "may this be null?" a path-condition
///    query, mirroring the (alpha:bool) ? loc : 0 encoding of
///    Section 4.1.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_CSYM_CSYMVALUE_H
#define MIX_CSYM_CSYMVALUE_H

#include "cfront/CAst.h"
#include "solver/Term.h"

#include <map>
#include <string>
#include <vector>

namespace mix::c {

/// An abstract memory object id. 0 is invalid.
using LocId = unsigned;
constexpr LocId NoLoc = 0;

/// One possible referent of a pointer.
struct PtrTarget {
  enum class Kind {
    Null,      ///< The null pointer.
    Object,    ///< A cell within a memory object (Loc + Field; the empty
               ///< field designates the whole object).
    Function,  ///< A known function (Fn).
    UnknownFn, ///< A function pointer with unknown target (Section 4.5,
               ///< Case 4: calls through it cannot be executed).
  };
  Kind K = Kind::Null;
  LocId Loc = NoLoc;
  std::string Field;
  const CFuncDecl *Fn = nullptr;

  static PtrTarget null() { return PtrTarget(); }
  static PtrTarget object(LocId Loc, std::string Field = "") {
    PtrTarget T;
    T.K = Kind::Object;
    T.Loc = Loc;
    T.Field = std::move(Field);
    return T;
  }
  static PtrTarget function(const CFuncDecl *Fn) {
    PtrTarget T;
    T.K = Kind::Function;
    T.Fn = Fn;
    return T;
  }
  static PtrTarget unknownFn() {
    PtrTarget T;
    T.K = Kind::UnknownFn;
    return T;
  }

  bool operator==(const PtrTarget &O) const {
    return K == O.K && Loc == O.Loc && Field == O.Field && Fn == O.Fn;
  }
};

/// A guarded pointer case: when Guard holds, the pointer refers to Target.
struct PtrCase {
  const smt::Term *Guard;
  PtrTarget Target;
};

/// A symbolic mini-C value: a scalar term or a guarded pointer.
class CSymValue {
public:
  enum class Kind { Scalar, Ptr };

  CSymValue() = default;

  static CSymValue scalar(const smt::Term *T) {
    CSymValue V;
    V.K = Kind::Scalar;
    V.Term_ = T;
    return V;
  }
  static CSymValue pointer(std::vector<PtrCase> Cases) {
    CSymValue V;
    V.K = Kind::Ptr;
    V.Cases = std::move(Cases);
    return V;
  }
  /// A definite single-target pointer.
  static CSymValue pointerTo(smt::TermArena &A, PtrTarget Target) {
    return pointer({{A.trueTerm(), Target}});
  }
  /// The definite null pointer.
  static CSymValue nullPointer(smt::TermArena &A) {
    return pointerTo(A, PtrTarget::null());
  }

  Kind kind() const { return K; }
  bool isScalar() const { return K == Kind::Scalar; }
  bool isPtr() const { return K == Kind::Ptr; }

  const smt::Term *scalarTerm() const {
    assert(isScalar() && "scalarTerm() on pointer value");
    return Term_;
  }
  const std::vector<PtrCase> &cases() const {
    assert(isPtr() && "cases() on scalar value");
    return Cases;
  }

  /// The disjunction of guards under which this pointer is null.
  const smt::Term *nullGuard(smt::TermArena &A) const;
  /// The disjunction of guards under which this pointer is non-null.
  const smt::Term *nonNullGuard(smt::TermArena &A) const;

  /// Merges two values under a condition: Cond ? Then : Else. Values must
  /// have the same kind.
  static CSymValue ite(smt::TermArena &A, const smt::Term *Cond,
                       const CSymValue &Then, const CSymValue &Else);

  std::string str() const;

private:
  Kind K = Kind::Scalar;
  const smt::Term *Term_ = nullptr;
  std::vector<PtrCase> Cases;
};

/// A field within an object; scalar objects use the empty field name.
using CellKey = std::pair<LocId, std::string>;

/// The mutable memory of one execution path.
struct CStore {
  /// Cell contents; missing cells are lazily initialized on first read.
  std::map<CellKey, CSymValue> Cells;

  bool has(const CellKey &Key) const { return Cells.count(Key) != 0; }
  const CSymValue *get(const CellKey &Key) const {
    auto It = Cells.find(Key);
    return It == Cells.end() ? nullptr : &It->second;
  }
  void set(const CellKey &Key, CSymValue V) {
    Cells[Key] = std::move(V);
  }
  void clear() { Cells.clear(); }
};

} // namespace mix::c

#endif // MIX_CSYM_CSYMVALUE_H
