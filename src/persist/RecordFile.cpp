//===--- RecordFile.cpp - Checksummed on-disk record format -----------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "persist/RecordFile.h"

#include "support/Hash.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#define getpid _getpid
#else
#include <unistd.h>
#endif

using namespace mix::persist;

static const char Magic[8] = {'M', 'I', 'X', 'P', 'E', 'R', 'S', 'T'};

LoadStatus mix::persist::loadRecordFile(const std::string &Path,
                                        uint64_t Fingerprint,
                                        std::vector<std::string> &Records,
                                        std::string &Error) {
  Records.clear();
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return LoadStatus::Missing;
  std::ostringstream Raw;
  Raw << In.rdbuf();
  std::string Buf = Raw.str();

  ByteReader R(Buf);
  char Head[8];
  for (char &C : Head)
    C = (char)R.u8();
  if (!R.ok() || std::string(Head, 8) != std::string(Magic, 8)) {
    Error = "bad magic";
    return LoadStatus::Corrupt;
  }
  uint32_t Version = R.u32();
  if (!R.ok() || Version != FormatVersion) {
    Error = "format version " + std::to_string(Version) + " (expected " +
            std::to_string(FormatVersion) + ")";
    return LoadStatus::Corrupt;
  }
  uint64_t FileFp = R.u64();
  if (!R.ok()) {
    Error = "truncated header";
    return LoadStatus::Corrupt;
  }
  // A different fingerprint means the cache was written under different
  // analysis options: stale, not corrupt. Load as empty.
  if (FileFp != Fingerprint)
    return LoadStatus::Missing;

  while (!R.atEnd()) {
    std::string Payload = R.str();
    uint64_t Sum = R.u64();
    if (!R.ok()) {
      Records.clear();
      Error = "truncated record";
      return LoadStatus::Corrupt;
    }
    if (Sum != stableHash64(Payload)) {
      Records.clear();
      Error = "record checksum mismatch";
      return LoadStatus::Corrupt;
    }
    Records.push_back(std::move(Payload));
  }
  return LoadStatus::Ok;
}

bool mix::persist::saveRecordFile(const std::string &Path, uint64_t Fingerprint,
                                  const std::vector<std::string> &Records,
                                  std::string &Error) {
  ByteWriter W;
  for (char C : Magic)
    W.u8((uint8_t)C);
  W.u32(FormatVersion);
  W.u64(Fingerprint);
  for (const std::string &Payload : Records) {
    W.str(Payload);
    W.u64(stableHash64(Payload));
  }

  // Publish atomically: a concurrent reader sees either the old complete
  // file or the new one, never a partial write; racing writers resolve to
  // whoever renames last. The temp name must be unique per *writer*, not
  // per process: two threads sharing a pid-only suffix would write the
  // same temp file and the rename loser would fail spuriously.
  static std::atomic<unsigned> TmpSeq{0};
  std::string Tmp = Path + ".tmp." + std::to_string((unsigned long)::getpid()) +
                    "." + std::to_string(TmpSeq.fetch_add(1));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out) {
      Error = "cannot write '" + Tmp + "'";
      return false;
    }
    Out << W.bytes();
    if (!Out.good()) {
      Error = "short write to '" + Tmp + "'";
      Out.close();
      std::remove(Tmp.c_str());
      return false;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Error = "cannot rename '" + Tmp + "' to '" + Path + "'";
    std::remove(Tmp.c_str());
    return false;
  }
  return true;
}
