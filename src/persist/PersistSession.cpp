//===--- PersistSession.cpp - The persistent analysis cache -----------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "persist/PersistSession.h"

#include "persist/RecordFile.h"

#include <chrono>
#include <filesystem>

using namespace mix::persist;
using mix::smt::SolveResult;

// === SolverQueryStore ========================================================

SolverQueryStore::SolverQueryStore(obs::MetricsRegistry *Metrics) {
  if (Metrics) {
    CHits = Metrics->counter("persist.solver.hits");
    CMisses = Metrics->counter("persist.solver.misses");
    CStores = Metrics->counter("persist.solver.stores");
  }
}

bool SolverQueryStore::lookup(uint64_t Key, SolveResult &Out) {
  std::unique_lock<std::mutex> Lock(M);
  auto It = Map.find(Key);
  if (It == Map.end()) {
    Lock.unlock();
    CMisses.inc();
    return false;
  }
  Out = It->second == 0 ? SolveResult::Sat : SolveResult::Unsat;
  Lock.unlock();
  CHits.inc();
  return true;
}

void SolverQueryStore::store(uint64_t Key, SolveResult Result) {
  if (Result == SolveResult::Unknown)
    return; // resource-cap artifact, never a persistent fact
  {
    std::lock_guard<std::mutex> Lock(M);
    Map[Key] = Result == SolveResult::Sat ? 0 : 1;
  }
  CStores.inc();
}

size_t SolverQueryStore::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Map.size();
}

std::vector<std::string> SolverQueryStore::encode() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<std::string> Records;
  Records.reserve(Map.size());
  for (const auto &[Key, Verdict] : Map) {
    ByteWriter W;
    W.u64(Key).u8(Verdict);
    Records.push_back(W.take());
  }
  return Records;
}

bool SolverQueryStore::decode(const std::vector<std::string> &Records) {
  std::lock_guard<std::mutex> Lock(M);
  for (const std::string &Payload : Records) {
    ByteReader R(Payload);
    uint64_t Key = R.u64();
    uint8_t Verdict = R.u8();
    if (!R.ok() || !R.atEnd() || Verdict > 1) {
      Map.clear();
      return false;
    }
    Map[Key] = Verdict;
  }
  return true;
}

// === BlockSummaryStore =======================================================

BlockSummaryStore::BlockSummaryStore(obs::MetricsRegistry *Metrics) {
  if (Metrics) {
    CHits = Metrics->counter("persist.block.hits");
    CMisses = Metrics->counter("persist.block.misses");
    CStores = Metrics->counter("persist.block.stores");
  }
}

std::optional<std::string> BlockSummaryStore::lookup(uint64_t Key) {
  std::unique_lock<std::mutex> Lock(M);
  auto It = Map.find(Key);
  if (It == Map.end()) {
    Lock.unlock();
    CMisses.inc();
    return std::nullopt;
  }
  std::string Out = It->second;
  Lock.unlock();
  CHits.inc();
  return Out;
}

void BlockSummaryStore::store(uint64_t Key, std::string Payload) {
  {
    std::lock_guard<std::mutex> Lock(M);
    Map[Key] = std::move(Payload);
  }
  CStores.inc();
}

size_t BlockSummaryStore::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Map.size();
}

void BlockSummaryStore::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Map.clear();
}

std::vector<std::string> BlockSummaryStore::encode() const {
  std::lock_guard<std::mutex> Lock(M);
  std::vector<std::string> Records;
  Records.reserve(Map.size());
  for (const auto &[Key, Payload] : Map) {
    ByteWriter W;
    W.u64(Key).str(Payload);
    Records.push_back(W.take());
  }
  return Records;
}

bool BlockSummaryStore::decode(const std::vector<std::string> &Records) {
  std::lock_guard<std::mutex> Lock(M);
  for (const std::string &Rec : Records) {
    ByteReader R(Rec);
    uint64_t Key = R.u64();
    std::string Payload = R.str();
    if (!R.ok() || !R.atEnd()) {
      Map.clear();
      return false;
    }
    Map[Key] = std::move(Payload);
  }
  return true;
}

// === Manifest ================================================================

std::vector<std::string> Manifest::encode() const {
  std::vector<std::string> Records;
  Records.reserve(Funcs.size());
  for (const auto &[Name, F] : Funcs) {
    ByteWriter W;
    W.str(Name).u64(F.ContentHash).u64(F.ClosureHash);
    Records.push_back(W.take());
  }
  return Records;
}

bool Manifest::decode(const std::vector<std::string> &Records) {
  for (const std::string &Rec : Records) {
    ByteReader R(Rec);
    std::string Name = R.str();
    Func F;
    F.ContentHash = R.u64();
    F.ClosureHash = R.u64();
    if (!R.ok() || !R.atEnd()) {
      Funcs.clear();
      return false;
    }
    Funcs[Name] = F;
  }
  return true;
}

// === PersistSession ==========================================================

namespace {

/// Solver verdicts depend only on the formula (caps can only produce
/// Unknown, which is never stored), so the solver store's fingerprint is
/// a constant and both tools can share one file.
constexpr uint64_t SolverFingerprint = 0;

uint64_t nowUs() {
  return (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Reads the generation stamp from \p Dir; a missing or malformed stamp
/// reads as 0 (the pre-stamp world had exactly one writer per process
/// lifetime, which generation 0 models). Never degrades the session —
/// the stamp guards manifest replay, it is not itself cached data.
uint64_t readGeneration(const std::string &Dir) {
  std::vector<std::string> Records;
  std::string Error;
  if (loadRecordFile(Dir + "/generation.mixcache", /*Fingerprint=*/0, Records,
                     Error) != LoadStatus::Ok ||
      Records.size() != 1)
    return 0;
  ByteReader R(Records[0]);
  uint64_t Gen = R.u64();
  return R.ok() && R.atEnd() ? Gen : 0;
}

} // namespace

PersistSession::PersistSession(PersistOptions O)
    : Opts(std::move(O)), Solver(Opts.Metrics), Blocks(Opts.Metrics) {
  if (Opts.InMemory)
    return; // stores start empty and live purely in memory

  uint64_t Start = nowUs();

  std::error_code EC;
  std::filesystem::create_directories(Opts.Dir, EC);
  DirUsable = !EC && std::filesystem::is_directory(Opts.Dir);
  if (!DirUsable) {
    DegradedReason = "cannot create cache directory";
    if (Opts.Metrics)
      Opts.Metrics->counter("persist.degraded").inc();
    return;
  }

  // Each store loads independently; one corrupt file costs only that
  // store, but the degradation note mentions whichever failed first.
  auto LoadInto = [&](const std::string &File, uint64_t Fingerprint,
                      auto &&Decode) {
    std::vector<std::string> Records;
    std::string Error;
    LoadStatus S =
        loadRecordFile(Opts.Dir + "/" + File, Fingerprint, Records, Error);
    if (S == LoadStatus::Ok && !Decode(Records))
      S = LoadStatus::Corrupt, Error = "malformed record";
    if (S == LoadStatus::Corrupt) {
      if (DegradedReason.empty())
        DegradedReason = File + ": " + Error;
      if (Opts.Metrics)
        Opts.Metrics->counter("persist.degraded").inc();
    }
  };

  Gen = readGeneration(Opts.Dir);

  LoadInto("solver.mixcache", SolverFingerprint,
           [&](const std::vector<std::string> &R) { return Solver.decode(R); });
  if (Opts.Incremental) {
    LoadInto("blocks.mixcache", Opts.BlockFingerprint,
             [&](const std::vector<std::string> &R) {
               return Blocks.decode(R);
             });
    LoadInto("manifest.mixcache", Opts.BlockFingerprint,
             [&](const std::vector<std::string> &R) {
               return Previous.decode(R);
             });
  }

  if (Opts.Metrics)
    Opts.Metrics->histogram("persist.load_us").record(nowUs() - Start);
}

bool PersistSession::save(std::string *Error) {
  std::string Local;
  std::string &Err = Error ? *Error : Local;
  if (Opts.InMemory)
    return true; // nothing to publish; the warm state *is* the store
  if (!DirUsable) {
    Err = "cache directory unusable";
    return false;
  }
  uint64_t Start = nowUs();

  bool Ok = saveRecordFile(Opts.Dir + "/solver.mixcache", SolverFingerprint,
                           Solver.encode(), Err);
  if (Ok && Opts.Incremental) {
    Ok = saveRecordFile(Opts.Dir + "/blocks.mixcache", Opts.BlockFingerprint,
                        Blocks.encode(), Err);
    if (Ok)
      Ok = saveRecordFile(Opts.Dir + "/manifest.mixcache",
                          Opts.BlockFingerprint, Current.encode(), Err);
  }

  // The generation stamp publishes last, after every data file is in
  // place, so a concurrent reader that observes the new generation also
  // observes the new data. Writing it claims the directory for this
  // session: any other open session now reports externallyModified().
  if (Ok) {
    ByteWriter W;
    W.u64(Gen + 1);
    Ok = saveRecordFile(Opts.Dir + "/generation.mixcache", /*Fingerprint=*/0,
                        {W.take()}, Err);
    if (Ok)
      ++Gen;
  }

  if (Opts.Metrics)
    Opts.Metrics->histogram("persist.save_us").record(nowUs() - Start);
  return Ok;
}

bool PersistSession::externallyModified() const {
  if (Opts.InMemory || !DirUsable)
    return false;
  return readGeneration(Opts.Dir) != Gen;
}

void PersistSession::invalidateSummaries() {
  Blocks.clear();
  Previous.Funcs.clear();
  Current.Funcs.clear();
  if (Opts.Metrics)
    Opts.Metrics->counter("persist.invalidations").inc();
}
