//===--- RecordFile.h - Checksummed on-disk record format -------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The binary container every persistent store (src/persist/) writes:
///
///   header:  "MIXPERST" magic (8 bytes)
///            u32 format version
///            u64 store fingerprint (analysis-options digest)
///   records: u32 payload length, payload bytes, u64 stableHash64 checksum
///
/// All integers are little-endian regardless of host order (ByteWriter /
/// ByteReader below). The failure contract is strict: a bad magic, an
/// unsupported version, a truncated record, or a checksum mismatch
/// rejects the *whole* file — the caller degrades to a cold run, which is
/// always sound because everything persisted is a cache. A fingerprint
/// mismatch is not corruption (the user changed analysis options); it
/// loads as empty without complaint.
///
/// Writes go to a temporary sibling and are published with rename(), so a
/// concurrent reader only ever sees a complete file and concurrent
/// writers resolve to last-rename-wins.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_PERSIST_RECORDFILE_H
#define MIX_PERSIST_RECORDFILE_H

#include <cstdint>
#include <string>
#include <vector>

namespace mix::persist {

/// Bumped whenever any store's record encoding changes; skew degrades the
/// file to a cold load.
constexpr uint32_t FormatVersion = 3;

/// Serializes fixed little-endian layouts into a byte string.
class ByteWriter {
public:
  ByteWriter &u8(uint8_t V) {
    Buf.push_back((char)V);
    return *this;
  }
  ByteWriter &u16(uint16_t V) {
    u8((uint8_t)V);
    return u8((uint8_t)(V >> 8));
  }
  ByteWriter &u32(uint32_t V) {
    u16((uint16_t)V);
    return u16((uint16_t)(V >> 16));
  }
  ByteWriter &u64(uint64_t V) {
    u32((uint32_t)V);
    return u32((uint32_t)(V >> 32));
  }
  ByteWriter &boolean(bool V) { return u8(V ? 1 : 0); }
  ByteWriter &str(const std::string &S) {
    u32((uint32_t)S.size());
    Buf.append(S);
    return *this;
  }

  const std::string &bytes() const { return Buf; }
  std::string take() { return std::move(Buf); }

private:
  std::string Buf;
};

/// Deserializes ByteWriter layouts. Reads past the end set the error
/// flag and return zero values; callers check ok() once at the end
/// instead of guarding every read.
class ByteReader {
public:
  explicit ByteReader(const std::string &Buf) : Buf(Buf) {}

  uint8_t u8() {
    if (Pos >= Buf.size()) {
      Failed = true;
      return 0;
    }
    return (uint8_t)Buf[Pos++];
  }
  uint16_t u16() {
    uint16_t Lo = u8();
    return (uint16_t)(Lo | ((uint16_t)u8() << 8));
  }
  uint32_t u32() {
    uint32_t Lo = u16();
    return Lo | ((uint32_t)u16() << 16);
  }
  uint64_t u64() {
    uint64_t Lo = u32();
    return Lo | ((uint64_t)u32() << 32);
  }
  bool boolean() { return u8() != 0; }
  std::string str() {
    uint32_t N = u32();
    if (Buf.size() - Pos < N) {
      Failed = true;
      return std::string();
    }
    std::string S = Buf.substr(Pos, N);
    Pos += N;
    return S;
  }

  bool ok() const { return !Failed; }
  bool atEnd() const { return Pos == Buf.size(); }

private:
  const std::string &Buf;
  size_t Pos = 0;
  bool Failed = false;
};

/// Outcome of loading a record file.
enum class LoadStatus {
  Ok,      ///< header verified, records checksum-clean
  Missing, ///< no file (or a fingerprint mismatch): a normal cold start
  Corrupt, ///< magic/version/length/checksum anomaly: degrade with a note
};

/// Reads \p Path into \p Records (one byte-string payload each). On
/// Corrupt, \p Error describes the first anomaly and \p Records is left
/// empty.
LoadStatus loadRecordFile(const std::string &Path, uint64_t Fingerprint,
                          std::vector<std::string> &Records,
                          std::string &Error);

/// Writes \p Records to \p Path atomically (temporary file + rename).
/// Returns false with \p Error set when the directory or file cannot be
/// written.
bool saveRecordFile(const std::string &Path, uint64_t Fingerprint,
                    const std::vector<std::string> &Records,
                    std::string &Error);

} // namespace mix::persist

#endif // MIX_PERSIST_RECORDFILE_H
