//===--- PersistSession.h - The persistent analysis cache -------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk analysis cache behind --cache-dir (and --incremental), the
/// cross-run counterpart of the in-memory BlockCache of Section 4.3.
/// One PersistSession wraps one cache directory and owns three stores,
/// each a RecordFile on disk:
///
///  - SolverQueryStore ("solver.mixcache"): Sat/Unsat verdicts keyed by
///    canonicalQueryHash. Plugged into every SmtSolver through
///    SmtOptions::Cache.
///  - BlockSummaryStore ("blocks.mixcache"): opaque block-summary
///    payloads keyed by a stable block key (MIXY encodes its SymOutcome
///    plus the diagnostics the block run emitted — replaying them on a
///    hit keeps warm diagnostics byte-identical to a cold run).
///  - Manifest ("manifest.mixcache"): per-function content and
///    dependency-closure hashes from the previous run, which is what
///    --incremental diffs to report how much of the program actually
///    needed re-analysis.
///
/// Failure contract: everything here is a cache of deterministic
/// recomputations, so every failure mode (missing file, corruption,
/// version skew, unwritable directory) degrades to a cold run — the
/// session records one human-readable reason, the driver surfaces it as
/// a single MIX502 note, and the analysis result is unchanged. Loads and
/// stores are mutex-guarded; saves publish via atomic rename, so two
/// processes sharing a --cache-dir race benignly (last rename wins,
/// readers never see a torn file).
///
//===----------------------------------------------------------------------===//

#ifndef MIX_PERSIST_PERSISTSESSION_H
#define MIX_PERSIST_PERSISTSESSION_H

#include "observe/Metrics.h"
#include "solver/SmtSolver.h"

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace mix::persist {

/// Configuration of a PersistSession.
struct PersistOptions {
  /// The cache directory (created if absent).
  std::string Dir;
  /// Load/store block summaries and diff the manifest (--incremental).
  bool Incremental = false;
  /// Digest of the analysis options that affect block summaries; stores
  /// written under different options load as empty, not as corrupt.
  uint64_t BlockFingerprint = 0;
  /// Counters/latency land here ("persist.*"); null disables.
  obs::MetricsRegistry *Metrics = nullptr;
  /// Keep every store in memory only, without a cache directory: no disk
  /// I/O, save() succeeds as a no-op, never degraded. This is how mixyd
  /// keeps summaries warm across requests when no --cache-dir is given.
  bool InMemory = false;
};

/// The persistent Sat/Unsat memo (thread-safe; see smt::QueryCache).
class SolverQueryStore final : public smt::QueryCache {
public:
  explicit SolverQueryStore(obs::MetricsRegistry *Metrics);

  bool lookup(uint64_t Key, smt::SolveResult &Out) override;
  void store(uint64_t Key, smt::SolveResult Result) override;

  size_t size() const;

  /// RecordFile payloads (one per entry) / their inverse. decode returns
  /// false on a malformed payload.
  std::vector<std::string> encode() const;
  bool decode(const std::vector<std::string> &Records);

private:
  mutable std::mutex M;
  std::unordered_map<uint64_t, uint8_t> Map; ///< 0 = Sat, 1 = Unsat
  obs::Counter CHits, CMisses, CStores;
};

/// The persistent block-summary store. Payloads are opaque byte strings:
/// the analysis that owns the summaries (MIXY) encodes and decodes them,
/// so this layer needs no knowledge of SymOutcome or diagnostics.
class BlockSummaryStore {
public:
  explicit BlockSummaryStore(obs::MetricsRegistry *Metrics);

  std::optional<std::string> lookup(uint64_t Key);
  void store(uint64_t Key, std::string Payload);

  size_t size() const;
  void clear();

  std::vector<std::string> encode() const;
  bool decode(const std::vector<std::string> &Records);

private:
  mutable std::mutex M;
  std::unordered_map<uint64_t, std::string> Map;
  obs::Counter CHits, CMisses, CStores;
};

/// Per-function hashes from one run, diffed across runs by --incremental.
struct Manifest {
  struct Func {
    uint64_t ContentHash = 0;
    uint64_t ClosureHash = 0;
  };
  std::map<std::string, Func> Funcs;

  std::vector<std::string> encode() const;
  bool decode(const std::vector<std::string> &Records);
};

/// One cache directory, opened for one tool run.
class PersistSession {
public:
  explicit PersistSession(PersistOptions Opts);

  /// Non-empty when any store was rejected (corruption, version skew,
  /// unusable directory): the single degradation reason the driver
  /// reports. The session still works — it just started cold.
  const std::string &degradedReason() const { return DegradedReason; }

  bool incremental() const { return Opts.Incremental; }

  SolverQueryStore &solverCache() { return Solver; }
  BlockSummaryStore &blocks() { return Blocks; }

  /// The manifest loaded from the previous run (empty on a cold start).
  const Manifest &previousManifest() const { return Previous; }
  /// Sets this run's manifest, written back by save().
  void setCurrentManifest(Manifest M) { Current = std::move(M); }

  /// Writes all stores back to the cache directory (bumping the on-disk
  /// generation stamp). Returns false with \p Error set on the first file
  /// that could not be written (the run's findings are unaffected either
  /// way). In-memory sessions succeed without touching disk.
  bool save(std::string *Error = nullptr);

  /// The generation this session loaded (0 on a cold start); each save()
  /// publishes generation + 1. Sessions opened before the stamp existed
  /// observe generation 0, matching the historical single-writer world.
  uint64_t generation() const { return Gen; }

  /// True when another writer has published into this cache directory
  /// since this session loaded it — i.e. the on-disk generation no longer
  /// matches generation(). A long-lived process must not keep replaying
  /// its loaded manifest/summaries past this point: reopen the directory
  /// (fresh PersistSession) or call invalidateSummaries(). Always false
  /// for in-memory and unusable-directory sessions.
  bool externallyModified() const;

  /// Drops the loaded manifest and every block summary (the solver store
  /// survives: verdicts are keyed by the formula alone, so they can never
  /// go stale when source files change). Used by the daemon when a client
  /// reports a file changed.
  void invalidateSummaries();

private:
  PersistOptions Opts;
  SolverQueryStore Solver;
  BlockSummaryStore Blocks;
  Manifest Previous, Current;
  std::string DegradedReason;
  bool DirUsable = false;
  uint64_t Gen = 0;
};

} // namespace mix::persist

#endif // MIX_PERSIST_PERSISTSESSION_H
