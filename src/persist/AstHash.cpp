//===--- AstHash.cpp - Stable content hashes over mini-C ASTs ---------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "persist/AstHash.h"

#include "cfront/CPrinter.h"
#include "support/Hash.h"

#include <algorithm>

using namespace mix::persist;
using namespace mix::c;

uint64_t mix::persist::functionContentHash(const CFuncDecl &F) {
  StableHasher H;
  H.str(F.name());
  H.u8((uint8_t)F.mixAnnot());
  H.str(printDecl(F.returnType(), ""));
  H.u32((uint32_t)F.params().size());
  for (const CFuncDecl::Param &P : F.params()) {
    H.str(P.Name);
    H.str(printDecl(P.Ty, ""));
  }
  H.boolean(F.isDefined());
  if (F.isDefined())
    H.str(printStmt(F.body()));
  return H.digest();
}

uint64_t mix::persist::environmentHash(const CProgram &P) {
  StableHasher H;
  H.u32((uint32_t)P.Structs.size());
  for (const CStructDecl *S : P.Structs) {
    H.str(S->name());
    H.u32((uint32_t)S->fields().size());
    for (const CStructDecl::Field &F : S->fields()) {
      H.str(F.Name);
      H.str(printDecl(F.Ty, ""));
    }
  }
  H.u32((uint32_t)P.Globals.size());
  for (const CGlobalDecl *G : P.Globals) {
    H.str(G->name());
    H.str(printDecl(G->type(), ""));
    H.boolean(G->init() != nullptr);
    if (G->init())
      H.str(printExpr(G->init()));
  }
  // Extern signatures are part of every block's environment; defined
  // bodies are covered per-function by the closure hashes.
  for (const CFuncDecl *F : P.Funcs)
    if (!F->isDefined())
      H.u64(functionContentHash(*F));
  return H.digest();
}

std::map<const CFuncDecl *, uint64_t> mix::persist::closureHashes(
    const std::map<const CFuncDecl *, uint64_t> &Content,
    const std::map<const CFuncDecl *, std::vector<const CFuncDecl *>> &Deps,
    uint64_t EnvHash) {
  std::map<const CFuncDecl *, uint64_t> Out;
  for (const auto &[F, Hash] : Content) {
    (void)Hash;
    // Plain BFS reachability (reflexive), so mutual recursion and shared
    // helpers are handled without any SCC machinery.
    std::vector<const CFuncDecl *> Work{F};
    std::map<const CFuncDecl *, bool> Seen{{F, true}};
    std::vector<uint64_t> Cone;
    while (!Work.empty()) {
      const CFuncDecl *Cur = Work.back();
      Work.pop_back();
      auto It = Content.find(Cur);
      if (It != Content.end())
        Cone.push_back(It->second);
      auto DepIt = Deps.find(Cur);
      if (DepIt == Deps.end())
        continue;
      for (const CFuncDecl *Next : DepIt->second)
        if (Seen.emplace(Next, true).second)
          Work.push_back(Next);
    }
    // Sorted, so the digest is independent of traversal order.
    std::sort(Cone.begin(), Cone.end());
    StableHasher H;
    H.u64(EnvHash);
    H.u32((uint32_t)Cone.size());
    for (uint64_t C : Cone)
      H.u64(C);
    Out[F] = H.digest();
  }
  return Out;
}
