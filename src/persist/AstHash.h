//===--- AstHash.h - Stable content hashes over mini-C ASTs -----*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The key-derivation half of the incremental engine: stable 64-bit
/// content hashes over mini-C declarations, built from the CPrinter
/// rendering (which round-trips through the parser, so it captures
/// exactly the syntax the analyses consume — and nothing
/// address-dependent).
///
///  - functionContentHash: one function's identity (name, MIX annotation,
///    signature, body). Editing a function changes its hash; editing an
///    unrelated function does not.
///  - environmentHash: the shared declarations every block can see
///    (struct layouts, globals with initializers, and extern function
///    signatures).
///  - closureHashes: each function's *dependency-closure* hash — the
///    digest of the sorted content hashes of everything reachable over
///    the dependency edges (call graph plus qualifier-alias neighbors),
///    folded with the environment hash. Persistent block keys embed the
///    closure hash, so invalidation is by construction: any edit in a
///    block's dependency cone changes the key and the stale entry simply
///    never matches again.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_PERSIST_ASTHASH_H
#define MIX_PERSIST_ASTHASH_H

#include "cfront/CAst.h"

#include <cstdint>
#include <map>
#include <vector>

namespace mix::persist {

/// Stable digest of one function definition (its name, annotation,
/// rendered signature, and rendered body).
uint64_t functionContentHash(const c::CFuncDecl &F);

/// Stable digest of the program-wide declarations outside any function:
/// struct layouts, global variables (with initializers), and the
/// signatures of undefined (extern) functions.
uint64_t environmentHash(const c::CProgram &P);

/// Dependency-closure hashes: for every function F in \p Content, the
/// digest of the sorted content hashes of all functions reachable from F
/// over \p Deps (reflexively), combined with \p EnvHash. Cycles are fine
/// (reachability, not recursion).
std::map<const c::CFuncDecl *, uint64_t> closureHashes(
    const std::map<const c::CFuncDecl *, uint64_t> &Content,
    const std::map<const c::CFuncDecl *, std::vector<const c::CFuncDecl *>>
        &Deps,
    uint64_t EnvHash);

} // namespace mix::persist

#endif // MIX_PERSIST_ASTHASH_H
