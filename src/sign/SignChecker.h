//===--- SignChecker.h - Sign-qualifier type checker ------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flow-insensitive type checker for the sign-qualified types of
/// SignTypes.h — the "non-standard type system" of Section 2's "Local
/// Refinements of Data" example. It is deliberately another off-the-shelf
/// checker in the sense of the paper: the only MIX-aware element is the
/// SignSymBlockOracle hook for `{s e s}` blocks, mirroring how the plain
/// TypeChecker exposes SymBlockOracle. SignMix instantiates the mix rules
/// for this system, demonstrating that the MIX architecture is generic in
/// the type system being mixed.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SIGN_SIGNCHECKER_H
#define MIX_SIGN_SIGNCHECKER_H

#include "lang/Ast.h"
#include "sign/SignTypes.h"
#include "support/Diagnostics.h"

#include <map>
#include <string>

namespace mix {

/// A sign-typing environment.
using SignEnv = std::map<std::string, const SType *>;

/// The hook by which the sign checker "type checks" a symbolic block.
class SignSymBlockOracle {
public:
  virtual ~SignSymBlockOracle() = default;

  /// Returns the sign-qualified type of `{s e s}` under \p Gamma, or null
  /// after reporting diagnostics.
  virtual const SType *stypeOfSymbolicBlock(const BlockExpr *Block,
                                            const SignEnv &Gamma) = 0;
};

/// Checks expressions against the sign-qualified type system.
class SignChecker {
public:
  SignChecker(SignTypeContext &Types, DiagnosticEngine &Diags)
      : Types(Types), Diags(Diags) {}

  void setSymBlockOracle(SignSymBlockOracle *Oracle) { SymOracle = Oracle; }

  /// Derives Gamma |- e : sigma; null (with a diagnostic) when e does not
  /// check.
  const SType *check(const Expr *E, const SignEnv &Gamma);

  SignTypeContext &types() { return Types; }

private:
  const SType *error(SourceLoc Loc, const std::string &Message);
  /// Checks that \p Found is a subtype of \p Expected, reporting
  /// \p What on mismatch. Returns Expected on success.
  const SType *expect(SourceLoc Loc, const SType *Found,
                      const SType *Expected, const char *What);

  SignTypeContext &Types;
  DiagnosticEngine &Diags;
  SignSymBlockOracle *SymOracle = nullptr;
};

} // namespace mix

#endif // MIX_SIGN_SIGNCHECKER_H
