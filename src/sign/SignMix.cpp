//===--- SignMix.cpp - Mix rules for the sign-qualifier system --------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "sign/SignMix.h"

#include "concolic/IrExecutor.h"
#include "symexec/MemCheck.h"

using namespace mix;

SignMixChecker::SignMixChecker(TypeContext &PlainTypes,
                               DiagnosticEngine &Diags, MixOptions Opts)
    : PlainTypes(PlainTypes), Diags(Diags), Opts(Opts), STypes(PlainTypes),
      Syms(PlainTypes), Solver(Terms, Opts.Smt), Translator(Syms, Terms),
      Checker(STypes, Diags),
      Executor(concolic::makeExecEngine(Syms, Diags, Opts.Exec)),
      Eng(engineConfig(Opts)) {
  Checker.setSymBlockOracle(this);
  Executor->setTypedBlockOracle(this);
  Executor->setSolver(&Solver, &Translator);
}

SignMixChecker::Engine::Config
SignMixChecker::engineConfig(const MixOptions &O) {
  Engine::Config C;
  C.Shards = engine::blockCacheShardsFor(O.Jobs);
  C.Metrics = O.Metrics;
  return C;
}

std::string SignMixChecker::signSig(const SignEnv &Gamma) {
  // SignEnv is an ordered map, so iteration (and the signature) is
  // deterministic.
  std::string Sig;
  for (const auto &[Name, S] : Gamma) {
    Sig += Name;
    Sig += ':';
    Sig += S->str();
    Sig += ';';
  }
  return Sig;
}

const SType *SignMixChecker::checkTyped(const Expr *E,
                                        const SignEnv &Gamma) {
  return Checker.check(E, Gamma);
}

const SType *SignMixChecker::checkSymbolic(const Expr *E,
                                           const SignEnv &Gamma) {
  ++Statistics.SymBlocksChecked;
  return checkSymbolicCore(E, Gamma, E->loc());
}

const SymExpr *SignMixChecker::signGuard(const SymExpr *Value, SignQual Q) {
  switch (Q) {
  case SignQual::Pos:
    return Syms.lt(Syms.intConst(0), Value);
  case SignQual::Zero:
    return Syms.eq(Value, Syms.intConst(0));
  case SignQual::Neg:
    return Syms.lt(Value, Syms.intConst(0));
  case SignQual::Unknown:
    return nullptr;
  }
  return nullptr;
}

SignQual SignMixChecker::signUnderPath(const SymExpr *Path,
                                       const SymExpr *Value) {
  const smt::Term *PathT = Translator.translate(Path);
  const smt::Term *ValueT = Translator.translate(Value);
  auto Valid = [&](const smt::Term *Prop) {
    return Solver.isDefinitelyValid(Terms.implies(PathT, Prop));
  };
  if (Valid(Terms.lt(Terms.intConst(0), ValueT)))
    return SignQual::Pos;
  if (Valid(Terms.eqInt(ValueT, Terms.intConst(0))))
    return SignQual::Zero;
  if (Valid(Terms.lt(ValueT, Terms.intConst(0))))
    return SignQual::Neg;
  return SignQual::Unknown;
}

bool SignMixChecker::verifyClosure(const SymExpr *Closure, SourceLoc Loc) {
  // Memoized in the engine's typed cache per closure value (failures
  // included, so a bad closure is reported once); a cyclic
  // re-verification hits the Section 4.4 stack cut-off and answers with
  // the assumption that the annotation holds.
  Engine::Key K{Closure, std::string()};
  engine::RunHooks<const SType *> H;
  H.Init = [&]() -> const SType * { return STypes.lift(Closure->type()); };
  H.Eval = [&]() -> const SType * {
    SignEnv Gamma;
    for (const auto &[Name, Captured] : Syms.closureEnv(Closure))
      Gamma[Name] = STypes.lift(Captured->type());
    if (const SType *S = Checker.check(Syms.closureFun(Closure), Gamma))
      return S;
    Diags.error(Loc,
                "function value escapes its symbolic block, so its "
                "body must sign-check on all inputs",
                DiagID::EscapedClosure);
    return nullptr;
  };
  // A failed check cannot improve by re-running.
  H.KeepIterating = [](const SType *S) { return S != nullptr; };
  return Eng.runTyped(K, BlockStack, H) != nullptr;
}

bool SignMixChecker::verifyEscapingClosures(const SymExpr *Value,
                                            const MemNode *Mem,
                                            SourceLoc Loc) {
  std::vector<const SymExpr *> Closures;
  Syms.collectClosures(Value, Closures);
  Syms.collectClosuresInMemory(Mem, Closures);
  for (const SymExpr *C : Closures)
    if (!verifyClosure(C, Loc))
      return false;
  return true;
}

const SType *SignMixChecker::checkSymbolicCore(const Expr *Body,
                                               const SignEnv &Gamma,
                                               SourceLoc Loc) {
  // TSymBlock-sign: Sigma maps each x to alpha_x : erase(Gamma(x)), and —
  // the sign twist — the initial path condition encodes Gamma's
  // qualifiers (alpha_x > 0 for pos int inputs, the initial contents of
  // sign-qualified reference cells likewise).
  SymEnv Env;
  const SymExpr *InitPath = Syms.trueGuard();
  SymState Init;
  Init.Mem = Syms.freshBaseMemory();
  std::map<const SymExpr *, SignQual> SignedRefs;
  for (const auto &[Name, S] : Gamma) {
    const SymExpr *Alpha =
        Syms.freshVar(STypes.erase(S), /*IsAllocAddr=*/false, Name);
    Env[Name] = Alpha;
    if (S->isInt()) {
      if (const SymExpr *G = signGuard(Alpha, S->sign()))
        InitPath = Syms.andG(InitPath, G);
    } else if (S->isRef() && S->pointee()->isInt() &&
               S->pointee()->sign() != SignQual::Unknown) {
      // The cell's current contents have the annotated sign...
      if (const SymExpr *G =
              signGuard(Syms.select(Init.Mem, Alpha), S->pointee()->sign()))
        InitPath = Syms.andG(InitPath, G);
      // ... and writes to it must preserve that sign (checked at exit).
      SignedRefs[Alpha] = S->pointee()->sign();
    }
  }

  Init.Path = InitPath;

  // Refinement guards asserted by nested typed blocks belong to this
  // run; nested runs (through re-entrant blocks) get their own frame.
  std::vector<const SymExpr *> SavedAxioms = std::move(RefinementAxioms);
  RefinementAxioms.clear();
  SymExecResult Result = Executor->run(Body, Env, Init);
  std::vector<const SymExpr *> Axioms = std::move(RefinementAxioms);
  RefinementAxioms = std::move(SavedAxioms);

  Statistics.PathsExplored += (unsigned)Result.Paths.size();

  if (Result.ResourceLimitHit) {
    Diags.error(Loc,
                "symbolic block exceeded the execution budget; "
                "cannot establish exhaustiveness",
                DiagID::ExecBudget);
    return nullptr;
  }

  std::vector<const PathResult *> Live;
  for (const PathResult &P : Result.Paths) {
    if (Solver.isDefinitelyUnsat(Translator.translate(P.State.Path))) {
      ++Statistics.InfeasiblePathsDiscarded;
      continue;
    }
    if (P.IsError) {
      Diags.error(P.ErrorLoc.isValid() ? P.ErrorLoc : Loc,
                  P.ErrorMessage + " [on path " + P.State.Path->str() + "]",
                  DiagID::SymExecError);
      return nullptr;
    }
    Live.push_back(&P);
  }

  if (Live.empty()) {
    Diags.error(Loc, "symbolic block has no feasible path",
                DiagID::NoFeasiblePath);
    return nullptr;
  }

  // Base types must agree across paths.
  const Type *Tau = Live.front()->Value->type();
  for (const PathResult *P : Live) {
    if (P->Value->type() != Tau) {
      Diags.error(Loc, "symbolic block paths disagree on the result type",
                  DiagID::ResultTypeMismatch);
      return nullptr;
    }
  }

  for (const PathResult *P : Live)
    if (!verifyEscapingClosures(P->Value, P->State.Mem, Loc))
      return nullptr;

  if (Opts.CheckFinalMemory) {
    for (const PathResult *P : Live) {
      if (!checkMemoryOk(P->State.Mem).Ok) {
        Diags.error(Loc,
                    "symbolic block leaves memory inconsistently "
                    "typed on some path (|- m ok fails)",
                    DiagID::MemoryInconsistent);
        return nullptr;
      }
      if (!checkSignedMemory(SignedRefs, P->State.Mem, P->State.Path, Loc))
        return nullptr;
    }
  }

  // exhaustive() relative to the initial constraint and the refinement
  // axioms: Gamma's qualifiers restrict the inputs and each typed block's
  // result sign was *proved* by the checker, so the obligation is
  // (InitPath /\ Axioms) => (g_1 \/ ... \/ g_n).
  if (Opts.Exhaustive == MixOptions::Exhaustiveness::Require) {
    ++Statistics.ExhaustivenessChecks;
    std::vector<const smt::Term *> Guards;
    for (const PathResult *P : Live)
      Guards.push_back(Translator.translate(P->State.Path));
    const smt::Term *Antecedent = Translator.translate(InitPath);
    for (const SymExpr *Axiom : Axioms)
      Antecedent = Terms.andTerm(Antecedent, Translator.translate(Axiom));
    const smt::Term *Obligation =
        Terms.implies(Antecedent, Terms.orList(Guards));
    if (!Solver.isDefinitelyValid(Obligation)) {
      Diags.error(Loc, "symbolic block paths are not exhaustive",
                  DiagID::PathsNotExhaustive);
      return nullptr;
    }
  }

  // The mix payoff: recover each path's result sign from the solver and
  // join — "we use the SMT solver to discover the possible final values
  // ... and translate those to the appropriate types" (Section 4.1, in
  // sign clothing).
  if (Tau->isInt()) {
    SignQual Q = signUnderPath(Live.front()->State.Path,
                               Live.front()->Value);
    for (size_t I = 1; I != Live.size(); ++I)
      Q = joinSign(Q, signUnderPath(Live[I]->State.Path, Live[I]->Value));
    return STypes.intType(Q);
  }
  return STypes.lift(Tau);
}

const SType *SignMixChecker::stypeOfSymbolicBlock(const BlockExpr *Block,
                                                  const SignEnv &Gamma) {
  // Counts boundary-rule applications, cached or not.
  ++Statistics.SymBlocksChecked;
  Engine::Key K{Block, signSig(Gamma)};
  engine::RunHooks<const SType *> H;
  H.Eval = [&] {
    return checkSymbolicCore(Block->body(), Gamma, Block->loc());
  };
  // Failures reported diagnostics; re-diagnose instead of replaying null.
  H.ShouldCache = [](const SType *S) { return S != nullptr; };
  H.KeepIterating = [](const SType *S) { return S != nullptr; };
  return Eng.runSymbolic(K, BlockStack, H);
}

const Type *SignMixChecker::typeOfTypedBlock(const BlockExpr *Block,
                                             const SymEnv &Env,
                                             const SymState &State) {
  ++Statistics.TypedBlocksExecuted;

  for (const auto &[Name, Value] : Env)
    if (!verifyEscapingClosures(Value, nullptr, Block->loc()))
      return nullptr;
  if (!verifyEscapingClosures(nullptr, State.Mem, Block->loc()))
    return nullptr;

  // |- Sigma : Gamma, sharpened: for int-typed symbols, ask the solver
  // what the path condition forces — this is how "the type system will
  // start with the appropriate type for x, either pos, zero, or neg int".
  SignEnv Gamma;
  for (const auto &[Name, Value] : Env) {
    if (Value->type()->isInt())
      Gamma[Name] = STypes.intType(signUnderPath(State.Path, Value));
    else
      Gamma[Name] = STypes.lift(Value->type());
  }

  Engine::Key K{Block, signSig(Gamma)};
  engine::RunHooks<const SType *> H;
  // A cache hit must still publish the result sign so
  // refineTypedBlockResult refines the continuing execution.
  H.OnCacheHit = [&](const SType *S) { TypedBlockResults[Block] = S; };
  H.Eval = [&] { return Checker.check(Block->body(), Gamma); };
  H.ShouldCache = [](const SType *S) { return S != nullptr; };
  H.KeepIterating = [](const SType *S) { return S != nullptr; };
  const SType *S = Eng.runTyped(K, BlockStack, H);
  if (!S)
    return nullptr;
  TypedBlockResults[Block] = S;
  return STypes.erase(S);
}

const SymExpr *SignMixChecker::refineTypedBlockResult(const BlockExpr *Block,
                                                      const SymExpr *ResultVar,
                                                      SymArena &Arena) {
  auto It = TypedBlockResults.find(Block);
  if (It == TypedBlockResults.end() || !It->second->isInt())
    return nullptr;
  (void)Arena; // signGuard builds in our own arena, which is the same one
  const SymExpr *Guard = signGuard(ResultVar, It->second->sign());
  if (Guard)
    // The checker proved the sign, so the guard is an axiom the
    // exhaustiveness obligation may assume.
    RefinementAxioms.push_back(Guard);
  return Guard;
}

bool SignMixChecker::checkSignedMemory(
    const std::map<const SymExpr *, SignQual> &SignedRefs,
    const MemNode *Mem, const SymExpr *Path, SourceLoc Loc) {
  if (SignedRefs.empty())
    return true;
  while (Mem) {
    switch (Mem->kind()) {
    case MemKind::Base:
      return true;
    case MemKind::Ite:
      return checkSignedMemory(SignedRefs, Mem->thenMemory(), Path, Loc) &&
             checkSignedMemory(SignedRefs, Mem->elseMemory(), Path, Loc);
    case MemKind::Alloc:
      // Fresh allocations cannot alias Gamma's cells.
      Mem = Mem->previous();
      continue;
    case MemKind::Update: {
      const SymExpr *Addr = Mem->address();
      auto It = SignedRefs.find(Addr);
      if (It != SignedRefs.end()) {
        // A definite write to a sign-qualified cell: the stored value's
        // sign must refine the annotation under this path.
        if (!Mem->value()->type()->isInt() ||
            !signSubtype(signUnderPath(Path, Mem->value()), It->second)) {
          Diags.error(Loc,
                      "write to a " +
                          std::string(signQualName(It->second)) +
                          " int cell may violate its sign qualifier",
                      DiagID::SignError);
          return false;
        }
      } else if (!Syms.isAllocAddress(Addr)) {
        // A write through a pointer that may alias a qualified cell:
        // conservatively require the value to satisfy every qualifier it
        // could reach. (Allocation addresses never alias Gamma's cells.)
        for (const auto &[RefAddr, Q] : SignedRefs) {
          (void)RefAddr;
          if (!Mem->value()->type()->isInt() ||
              !signSubtype(signUnderPath(Path, Mem->value()), Q)) {
            Diags.error(Loc,
                        "write through an unresolved pointer may "
                        "violate a sign qualifier",
                        DiagID::SignError);
            return false;
          }
        }
      }
      Mem = Mem->previous();
      continue;
    }
    }
  }
  return true;
}
