//===--- SignTypes.cpp - Sign-qualified types -------------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "sign/SignTypes.h"

using namespace mix;

const char *mix::signQualName(SignQual Q) {
  switch (Q) {
  case SignQual::Pos:
    return "pos";
  case SignQual::Zero:
    return "zero";
  case SignQual::Neg:
    return "neg";
  case SignQual::Unknown:
    return "unknown";
  }
  return "unknown";
}

SignQual mix::joinSign(SignQual A, SignQual B) {
  return A == B ? A : SignQual::Unknown;
}

bool mix::signSubtype(SignQual A, SignQual B) {
  return A == B || B == SignQual::Unknown;
}

SignQual mix::signOfValue(long long V) {
  if (V > 0)
    return SignQual::Pos;
  if (V < 0)
    return SignQual::Neg;
  return SignQual::Zero;
}

SignQual mix::addSigns(SignQual A, SignQual B) {
  if (A == SignQual::Zero)
    return B;
  if (B == SignQual::Zero)
    return A;
  if (A == B && (A == SignQual::Pos || A == SignQual::Neg))
    return A; // pos + pos = pos, neg + neg = neg
  return SignQual::Unknown;
}

SignQual mix::subSigns(SignQual A, SignQual B) {
  // A - B == A + (-B).
  SignQual NegB = SignQual::Unknown;
  switch (B) {
  case SignQual::Pos:
    NegB = SignQual::Neg;
    break;
  case SignQual::Neg:
    NegB = SignQual::Pos;
    break;
  case SignQual::Zero:
    NegB = SignQual::Zero;
    break;
  case SignQual::Unknown:
    NegB = SignQual::Unknown;
    break;
  }
  return addSigns(A, NegB);
}

std::string SType::str() const {
  switch (K) {
  case Kind::Int:
    return Q == SignQual::Unknown ? "int"
                                  : std::string(signQualName(Q)) + " int";
  case Kind::Bool:
    return "bool";
  case Kind::Ref: {
    std::string Inner = pointee()->str();
    if (pointee()->isFun())
      Inner = "(" + Inner + ")";
    return Inner + " ref";
  }
  case Kind::Fun: {
    std::string Lhs = param()->str();
    if (param()->isFun())
      Lhs = "(" + Lhs + ")";
    return Lhs + " -> " + result()->str();
  }
  }
  return "<invalid>";
}

const SType *SignTypeContext::make(SType::Kind K, SignQual Q,
                                   const SType *Arg0, const SType *Arg1) {
  auto Key = std::make_tuple((int)K, (int)Q, Arg0, Arg1);
  auto It = Interned.find(Key);
  if (It != Interned.end())
    return It->second;
  Owned.push_back(std::unique_ptr<SType>(new SType(K, Q, Arg0, Arg1)));
  const SType *S = Owned.back().get();
  Interned.emplace(Key, S);
  return S;
}

const SType *SignTypeContext::intType(SignQual Q) {
  return make(SType::Kind::Int, Q, nullptr, nullptr);
}

const SType *SignTypeContext::boolType() {
  return make(SType::Kind::Bool, SignQual::Unknown, nullptr, nullptr);
}

const SType *SignTypeContext::refType(const SType *Pointee) {
  return make(SType::Kind::Ref, SignQual::Unknown, Pointee, nullptr);
}

const SType *SignTypeContext::funType(const SType *Param,
                                      const SType *Result) {
  return make(SType::Kind::Fun, SignQual::Unknown, Param, Result);
}

const Type *SignTypeContext::erase(const SType *S) {
  switch (S->kind()) {
  case SType::Kind::Int:
    return Plain.intType();
  case SType::Kind::Bool:
    return Plain.boolType();
  case SType::Kind::Ref:
    return Plain.refType(erase(S->pointee()));
  case SType::Kind::Fun:
    return Plain.funType(erase(S->param()), erase(S->result()));
  }
  return Plain.intType();
}

const SType *SignTypeContext::lift(const Type *T) {
  switch (T->kind()) {
  case TypeKind::Int:
    return intType(SignQual::Unknown);
  case TypeKind::Bool:
    return boolType();
  case TypeKind::Ref:
    return refType(lift(T->pointee()));
  case TypeKind::Fun:
    return funType(lift(T->param()), lift(T->result()));
  }
  return intType(SignQual::Unknown);
}

bool SignTypeContext::subtype(const SType *A, const SType *B) {
  if (A == B)
    return true;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case SType::Kind::Int:
    return signSubtype(A->sign(), B->sign());
  case SType::Kind::Bool:
    return true;
  case SType::Kind::Ref:
    // Mutable cells are invariant.
    return A->pointee() == B->pointee();
  case SType::Kind::Fun:
    return subtype(B->param(), A->param()) &&
           subtype(A->result(), B->result());
  }
  return false;
}

const SType *SignTypeContext::join(const SType *A, const SType *B) {
  if (A == B)
    return A;
  if (A->kind() != B->kind())
    return nullptr;
  switch (A->kind()) {
  case SType::Kind::Int:
    return intType(joinSign(A->sign(), B->sign()));
  case SType::Kind::Bool:
    return boolType();
  case SType::Kind::Ref:
    // Invariant: joinable only when identical (handled above).
    return nullptr;
  case SType::Kind::Fun: {
    // Meet on parameters would be needed in general; require identical
    // parameters and join results, which covers the language's use.
    if (A->param() != B->param())
      return nullptr;
    const SType *R = join(A->result(), B->result());
    return R ? funType(A->param(), R) : nullptr;
  }
  }
  return nullptr;
}
