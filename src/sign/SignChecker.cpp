//===--- SignChecker.cpp - Sign-qualifier type checker ----------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "sign/SignChecker.h"

using namespace mix;

const SType *SignChecker::error(SourceLoc Loc, const std::string &Message) {
  Diags.error(Loc, Message, DiagID::SignError);
  return nullptr;
}

const SType *SignChecker::expect(SourceLoc Loc, const SType *Found,
                                 const SType *Expected, const char *What) {
  if (Types.subtype(Found, Expected))
    return Expected;
  return error(Loc, std::string(What) + ": expected " + Expected->str() +
                        ", got " + Found->str());
}

const SType *SignChecker::check(const Expr *E, const SignEnv &Gamma) {
  switch (E->kind()) {
  case ExprKind::Var: {
    const auto *V = cast<VarExpr>(E);
    auto It = Gamma.find(V->name());
    if (It == Gamma.end())
      return error(E->loc(), "unbound variable '" + V->name() + "'");
    return It->second;
  }
  case ExprKind::IntLit:
    return Types.intType(signOfValue(cast<IntLitExpr>(E)->value()));
  case ExprKind::BoolLit:
    return Types.boolType();
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    const SType *L = check(B->lhs(), Gamma);
    const SType *R = check(B->rhs(), Gamma);
    if (!L || !R)
      return nullptr;
    switch (B->op()) {
    case BinaryOp::Add:
      if (!L->isInt() || !R->isInt())
        return error(E->loc(), "'+' requires int operands");
      return Types.intType(addSigns(L->sign(), R->sign()));
    case BinaryOp::Sub:
      if (!L->isInt() || !R->isInt())
        return error(E->loc(), "'-' requires int operands");
      return Types.intType(subSigns(L->sign(), R->sign()));
    case BinaryOp::Lt:
    case BinaryOp::Le:
      if (!L->isInt() || !R->isInt())
        return error(E->loc(), "comparison requires int operands");
      return Types.boolType();
    case BinaryOp::Eq:
      if (L->isInt() && R->isInt())
        return Types.boolType();
      if (L->isBool() && R->isBool())
        return Types.boolType();
      return error(E->loc(), "'=' requires two ints or two bools");
    case BinaryOp::And:
    case BinaryOp::Or:
      if (!L->isBool() || !R->isBool())
        return error(E->loc(), "boolean operator requires bool operands");
      return Types.boolType();
    }
    return nullptr;
  }
  case ExprKind::Not: {
    const SType *T = check(cast<NotExpr>(E)->sub(), Gamma);
    if (!T)
      return nullptr;
    if (!T->isBool())
      return error(E->loc(), "'not' requires a bool operand");
    return Types.boolType();
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    const SType *C = check(I->cond(), Gamma);
    if (!C)
      return nullptr;
    if (!C->isBool())
      return error(I->cond()->loc(), "condition must be bool");
    const SType *T = check(I->thenExpr(), Gamma);
    const SType *F = check(I->elseExpr(), Gamma);
    if (!T || !F)
      return nullptr;
    const SType *J = Types.join(T, F);
    if (!J)
      return error(E->loc(), "branches of 'if' have incompatible types: " +
                                 T->str() + " vs " + F->str());
    return J;
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    const SType *Init = check(L->init(), Gamma);
    if (!Init)
      return nullptr;
    if (L->declaredType() &&
        Types.erase(Init) != L->declaredType())
      return error(E->loc(),
                   "let annotation does not match initializer type");
    SignEnv Extended = Gamma;
    Extended[L->name()] = Init;
    return check(L->body(), Extended);
  }
  case ExprKind::Ref: {
    const SType *T = check(cast<RefExpr>(E)->sub(), Gamma);
    if (!T)
      return nullptr;
    // The cell's qualifier is fixed by the initializer — the
    // flow-insensitive coarseness that symbolic blocks relieve.
    return Types.refType(T);
  }
  case ExprKind::Deref: {
    const SType *T = check(cast<DerefExpr>(E)->sub(), Gamma);
    if (!T)
      return nullptr;
    if (!T->isRef())
      return error(E->loc(), "'!' requires a reference");
    return T->pointee();
  }
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    const SType *Target = check(A->target(), Gamma);
    const SType *Value = check(A->value(), Gamma);
    if (!Target || !Value)
      return nullptr;
    if (!Target->isRef())
      return error(E->loc(), "':=' requires a reference target");
    if (!expect(E->loc(), Value, Target->pointee(), "assignment"))
      return nullptr;
    return Target->pointee();
  }
  case ExprKind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    if (!check(S->first(), Gamma))
      return nullptr;
    return check(S->second(), Gamma);
  }
  case ExprKind::Block: {
    const auto *B = cast<BlockExpr>(E);
    if (B->blockKind() == BlockKind::Typed)
      return check(B->body(), Gamma);
    if (!SymOracle)
      return error(E->loc(), "symbolic block is not allowed here (no "
                             "symbolic executor attached)");
    return SymOracle->stypeOfSymbolicBlock(B, Gamma);
  }
  case ExprKind::Fun: {
    const auto *F = cast<FunExpr>(E);
    const SType *Param = Types.lift(F->paramType());
    const SType *DeclaredResult = Types.lift(F->resultType());
    SignEnv Extended = Gamma;
    Extended[F->param()] = Param;
    const SType *Body = check(F->body(), Extended);
    if (!Body)
      return nullptr;
    if (!expect(E->loc(), Body, DeclaredResult, "function result"))
      return nullptr;
    return Types.funType(Param, DeclaredResult);
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    const SType *Fn = check(A->fn(), Gamma);
    const SType *Arg = check(A->arg(), Gamma);
    if (!Fn || !Arg)
      return nullptr;
    if (!Fn->isFun())
      return error(E->loc(), "application of a non-function");
    if (!expect(E->loc(), Arg, Fn->param(), "argument"))
      return nullptr;
    return Fn->result();
  }
  }
  return error(E->loc(), "unhandled expression form");
}
