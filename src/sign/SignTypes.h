//===--- SignTypes.h - Sign-qualified types ---------------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sign qualifier system from Section 2's "Local Refinements of
/// Data": "suppose we introduce a type qualifier system that
/// distinguishes the sign of an integer as either positive, negative,
/// zero, or unknown." This header defines the qualified types
///
///   sigma ::= q int | bool | sigma ref | sigma -> sigma
///   q     ::= pos | zero | neg | unknown
///
/// with the subtyping order q <= unknown, used by SignChecker and by the
/// sign-flavoured mix rules in SignMix. Interned in SignTypeContext, so
/// equality is pointer equality.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SIGN_SIGNTYPES_H
#define MIX_SIGN_SIGNTYPES_H

#include "lang/Type.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mix {

/// The sign qualifier lattice: pos, zero, neg below unknown.
enum class SignQual { Pos, Zero, Neg, Unknown };

const char *signQualName(SignQual Q);

/// Least upper bound.
SignQual joinSign(SignQual A, SignQual B);
/// Subtyping: A <= B iff A == B or B == Unknown.
bool signSubtype(SignQual A, SignQual B);
/// The sign of a known integer.
SignQual signOfValue(long long V);
/// The sign of A + B (the abstract addition table).
SignQual addSigns(SignQual A, SignQual B);
/// The sign of A - B.
SignQual subSigns(SignQual A, SignQual B);

/// A sign-qualified type. Obtain from SignTypeContext; compare with ==.
class SType {
public:
  enum class Kind { Int, Bool, Ref, Fun };

  Kind kind() const { return K; }
  bool isInt() const { return K == Kind::Int; }
  bool isBool() const { return K == Kind::Bool; }
  bool isRef() const { return K == Kind::Ref; }
  bool isFun() const { return K == Kind::Fun; }

  /// For Int: the sign qualifier.
  SignQual sign() const {
    assert(isInt() && "sign() on non-int");
    return Q;
  }
  const SType *pointee() const {
    assert(isRef() && "pointee() on non-ref");
    return Arg0;
  }
  const SType *param() const {
    assert(isFun() && "param() on non-fun");
    return Arg0;
  }
  const SType *result() const {
    assert(isFun() && "result() on non-fun");
    return Arg1;
  }

  /// Renders e.g. "pos int ref" (unknown int prints as "int").
  std::string str() const;

private:
  friend class SignTypeContext;
  SType(Kind K, SignQual Q, const SType *Arg0, const SType *Arg1)
      : K(K), Q(Q), Arg0(Arg0), Arg1(Arg1) {}

  Kind K;
  SignQual Q;
  const SType *Arg0;
  const SType *Arg1;
};

/// Owns and interns sign-qualified types, and converts to/from the plain
/// types of the core language.
class SignTypeContext {
public:
  explicit SignTypeContext(TypeContext &Plain) : Plain(Plain) {}
  SignTypeContext(const SignTypeContext &) = delete;
  SignTypeContext &operator=(const SignTypeContext &) = delete;

  const SType *intType(SignQual Q);
  const SType *boolType();
  const SType *refType(const SType *Pointee);
  const SType *funType(const SType *Param, const SType *Result);

  /// Erases qualifiers, producing the plain structural type.
  const Type *erase(const SType *S);
  /// Lifts a plain type, giving every int the Unknown qualifier.
  const SType *lift(const Type *T);

  /// Structural subtyping: covariant in int qualifiers at immediate
  /// positions, invariant under ref, standard contra/co for functions.
  bool subtype(const SType *A, const SType *B);

  /// Least upper bound; null when the structures are incompatible.
  const SType *join(const SType *A, const SType *B);

  TypeContext &plain() { return Plain; }

private:
  const SType *make(SType::Kind K, SignQual Q, const SType *Arg0,
                    const SType *Arg1);

  TypeContext &Plain;
  std::vector<std::unique_ptr<SType>> Owned;
  std::map<std::tuple<int, int, const SType *, const SType *>, const SType *>
      Interned;
};

} // namespace mix

#endif // MIX_SIGN_SIGNTYPES_H
