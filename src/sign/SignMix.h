//===--- SignMix.h - Mix rules for the sign-qualifier system ----*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mix rules instantiated for the sign-qualifier type system — the
/// full "Local Refinements of Data" example of Section 2, mechanized:
///
///   {t let x : unknown int = ... in
///   {s if x > 0 then {t (* x : pos int *) ... t}
///      else if x = 0 then {t (* x : zero int *) ... t}
///      else {t (* x : neg int *) ... t} s} t}
///
/// "At the conditional branches, the symbolic executor will fork and
/// explore the three possibilities ... On entering the typed block in
/// each branch, since the value of x is constrained in the symbolic
/// execution, the type system will start with the appropriate type for
/// x, either pos, zero, or neg int."
///
/// Concretely, the sign-flavoured boundary rules are:
///
///   TSymBlock-sign  — build Sigma from Gamma as usual, but start the
///                     executor with the path condition encoding Gamma's
///                     sign qualifiers (alpha_x > 0 for pos int, ...);
///                     on exit, each path's result sign is recovered by
///                     solver validity queries and joined.
///
///   SETypBlock-sign — derive Gamma by asking the solver, per int-typed
///                     symbol, whether the path condition forces a sign;
///                     after checking, the block result's sign refines
///                     the path condition of the continuing execution.
///
/// The executor, solver, and translation machinery are the same
/// off-the-shelf components MixChecker uses — the point of the exercise
/// is that only this boundary file is new.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SIGN_SIGNMIX_H
#define MIX_SIGN_SIGNMIX_H

#include "mix/MixChecker.h"
#include "solver/SmtSolver.h"
#include "sign/SignChecker.h"

namespace mix {

/// The mixed sign analysis.
class SignMixChecker : public SignSymBlockOracle, public TypedBlockOracle {
public:
  SignMixChecker(TypeContext &PlainTypes, DiagnosticEngine &Diags,
                 MixOptions Opts = MixOptions());

  /// Analyzes \p E with the outermost scope treated as a (sign-)typed
  /// block. Returns the sign-qualified type, or null with diagnostics.
  const SType *checkTyped(const Expr *E, const SignEnv &Gamma = SignEnv());

  /// Analyzes \p E with the outermost scope symbolic.
  const SType *checkSymbolic(const Expr *E,
                             const SignEnv &Gamma = SignEnv());

  // --- TSymBlock-sign ------------------------------------------------------
  const SType *stypeOfSymbolicBlock(const BlockExpr *Block,
                                    const SignEnv &Gamma) override;

  // --- SETypBlock-sign -------------------------------------------------------
  const Type *typeOfTypedBlock(const BlockExpr *Block, const SymEnv &Env,
                               const SymState &State) override;
  const SymExpr *refineTypedBlockResult(const BlockExpr *Block,
                                        const SymExpr *ResultVar,
                                        SymArena &Arena) override;

  const MixStats &stats() const { return Statistics; }
  SignTypeContext &signTypes() { return STypes; }
  smt::SmtSolver &solver() { return Solver; }

  /// Section 4.3 block-cache statistics (shared engine layer).
  engine::BlockCacheStats symCacheStats() const { return Eng.symCacheStats(); }
  engine::BlockCacheStats typedCacheStats() const {
    return Eng.typedCacheStats();
  }

private:
  /// Engine instantiation for the sign domain: blocks are keyed by AST
  /// node plus a rendered SignEnv signature, and both block sides
  /// summarize to the sign-qualified result type (null = failed with
  /// diagnostics).
  struct EngineDomain {
    using Key = engine::NodeContextKey;
    using KeyHash = engine::NodeContextKey::Hash;
    using SymOutcome = const SType *;
    using TypedOutcome = const SType *;
    static constexpr const char *Name = "sign";
  };
  using Engine = engine::MixEngine<EngineDomain>;

  /// The engine configuration implied by \p O.
  static Engine::Config engineConfig(const MixOptions &O);

  /// Renders Gamma as a stable cache-key signature ("x:pos int;...").
  static std::string signSig(const SignEnv &Gamma);

  /// Sign-checks one escaped closure's body (memoized in the engine's
  /// typed cache, failures included).
  bool verifyClosure(const SymExpr *Closure, SourceLoc Loc);

  const SType *checkSymbolicCore(const Expr *Body, const SignEnv &Gamma,
                                 SourceLoc Loc);

  /// The strongest sign the path condition forces on \p Value:
  /// valid(path -> value > 0) gives pos, and so on; Unknown otherwise.
  SignQual signUnderPath(const SymExpr *Path, const SymExpr *Value);

  /// The guard expressing "Value has sign Q" (null for Unknown).
  const SymExpr *signGuard(const SymExpr *Value, SignQual Q);

  /// Sign-checks the bodies of closures escaping a block boundary.
  bool verifyEscapingClosures(const SymExpr *Value, const MemNode *Mem,
                              SourceLoc Loc);

  TypeContext &PlainTypes;
  DiagnosticEngine &Diags;
  MixOptions Opts;

  SignTypeContext STypes;
  SymArena Syms;
  smt::TermArena Terms;
  smt::SmtSolver Solver;
  SymToSmt Translator;
  SignChecker Checker;
  /// The engine SymExecOptions::ExecMode selected (--exec=ast|ir).
  std::unique_ptr<ExecEngine> Executor;
  MixStats Statistics;

  /// The sign result of the most recent typed-block check, consumed by
  /// refineTypedBlockResult. Updated on engine cache hits too, so a
  /// replayed typed block still refines the continuing execution.
  std::map<const BlockExpr *, const SType *> TypedBlockResults;

  // The shared engine layer: block caches plus the Section 4.4 block
  // stack (the sign mix analyzes blocks serially, so one stack).
  Engine Eng;
  Engine::BlockStack BlockStack;

  /// Guards asserted by refineTypedBlockResult during the current
  /// symbolic run. They are *justified assumptions* (the sign checker
  /// proved them for every concrete execution of the typed block), so
  /// the exhaustiveness obligation may take them as axioms:
  /// InitPath /\ Axioms => g_1 \/ ... \/ g_n.
  std::vector<const SymExpr *> RefinementAxioms;

  /// Checks that the final memory respects the sign qualifiers of
  /// Gamma-provided reference cells (the sign analogue of |- m ok):
  /// every write that may land in such a cell must store a value of the
  /// required sign under the path condition.
  bool checkSignedMemory(
      const std::map<const SymExpr *, SignQual> &SignedRefs,
      const MemNode *Mem, const SymExpr *Path, SourceLoc Loc);
};

} // namespace mix

#endif // MIX_SIGN_SIGNMIX_H
