//===--- MixChecker.cpp - The MIX analysis driver --------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "mix/MixChecker.h"

#include "concolic/IrExecutor.h"
#include "mix/ConcolicDriver.h"
#include "symexec/MemCheck.h"

using namespace mix;

/// Pushes the checker-level observability sinks down into the nested
/// option structs so the solver and executor report into the same
/// registry/trace.
static MixOptions normalizedOptions(MixOptions O) {
  O.Smt.Metrics = O.Metrics;
  O.Smt.Trace = O.Trace;
  O.Smt.Telemetry = O.Telemetry;
  O.Exec.Metrics = O.Metrics;
  O.Exec.Trace = O.Trace;
  O.Exec.Telemetry = O.Telemetry;
  O.Exec.Prov = O.Prov;
  return O;
}

MixChecker::MixChecker(TypeContext &Types, DiagnosticEngine &Diags,
                       MixOptions OptsIn)
    : Types(Types), Diags(Diags), Opts(normalizedOptions(OptsIn)), Syms(Types),
      Solver(smt::createSolver(Opts.Solver, Terms, Opts.Smt)),
      Translator(Syms, Terms), Checker(Types, Diags),
      Executor(concolic::makeExecEngine(Syms, Diags,
                                        executorOptionsFor(Opts))),
      Solvers(Opts.Smt, Opts.Solver),
      Eng(engineConfig(Opts)) {
  Checker.setSymBlockOracle(this);
  Executor->setTypedBlockOracle(this);
  assert(Solver && "unknown solver backend (validate the SolverSpec with "
                   "parseSolverBackend before constructing)");
  Executor->setSolver(Solver.get(), &Translator);
  if (Opts.Metrics) {
    CSymBlocks = Opts.Metrics->counter("mix.sym_blocks_checked");
    CTypedBlocks = Opts.Metrics->counter("mix.typed_blocks_executed");
    CPaths = Opts.Metrics->counter("mix.paths_explored");
    CInfeasible = Opts.Metrics->counter("mix.paths_infeasible");
    CExhaustive = Opts.Metrics->counter("mix.exhaustiveness_checks");
  }
}

MixChecker::Engine::Config MixChecker::engineConfig(const MixOptions &O) {
  Engine::Config C;
  C.Shards = engine::blockCacheShardsFor(O.Jobs);
  C.Metrics = O.Metrics;
  return C;
}

std::string MixChecker::gammaSig(const TypeEnv &Gamma) {
  // TypeEnv is an ordered map, so iteration (and hence the signature) is
  // deterministic.
  std::string Sig;
  for (const auto &[Name, Ty] : Gamma) {
    Sig += Name;
    Sig += ':';
    Sig += Ty->str();
    Sig += ';';
  }
  return Sig;
}

SymExecOptions MixChecker::executorOptionsFor(const MixOptions &Opts) {
  SymExecOptions E = Opts.Exec;
  // Under concolic exploration the driver owns path enumeration; the
  // executor follows one concrete run at a time.
  if (Opts.Explore == MixOptions::Exploration::Concolic)
    E.Strat = SymExecOptions::Strategy::Concolic;
  return E;
}

const Type *MixChecker::checkTyped(const Expr *E, const TypeEnv &Gamma) {
  return Checker.check(E, Gamma);
}

const Type *MixChecker::checkSymbolic(const Expr *E, const TypeEnv &Gamma) {
  return checkSymbolicCore(E, Gamma, E->loc());
}

const Type *MixChecker::typeOfSymbolicBlock(const BlockExpr *Block,
                                            const TypeEnv &Gamma) {
  // Counts boundary-rule applications, cached or not (a hit still means
  // the rule fired at this site).
  ++Statistics.SymBlocksChecked;
  CSymBlocks.inc();
  Engine::Key K{Block, gammaSig(Gamma)};
  engine::RunHooks<const Type *> H;
  H.Eval = [&] {
    return checkSymbolicCore(Block->body(), Gamma, Block->loc());
  };
  // Failures reported diagnostics; re-diagnose on later calls instead of
  // silently replaying null.
  H.ShouldCache = [](const Type *T) { return T != nullptr; };
  H.KeepIterating = [](const Type *T) { return T != nullptr; };
  return Eng.runSymbolic(K, BlockStack, H);
}

const Type *MixChecker::typeOfTypedBlock(const BlockExpr *Block,
                                         const SymEnv &Env,
                                         const SymState &State) {
  ++Statistics.TypedBlocksExecuted;
  CTypedBlocks.inc();
  obs::PhaseTimer Timer(Opts.Telemetry, obs::Phase::BlockExec);
  obs::TraceSpan Span(Opts.Trace, "mix.block.typed", "mix");
  // Closures entering the typed world through Sigma or memory are
  // trusted at their arrow types; verify their bodies first.
  for (const auto &[Name, Value] : Env)
    if (!verifyEscapingClosures(Value, nullptr, Block->loc()))
      return nullptr;
  if (!verifyEscapingClosures(nullptr, State.Mem, Block->loc()))
    return nullptr;

  // |- Sigma : Gamma — every variable's type is the type annotation of
  // the symbolic value it is bound to.
  TypeEnv Gamma;
  for (const auto &[Name, Value] : Env)
    Gamma[Name] = Value->type();

  Engine::Key K{Block, gammaSig(Gamma)};
  engine::RunHooks<const Type *> H;
  H.Eval = [&] { return Checker.check(Block->body(), Gamma); };
  H.ShouldCache = [](const Type *T) { return T != nullptr; };
  H.KeepIterating = [](const Type *T) { return T != nullptr; };
  return Eng.runTyped(K, BlockStack, H);
}

bool MixChecker::verifyClosure(const SymExpr *Closure, SourceLoc Loc) {
  // Memoized in the engine's typed cache, keyed per closure value
  // (failures included, so a bad closure is reported once). A cyclic
  // re-verification — the type checker can re-enter via nested blocks —
  // hits the Section 4.4 stack cut-off and answers with the assumption
  // that the closure's annotation holds.
  Engine::Key K{Closure, std::string()};
  engine::RunHooks<const Type *> H;
  H.Init = [&]() -> const Type * { return Closure->type(); };
  H.Eval = [&]() -> const Type * {
    const FunExpr *Fun = Syms.closureFun(Closure);
    TypeEnv Gamma;
    for (const auto &[Name, Captured] : Syms.closureEnv(Closure))
      Gamma[Name] = Captured->type();
    if (Checker.check(Fun, Gamma))
      return Closure->type();
    Diags.error(Loc,
                "function value escapes its symbolic block, so its "
                "body must type check on all inputs",
                DiagID::EscapedClosure);
    return nullptr;
  };
  // A failed check cannot improve by re-running with a weaker assumption.
  H.KeepIterating = [](const Type *T) { return T != nullptr; };
  return Eng.runTyped(K, BlockStack, H) != nullptr;
}

bool MixChecker::verifyEscapingClosures(const SymExpr *Value,
                                        const MemNode *Mem, SourceLoc Loc) {
  std::vector<const SymExpr *> Closures;
  Syms.collectClosures(Value, Closures);
  Syms.collectClosuresInMemory(Mem, Closures);
  for (const SymExpr *C : Closures)
    if (!verifyClosure(C, Loc))
      return false;
  return true;
}

std::vector<mix::prov::ModelBinding>
MixChecker::witnessBindings(const SymEnv &Env, const smt::SmtModel &Model) {
  std::vector<prov::ModelBinding> Out;
  for (const auto &[Name, Value] : Env) {
    if (Value->kind() != SymKind::Var)
      continue;
    // Refs and functions have no concise concrete rendering.
    if (!Value->type()->isInt() && !Value->type()->isBool())
      continue;
    const smt::Term *T = Translator.translate(Value);
    std::string Rendered;
    if (T->kind() == smt::TermKind::IntVar && Model.Complete)
      Rendered = std::to_string(Model.intValue(T->varId()));
    else if (T->kind() == smt::TermKind::BoolVar)
      Rendered = Model.boolValue(T->varId()) ? "true" : "false";
    else
      continue;
    Out.push_back({Name, Rendered});
  }
  return Out;
}

std::string MixChecker::describeWitness(const SymEnv &Env,
                                        const smt::SmtModel &Model) {
  std::string Out;
  for (const prov::ModelBinding &B : witnessBindings(Env, Model)) {
    if (!Out.empty())
      Out += ", ";
    Out += B.Name + " = " + B.Value;
  }
  return Out;
}

void MixChecker::reportPathError(const PathResult &P, SourceLoc BlockLoc,
                                 const SymEnv &Env, const smt::SmtModel &Model,
                                 const std::string &DecidedBy) {
  SourceLoc Loc = P.ErrorLoc.isValid() ? P.ErrorLoc : BlockLoc;
  size_t Idx = Diags.report(DiagKind::Error, Loc,
                            P.ErrorMessage + " [on path " +
                                P.State.Path->str() + "]",
                            DiagID::SymExecError);
  if (Opts.Prov) {
    auto Payload = std::make_shared<prov::DiagProvenance>();
    prov::WitnessPath W;
    W.Steps = P.State.Trail;
    W.PathCondition = P.State.Path->str();
    W.Model = witnessBindings(Env, Model);
    W.ModelComplete = Model.Complete;
    W.DecidedBy = DecidedBy;
    Payload->Witness = std::move(W);
    Diags.attachProvenance(Idx, std::move(Payload));
    Opts.Prov->countWitness();
  }
  std::string Witness = describeWitness(Env, Model);
  if (!Witness.empty())
    Diags.note(Loc, "for example, when " + Witness, DiagID::WitnessNote);
}

std::vector<char>
MixChecker::classifyFeasibility(const std::vector<PathResult> &Paths) {
  std::vector<char> Feasible(Paths.size(), 1);
  if (!Pool)
    Pool = std::make_unique<rt::ThreadPool>(Opts.Jobs, Opts.Trace, "mix");
  // The symbol arena is quiescent here (enumeration finished), so each
  // worker may translate against it with a private term arena; solver
  // verdicts are deterministic per formula, so the feasible/infeasible
  // split matches what the shared solver would say.
  Pool->parallelFor(Paths.size(), [&](size_t I) {
    smt::SolverPool::Lease Lease = Solvers.acquire();
    SymToSmt LocalTranslator(Syms, Lease.terms());
    Feasible[I] =
        Lease.solver().checkSat(LocalTranslator.translate(
            Paths[I].State.Path)) != smt::SolveResult::Unsat;
  });
  return Feasible;
}

const Type *MixChecker::checkSymbolicCore(const Expr *Body,
                                          const TypeEnv &Gamma,
                                          SourceLoc Loc) {
  obs::PhaseTimer Timer(Opts.Telemetry, obs::Phase::BlockExec);
  obs::TraceSpan Span(Opts.Trace, "mix.block.sym", "mix");
  // TSymBlock, premise 1: Sigma maps each x in dom(Gamma) to a fresh
  // alpha_x : Gamma(x).
  SymEnv Env;
  for (const auto &[Name, Ty] : Gamma)
    Env[Name] = Syms.freshVar(Ty, /*IsAllocAddr=*/false, Name);

  // Premise 2: run from S = <true ; mu> with mu fresh, enumerating every
  // path — either eagerly (SEIf-True and SEIf-False) or through the
  // DART-style concolic loop.
  SymExecResult Result;
  if (Opts.Explore == MixOptions::Exploration::Concolic) {
    SymState Init;
    Init.Path = Syms.trueGuard();
    Init.Mem = Syms.freshBaseMemory();
    ConcolicOptions COpts;
    COpts.MaxRuns = Opts.MaxConcolicRuns;
    ConcolicExploreResult CR = exploreConcolic(*Executor, *Solver, Translator,
                                               Body, Env, Init, COpts);
    Result.Paths = std::move(CR.Paths);
    Result.ResourceLimitHit = CR.BudgetExhausted;
  } else {
    Result = Executor->run(Body, Env);
  }
  Statistics.PathsExplored += (unsigned)Result.Paths.size();
  CPaths.add(Result.Paths.size());

  if (Result.ResourceLimitHit) {
    Diags.error(Loc,
                "symbolic block exceeded the execution budget; "
                "cannot establish exhaustiveness",
                DiagID::ExecBudget);
    return nullptr;
  }

  // Classify outcomes. Error paths whose path condition is infeasible are
  // discarded ("eventually, when symbolic execution completes, we will
  // check the path condition and discard the path if it is infeasible").
  std::vector<const PathResult *> Live;
  if (Opts.Jobs > 1 && Result.Paths.size() > 1) {
    // Paths are independent once enumerated: feasibility is checked
    // concurrently (one pooled solver per worker), then the results are
    // reported at the join in path order. The witness model for a
    // feasible error path is re-derived on the shared solver so the
    // diagnostic text matches the serial classification exactly.
    std::vector<char> Feasible = classifyFeasibility(Result.Paths);
    for (size_t I = 0; I != Result.Paths.size(); ++I) {
      const PathResult &P = Result.Paths[I];
      if (!Feasible[I]) {
        ++Statistics.InfeasiblePathsDiscarded;
        CInfeasible.inc();
        continue;
      }
      if (P.IsError) {
        smt::SmtModel Model;
        std::string DecidedBy;
        Solver->checkSatDecided(Translator.translate(P.State.Path), &Model,
                                DecidedBy);
        reportPathError(P, Loc, Env, Model, DecidedBy);
        return nullptr;
      }
      Live.push_back(&P);
    }
  } else {
    for (const PathResult &P : Result.Paths) {
      smt::SmtModel Model;
      std::string DecidedBy;
      if (Solver->checkSatDecided(Translator.translate(P.State.Path), &Model,
                                  DecidedBy) ==
          smt::SolveResult::Unsat) {
        ++Statistics.InfeasiblePathsDiscarded;
        CInfeasible.inc();
        continue;
      }
      if (P.IsError) {
        // A concrete witness makes the report actionable: values for the
        // block's inputs under which the failing path is taken.
        reportPathError(P, Loc, Env, Model, DecidedBy);
        return nullptr;
      }
      Live.push_back(&P);
    }
  }

  if (Live.empty()) {
    Diags.error(Loc, "symbolic block has no feasible path",
                DiagID::NoFeasiblePath);
    return nullptr;
  }

  // Premise: all paths produce values u_i : tau of one type tau.
  const Type *Tau = Live.front()->Value->type();
  for (const PathResult *P : Live) {
    if (P->Value->type() != Tau) {
      Diags.error(Loc,
                  "symbolic block paths disagree on the result type: " +
                      Tau->str() + " vs " + P->Value->type()->str(),
                  DiagID::ResultTypeMismatch);
      return nullptr;
    }
  }

  // Escaping closures: the enclosing typed world will trust the block's
  // value (and anything reachable through Gamma's references) at its
  // annotated type, so function bodies leaving the block must type check.
  for (const PathResult *P : Live)
    if (!verifyEscapingClosures(P->Value, P->State.Mem, Loc))
      return nullptr;

  // Premise: |- m(S_i) ok — all paths leave memory consistently typed.
  if (Opts.CheckFinalMemory) {
    for (const PathResult *P : Live) {
      if (!checkMemoryOk(P->State.Mem).Ok) {
        Diags.error(Loc,
                    "symbolic block leaves memory inconsistently "
                    "typed on some path (|- m ok fails)",
                    DiagID::MemoryInconsistent);
        return nullptr;
      }
    }
  }

  // Premise: exhaustive(g(S_1), ..., g(S_n)) — the disjunction of the
  // final path conditions must be a tautology.
  if (Opts.Exhaustive == MixOptions::Exhaustiveness::Require) {
    ++Statistics.ExhaustivenessChecks;
    CExhaustive.inc();
    std::vector<const smt::Term *> Guards;
    Guards.reserve(Live.size());
    for (const PathResult *P : Live)
      Guards.push_back(Translator.translate(P->State.Path));
    if (!Solver->isDefinitelyValid(Terms.orList(Guards))) {
      Diags.error(Loc,
                  "symbolic block paths are not exhaustive: the "
                  "disjunction of path conditions is not a tautology",
                  DiagID::PathsNotExhaustive);
      return nullptr;
    }
  }

  return Tau;
}
