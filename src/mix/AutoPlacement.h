//===--- AutoPlacement.h - Automatic symbolic-block insertion ---*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The refinement loop the paper envisions but leaves to future work:
/// "we leave the placement of block annotations to the programmer, but we
/// envision that an automated refinement algorithm could heuristically
/// insert blocks as needed" (Section 1), elaborated in Section 4.6 as
/// "begin with just typed blocks and then incrementally add symbolic
/// blocks to refine the result. This approach resembles abstraction
/// refinement."
///
/// The heuristic here: type check; on failure, walk the ancestor chain of
/// the error location from the innermost enclosing expression outward,
/// wrapping each candidate in a symbolic block and re-checking; commit
/// the first wrap that makes the program check (or that moves the error,
/// enabling progress on multi-error programs); repeat up to a refinement
/// budget.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_MIX_AUTOPLACEMENT_H
#define MIX_MIX_AUTOPLACEMENT_H

#include "mix/MixChecker.h"

namespace mix {

/// Outcome of the refinement loop.
struct AutoPlacementResult {
  /// The (possibly annotated) program; the original when no refinement
  /// was needed or none helped.
  const Expr *Program = nullptr;
  /// The program type when checking succeeded; null when refinement gave
  /// up (the last failure's diagnostics are in the engine passed in).
  const Type *ResultType = nullptr;
  unsigned BlocksInserted = 0;
  unsigned Refinements = 0;
};

/// Options for the refinement loop.
struct AutoPlacementOptions {
  MixOptions Mix;
  unsigned MaxRefinements = 8;
  /// Worker threads for evaluating wrap candidates. Each refinement step
  /// tries the ancestor chain of the error location; the candidate checks
  /// are independent (private checker and diagnostics per candidate) and
  /// run concurrently, but cloning stays serial (the AST context is
  /// shared) and the committed wrap is still the innermost helpful one,
  /// so the refinement sequence matches the serial loop exactly.
  unsigned Jobs = 1;
};

/// Runs the abstraction-refinement loop on \p Program under \p Gamma.
/// Diagnostics for the final (successful or failed) check are reported to
/// \p Diags; intermediate attempts stay silent.
AutoPlacementResult
autoPlaceSymbolicBlocks(AstContext &Ctx, const Expr *Program,
                        const TypeEnv &Gamma, DiagnosticEngine &Diags,
                        AutoPlacementOptions Opts = AutoPlacementOptions());

} // namespace mix

#endif // MIX_MIX_AUTOPLACEMENT_H
