//===--- MixChecker.h - The MIX analysis driver -----------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MixChecker wires the off-the-shelf type checker and symbolic executor
/// together with the two mix rules of Figure 4:
///
///   TSymBlock   — to *type check* `{s e s}`, build Sigma mapping each
///                 x in Gamma to a fresh alpha_x : Gamma(x), run the
///                 symbolic executor from <true ; mu> over all paths,
///                 require every feasible path to succeed with the same
///                 type tau and a consistent memory, and require
///                 exhaustive(g1, ..., gn) — the disjunction of the path
///                 conditions must be a tautology.
///
///   SETypBlock  — to *symbolically execute* `{t e t}`, derive Gamma with
///                 |- Sigma : Gamma, check |- m ok, type check e, and
///                 continue with a fresh alpha : tau and havocked memory.
///
/// This is the paper's core claim made executable: both analyses run
/// unmodified; only these boundary rules exchange information.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_MIX_MIXCHECKER_H
#define MIX_MIX_MIXCHECKER_H

#include "engine/MixEngine.h"
#include "runtime/ThreadPool.h"
#include "solver/SolverPool.h"
#include "symexec/SymExecutor.h"
#include "types/TypeChecker.h"

#include <memory>

namespace mix {

/// Configuration of the mixed analysis.
struct MixOptions {
  SymExecOptions Exec;

  /// Worker threads for classifying a symbolic block's paths (the
  /// feasibility query per enumerated path is the solver-bound hot loop).
  /// 1 keeps the serial classification, byte-for-byte identical in
  /// diagnostics; N > 1 checks paths concurrently on a work-stealing
  /// pool with one solver instance per worker, then reports at the join
  /// in path order — same verdicts, same messages.
  unsigned Jobs = 1;

  /// Section 3.2: exhaustive() can be required (sound) or weakened to a
  /// "good enough check" (the unsound-but-useful mode of typical symbolic
  /// executors).
  enum class Exhaustiveness {
    Require,        ///< Reject unless path conditions form a tautology.
    AssumeComplete, ///< Trust the executor's path enumeration.
  };
  Exhaustiveness Exhaustive = Exhaustiveness::Require;

  /// Require |- m ok on every exit state of a symbolic block (the
  /// "all paths leave memory in a consistent state" premise).
  bool CheckFinalMemory = true;

  /// How symbolic blocks enumerate paths. AllPaths is the formal rule;
  /// Concolic is the DART/CUTE loop of Section 3.1 (one path per
  /// concrete run, flips solved via model extraction) — still sound,
  /// because exhaustive() rejects when the run budget truncated the
  /// enumeration.
  enum class Exploration { AllPaths, Concolic };
  Exploration Explore = Exploration::AllPaths;
  unsigned MaxConcolicRuns = 512;

  smt::SmtOptions Smt;

  /// Which solver backend answers feasibility/exhaustiveness queries,
  /// and whether each instance (the shared solver and every pooled
  /// worker) races the full registered portfolio.
  smt::SolverSpec Solver;

  /// Observability sinks (see src/observe/). The checker copies these
  /// into Smt and Exec, so solver latency histograms and executor
  /// fork/defer/havoc events land in the same registry/trace; it also
  /// maintains live "mix.*" counters mirroring MixStats and wraps each
  /// block boundary in a "mix.block.sym" / "mix.block.typed" span. Null
  /// (the default) disables everything at one branch per site.
  obs::MetricsRegistry *Metrics = nullptr;
  obs::TraceSink *Trace = nullptr;

  /// Per-request telemetry context (see src/observe/Phase.h). Copied into
  /// Smt and Exec like the sinks above; block boundaries and solver
  /// queries attribute their wall time to the request's phase breakdown.
  /// Null — the default — costs one branch per site.
  obs::RequestTelemetry *Telemetry = nullptr;

  /// Provenance recording (see src/provenance/). When attached — the
  /// checker copies it into Exec — every feasible-path error carries a
  /// witness path: the branch trail, the path condition, and the solver
  /// model already extracted for the witness note. Null records nothing.
  prov::ProvenanceSink *Prov = nullptr;
};

/// Statistics describing one analysis run.
struct MixStats {
  unsigned SymBlocksChecked = 0;
  unsigned TypedBlocksExecuted = 0;
  unsigned PathsExplored = 0;
  unsigned InfeasiblePathsDiscarded = 0;
  unsigned ExhaustivenessChecks = 0;
};

/// The mixed analysis: a provably sound combination of type checking and
/// symbolic execution (Theorem 1 of the paper).
class MixChecker : public SymBlockOracle, public TypedBlockOracle {
public:
  MixChecker(TypeContext &Types, DiagnosticEngine &Diags,
             MixOptions Opts = MixOptions());

  /// Analyzes \p E with the outermost scope treated as a typed block.
  /// Returns the program type, or null after reporting diagnostics.
  const Type *checkTyped(const Expr *E, const TypeEnv &Gamma = TypeEnv());

  /// Analyzes \p E with the outermost scope treated as a symbolic block.
  const Type *checkSymbolic(const Expr *E, const TypeEnv &Gamma = TypeEnv());

  // --- Mix rules (the oracles installed into both analyses) -------------

  /// TSymBlock (Figure 4).
  const Type *typeOfSymbolicBlock(const BlockExpr *Block,
                                  const TypeEnv &Gamma) override;

  /// SETypBlock (Figure 4): derives Gamma from Sigma (|- Sigma : Gamma)
  /// and type checks the block body. Closure values reachable from Sigma
  /// or memory are verified first (see verifyEscapingClosures).
  const Type *typeOfTypedBlock(const BlockExpr *Block, const SymEnv &Env,
                               const SymState &State) override;

  const MixStats &stats() const { return Statistics; }
  smt::ISolver &solver() { return *Solver; }
  SymArena &symbols() { return Syms; }

  /// Section 4.3 block-cache statistics (shared engine layer). The
  /// symbolic cache memoizes TSymBlock results per (block, Gamma); the
  /// typed cache memoizes SETypBlock results and escaped-closure
  /// verification verdicts.
  engine::BlockCacheStats symCacheStats() const { return Eng.symCacheStats(); }
  engine::BlockCacheStats typedCacheStats() const {
    return Eng.typedCacheStats();
  }

private:
  /// Engine instantiation for the formal MIX domain. A block's calling
  /// context (Section 4.3) is its AST node plus a rendered Gamma
  /// signature; both block sides summarize to the result type (null =
  /// the analysis failed and diagnostics were reported).
  struct EngineDomain {
    using Key = engine::NodeContextKey;
    using KeyHash = engine::NodeContextKey::Hash;
    using SymOutcome = const Type *;
    using TypedOutcome = const Type *;
    static constexpr const char *Name = "mix";
  };
  using Engine = engine::MixEngine<EngineDomain>;

  /// The engine configuration implied by \p O (cache sharding, metrics).
  static Engine::Config engineConfig(const MixOptions &O);

  /// Renders Gamma as a stable cache-key signature ("x:int;y:bool;").
  static std::string gammaSig(const TypeEnv &Gamma);

  /// Shared body of TSymBlock and checkSymbolic: run the executor over
  /// all paths of \p Body from Gamma-derived inputs and validate the
  /// premises of the rule. \p Loc anchors diagnostics.
  const Type *checkSymbolicCore(const Expr *Body, const TypeEnv &Gamma,
                                SourceLoc Loc);

  /// Closure values carry arrow-type annotations that the executor only
  /// validates when it *applies* them; when a closure escapes across a
  /// block boundary (as a block result, through Sigma, or stored in
  /// memory) the receiving analysis trusts the annotation, so the body
  /// must be type checked here. Returns false (with diagnostics) when
  /// some escaping closure's body does not check. Results are memoized.
  bool verifyEscapingClosures(const SymExpr *Value, const MemNode *Mem,
                              SourceLoc Loc);
  bool verifyClosure(const SymExpr *Closure, SourceLoc Loc);

  /// The model's values for the block's named scalar inputs, in name
  /// order — the concrete counterexample attached to feasible-path error
  /// reports.
  std::vector<prov::ModelBinding> witnessBindings(const SymEnv &Env,
                                                  const smt::SmtModel &Model);

  /// Renders witnessBindings as "x = -3, b = true".
  std::string describeWitness(const SymEnv &Env, const smt::SmtModel &Model);

  /// Reports the SymExecError for failed path \p P (with its witness
  /// note) and, when provenance is on, attaches the witness-path payload.
  void reportPathError(const PathResult &P, SourceLoc BlockLoc,
                       const SymEnv &Env, const smt::SmtModel &Model,
                       const std::string &DecidedBy);

  /// The executor configuration implied by \p Opts (adjusts the strategy
  /// for concolic exploration).
  static SymExecOptions executorOptionsFor(const MixOptions &Opts);

  /// Feasibility of every path in \p Paths, computed concurrently when
  /// Opts.Jobs > 1 (each worker leases a pooled solver and translates
  /// against the quiescent symbol arena). Serial when Jobs <= 1.
  std::vector<char> classifyFeasibility(const std::vector<PathResult> &Paths);

  TypeContext &Types;
  DiagnosticEngine &Diags;
  MixOptions Opts;

  SymArena Syms;
  smt::TermArena Terms;
  std::unique_ptr<smt::ISolver> Solver;
  SymToSmt Translator;
  TypeChecker Checker;
  /// The engine SymExecOptions::ExecMode selected (--exec=ast|ir): the
  /// AST-walking SymExecutor or the compiled-IR concolic interpreter.
  std::unique_ptr<ExecEngine> Executor;
  MixStats Statistics;

  // Registry handles mirroring MixStats live (null/free without a
  // registry).
  obs::Counter CSymBlocks, CTypedBlocks, CPaths, CInfeasible, CExhaustive;

  // Parallel classification (lazily built on first use).
  smt::SolverPool Solvers;
  std::unique_ptr<rt::ThreadPool> Pool;

  // The shared engine layer: block caches plus the Section 4.4 block
  // stack. Block analysis is serial per checker instance (Jobs only
  // parallelizes path classification), so one stack suffices.
  Engine Eng;
  Engine::BlockStack BlockStack;
};

} // namespace mix

#endif // MIX_MIX_MIXCHECKER_H
