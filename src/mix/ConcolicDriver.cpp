//===--- ConcolicDriver.cpp - DART-style path exploration -------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "mix/ConcolicDriver.h"

#include <deque>
#include <set>

using namespace mix;

namespace {

/// Converts a solver model into a concrete valuation for the executor,
/// by inverting the translator's symbolic-expression-to-term map.
ConcolicSeed seedFromModel(const SymToSmt &Translator,
                           const smt::SmtModel &Model) {
  ConcolicSeed Seed;
  for (const auto &[Sym, Term] : Translator.translations()) {
    if (Term->kind() == smt::TermKind::IntVar) {
      auto It = Model.Ints.find(Term->varId());
      if (It == Model.Ints.end())
        continue;
      if (Sym->kind() == SymKind::Var && Sym->type()->isInt())
        Seed.IntVars[Sym->varId()] = It->second;
      else if (Sym->kind() == SymKind::Select && Sym->type()->isInt())
        Seed.IntSelects[Sym] = It->second;
    } else if (Term->kind() == smt::TermKind::BoolVar) {
      auto It = Model.Bools.find(Term->varId());
      if (It == Model.Bools.end())
        continue;
      if (Sym->kind() == SymKind::Var && Sym->type()->isBool())
        Seed.BoolVars[Sym->varId()] = It->second;
      else if (Sym->kind() == SymKind::Select && Sym->type()->isBool())
        Seed.BoolSelects[Sym] = It->second;
    }
  }
  return Seed;
}

} // namespace

ConcolicExploreResult mix::exploreConcolic(ExecEngine &Exec,
                                           smt::ISolver &Solver,
                                           SymToSmt &Translator,
                                           const Expr *Body,
                                           const SymEnv &Env, SymState Init,
                                           ConcolicOptions Opts) {
  ConcolicExploreResult Out;
  smt::TermArena &Terms = Translator.terms();

  // Nested explorations (through re-entrant blocks) must not clobber the
  // enclosing run's valuation.
  const ConcolicSeed *SavedSeed = Exec.concolicSeed();

  std::deque<ConcolicSeed> Worklist;
  Worklist.emplace_back(); // the all-defaults first run
  std::set<const smt::Term *> SeenPaths;
  std::set<const smt::Term *> AttemptedPrefixes;

  while (!Worklist.empty()) {
    if (Out.Runs >= Opts.MaxRuns) {
      Out.BudgetExhausted = true;
      break;
    }
    ConcolicSeed Seed = std::move(Worklist.front());
    Worklist.pop_front();

    Exec.setConcolicSeed(&Seed);
    SymExecResult RunResult = Exec.run(Body, Env, Init);
    ++Out.Runs;
    if (RunResult.ResourceLimitHit)
      Out.BudgetExhausted = true;

    for (PathResult &P : RunResult.Paths) {
      const smt::Term *PathTerm = Translator.translate(P.State.Path);
      if (!SeenPaths.insert(PathTerm).second)
        continue;
      // Schedule the flips before moving the result: negate each decision
      // under the prefix of earlier ones ("ask an SMT solver later
      // whether the path not taken was feasible").
      const smt::Term *Prefix = Translator.translate(Init.Path);
      for (const SymExpr *Decision : P.State.Decisions) {
        const smt::Term *DecTerm = Translator.translate(Decision);
        const smt::Term *Flipped =
            Terms.andTerm(Prefix, Terms.notTerm(DecTerm));
        if (AttemptedPrefixes.insert(Flipped).second) {
          smt::SmtModel Model;
          smt::SolveResult SR = Solver.checkSat(Flipped, &Model);
          if (SR == smt::SolveResult::Sat && Model.Complete)
            Worklist.push_back(seedFromModel(Translator, Model));
          else if (SR != smt::SolveResult::Unsat)
            // Sat without an extractable model, or Unknown: the flip may
            // hide a real path we cannot reach — completeness is lost.
            Out.BudgetExhausted = true;
        }
        Prefix = Terms.andTerm(Prefix, DecTerm);
      }
      Out.Paths.push_back(std::move(P));
    }
  }

  if (!Worklist.empty())
    Out.BudgetExhausted = true;
  Exec.setConcolicSeed(SavedSeed);
  return Out;
}
