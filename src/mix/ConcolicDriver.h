//===--- ConcolicDriver.h - DART-style path exploration ---------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third exploration style Section 3.1 describes: "DART and CUTE, in
/// contrast, would continue down one path as guided by an underlying
/// concrete run, but then would ask an SMT solver later whether the path
/// not taken was feasible and, if so, come back and take it eventually."
///
/// exploreConcolic() runs the executor in Strategy::Concolic repeatedly:
/// each run follows one path under a concrete valuation and records its
/// branch decisions; the driver negates each decision in turn, asks the
/// solver for a model of the flipped prefix (this is why the solver's
/// model extraction exists), and seeds new runs from the models until no
/// unexplored flip remains or the run budget is exhausted.
///
/// When the budget suffices, the paths found are exactly the feasible
/// paths, so MixChecker's exhaustive() accepts them and the mixed
/// analysis stays sound; an exhausted budget surfaces as a resource
/// failure, i.e. a rejection, never a silent hole.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_MIX_CONCOLICDRIVER_H
#define MIX_MIX_CONCOLICDRIVER_H

#include "symexec/SymExecutor.h"

namespace mix {

/// Tuning for the exploration loop.
struct ConcolicOptions {
  /// Upper bound on concrete runs (each run discovers at most one new
  /// path).
  unsigned MaxRuns = 512;
};

/// Outcome of an exploration.
struct ConcolicExploreResult {
  std::vector<PathResult> Paths;
  unsigned Runs = 0;
  /// True when MaxRuns stopped the loop with flips still pending; the
  /// path set may then be incomplete.
  bool BudgetExhausted = false;
};

/// Explores \p Body from \p Init under \p Env. \p Exec must be (or will
/// be put) in Strategy::Concolic for the duration; its previous seed is
/// restored afterwards, so nested explorations compose.
ConcolicExploreResult exploreConcolic(ExecEngine &Exec,
                                      smt::ISolver &Solver,
                                      SymToSmt &Translator, const Expr *Body,
                                      const SymEnv &Env, SymState Init,
                                      ConcolicOptions Opts = ConcolicOptions());

} // namespace mix

#endif // MIX_MIX_CONCOLICDRIVER_H
