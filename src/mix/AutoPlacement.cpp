//===--- AutoPlacement.cpp - Automatic symbolic-block insertion ------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "mix/AutoPlacement.h"

#include "runtime/ThreadPool.h"

#include <memory>

using namespace mix;

namespace {

/// Collects the chain of nodes whose subtree contains a node located at
/// \p Loc, innermost first. Returns true when found.
bool ancestorChain(const Expr *E, SourceLoc Loc,
                   std::vector<const Expr *> &Chain) {
  auto Descend = [&](const Expr *Sub) {
    return Sub && ancestorChain(Sub, Loc, Chain);
  };

  bool Found = false;
  switch (E->kind()) {
  case ExprKind::Var:
  case ExprKind::IntLit:
  case ExprKind::BoolLit:
    break;
  case ExprKind::Binary:
    Found = Descend(cast<BinaryExpr>(E)->lhs()) ||
            Descend(cast<BinaryExpr>(E)->rhs());
    break;
  case ExprKind::Not:
    Found = Descend(cast<NotExpr>(E)->sub());
    break;
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    Found = Descend(I->cond()) || Descend(I->thenExpr()) ||
            Descend(I->elseExpr());
    break;
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    Found = Descend(L->init()) || Descend(L->body());
    break;
  }
  case ExprKind::Ref:
    Found = Descend(cast<RefExpr>(E)->sub());
    break;
  case ExprKind::Deref:
    Found = Descend(cast<DerefExpr>(E)->sub());
    break;
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    Found = Descend(A->target()) || Descend(A->value());
    break;
  }
  case ExprKind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    Found = Descend(S->first()) || Descend(S->second());
    break;
  }
  case ExprKind::Block:
    Found = Descend(cast<BlockExpr>(E)->body());
    break;
  case ExprKind::Fun:
    Found = Descend(cast<FunExpr>(E)->body());
    break;
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    Found = Descend(A->fn()) || Descend(A->arg());
    break;
  }
  }

  if (Found || E->loc() == Loc) {
    Chain.push_back(E);
    return true;
  }
  return false;
}

/// Clones \p E, wrapping the (pointer-identical) node \p Target in a
/// symbolic block.
const Expr *cloneWrapping(AstContext &Ctx, const Expr *E,
                          const Expr *Target) {
  auto Wrap = [&](const Expr *Cloned) -> const Expr * {
    if (E != Target)
      return Cloned;
    return Ctx.make<BlockExpr>(E->loc(), BlockKind::Symbolic, Cloned);
  };
  auto Recurse = [&](const Expr *Sub) {
    return cloneWrapping(Ctx, Sub, Target);
  };

  switch (E->kind()) {
  case ExprKind::Var:
    return Wrap(Ctx.make<VarExpr>(E->loc(), cast<VarExpr>(E)->name()));
  case ExprKind::IntLit:
    return Wrap(Ctx.make<IntLitExpr>(E->loc(),
                                     cast<IntLitExpr>(E)->value()));
  case ExprKind::BoolLit:
    return Wrap(Ctx.make<BoolLitExpr>(E->loc(),
                                      cast<BoolLitExpr>(E)->value()));
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return Wrap(Ctx.make<BinaryExpr>(E->loc(), B->op(), Recurse(B->lhs()),
                                     Recurse(B->rhs())));
  }
  case ExprKind::Not:
    return Wrap(
        Ctx.make<NotExpr>(E->loc(), Recurse(cast<NotExpr>(E)->sub())));
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    return Wrap(Ctx.make<IfExpr>(E->loc(), Recurse(I->cond()),
                                 Recurse(I->thenExpr()),
                                 Recurse(I->elseExpr())));
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    return Wrap(Ctx.make<LetExpr>(E->loc(), L->name(), L->declaredType(),
                                  Recurse(L->init()), Recurse(L->body())));
  }
  case ExprKind::Ref:
    return Wrap(
        Ctx.make<RefExpr>(E->loc(), Recurse(cast<RefExpr>(E)->sub())));
  case ExprKind::Deref:
    return Wrap(
        Ctx.make<DerefExpr>(E->loc(), Recurse(cast<DerefExpr>(E)->sub())));
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    return Wrap(Ctx.make<AssignExpr>(E->loc(), Recurse(A->target()),
                                     Recurse(A->value())));
  }
  case ExprKind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    return Wrap(Ctx.make<SeqExpr>(E->loc(), Recurse(S->first()),
                                  Recurse(S->second())));
  }
  case ExprKind::Block: {
    const auto *B = cast<BlockExpr>(E);
    return Wrap(Ctx.make<BlockExpr>(E->loc(), B->blockKind(),
                                    Recurse(B->body())));
  }
  case ExprKind::Fun: {
    const auto *F = cast<FunExpr>(E);
    return Wrap(Ctx.make<FunExpr>(E->loc(), F->param(), F->paramType(),
                                  F->resultType(), Recurse(F->body())));
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    return Wrap(Ctx.make<AppExpr>(E->loc(), Recurse(A->fn()),
                                  Recurse(A->arg())));
  }
  }
  return E;
}

/// One silent check; returns the type (null on failure) and the first
/// error location through \p ErrLocOut.
const Type *checkSilently(AstContext &Ctx, const Expr *Program,
                          const TypeEnv &Gamma, const MixOptions &Opts,
                          SourceLoc &ErrLocOut) {
  DiagnosticEngine Local;
  MixChecker Mix(Ctx.types(), Local, Opts);
  const Type *T = Mix.checkTyped(Program, Gamma);
  if (!T) {
    for (const Diagnostic &D : Local.diagnostics())
      if (D.Kind == DiagKind::Error && D.Loc.isValid()) {
        ErrLocOut = D.Loc;
        break;
      }
  }
  return T;
}

} // namespace

AutoPlacementResult
mix::autoPlaceSymbolicBlocks(AstContext &Ctx, const Expr *Program,
                             const TypeEnv &Gamma, DiagnosticEngine &Diags,
                             AutoPlacementOptions Opts) {
  AutoPlacementResult Result;
  Result.Program = Program;

  const Expr *Current = Program;
  SourceLoc LastErrLoc;
  std::unique_ptr<rt::ThreadPool> Pool;

  for (unsigned Iter = 0; Iter != Opts.MaxRefinements; ++Iter) {
    SourceLoc ErrLoc;
    const Type *T = checkSilently(Ctx, Current, Gamma, Opts.Mix, ErrLoc);
    if (T) {
      // Re-run loudly so callers see any warnings of the final program.
      MixChecker Final(Ctx.types(), Diags, Opts.Mix);
      Result.ResultType = Final.checkTyped(Current, Gamma);
      Result.Program = Current;
      Result.Refinements = Iter;
      return Result;
    }
    if (!ErrLoc.isValid())
      break; // cannot localize the failure

    std::vector<const Expr *> Chain;
    if (!ancestorChain(Current, ErrLoc, Chain))
      break;

    // Try candidates innermost-first and commit the first wrap that
    // helps — either the whole program now checks, or the failure moved
    // elsewhere (a multi-error program: the next iteration attacks the
    // next error). Preferring the innermost helpful wrap keeps symbolic
    // regions small, the cheap end of the paper's trade-off.
    std::vector<const Expr *> Candidates;
    for (const Expr *Candidate : Chain) {
      if (const auto *B = dyn_cast<BlockExpr>(Candidate))
        if (B->blockKind() == BlockKind::Symbolic)
          continue; // wrapping a symbolic block again cannot help
      Candidates.push_back(Candidate);
    }

    const Expr *Progress = nullptr;
    if (Opts.Jobs > 1 && Candidates.size() > 1) {
      // Clone every candidate serially (the AST context is shared), then
      // check them concurrently — each check builds its own checker and
      // diagnostics engine, so candidates don't interact. The scan below
      // still commits the innermost helpful wrap, so the refinement
      // sequence is the same as the serial loop's.
      std::vector<const Expr *> Wrapped(Candidates.size());
      for (size_t I = 0; I != Candidates.size(); ++I)
        Wrapped[I] = cloneWrapping(Ctx, Current, Candidates[I]);
      MixOptions CandOpts = Opts.Mix;
      CandOpts.Jobs = 1; // candidates are the unit of parallelism here
      std::vector<char> Helps(Candidates.size(), 0);
      if (!Pool)
        Pool = std::make_unique<rt::ThreadPool>(Opts.Jobs);
      Pool->parallelFor(Candidates.size(), [&](size_t I) {
        SourceLoc NewErrLoc;
        const Type *WT =
            checkSilently(Ctx, Wrapped[I], Gamma, CandOpts, NewErrLoc);
        Helps[I] = WT || (NewErrLoc.isValid() && !(NewErrLoc == ErrLoc));
      });
      for (size_t I = 0; I != Candidates.size(); ++I) {
        if (Helps[I]) {
          Progress = Wrapped[I];
          break;
        }
      }
    } else {
      for (const Expr *Candidate : Candidates) {
        const Expr *Wrapped = cloneWrapping(Ctx, Current, Candidate);
        SourceLoc NewErrLoc;
        const Type *WT =
            checkSilently(Ctx, Wrapped, Gamma, Opts.Mix, NewErrLoc);
        if (WT || (NewErrLoc.isValid() && !(NewErrLoc == ErrLoc))) {
          Progress = Wrapped;
          break;
        }
      }
    }

    if (!Progress || (LastErrLoc.isValid() && LastErrLoc == ErrLoc &&
                      Progress == Current))
      break;
    LastErrLoc = ErrLoc;
    Current = Progress;
    ++Result.BlocksInserted;
    Result.Refinements = Iter + 1;
  }

  // Gave up: report the last failure loudly.
  MixChecker Final(Ctx.types(), Diags, Opts.Mix);
  Result.ResultType = Final.checkTyped(Current, Gamma);
  Result.Program = Current;
  return Result;
}
