//===--- Mixy.h - The MIXY analysis driver ----------------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MIXY (Section 4): mixes null/nonnull type qualifier inference with the
/// C symbolic executor at function granularity.
///
///  - Analysis starts in typed or symbolic mode at an entry function.
///  - In typed mode, qualifier inference covers every function reachable
///    from the entry "up to the frontier of any functions that are marked
///    with MIX(symbolic)"; each frontier call switches to the symbolic
///    executor through QualSymHook.
///  - In symbolic mode, execution proceeds through unmarked functions and
///    switches to inference at MIX(typed) functions through
///    TypedCallHook.
///  - Translations follow Section 4.1: types to symbolic values seed
///    pointers as nonnull (fresh location) or maybe-null
///    ((alpha ? loc : 0)), with unconstrained qualifier variables treated
///    optimistically as nonnull; symbolic values to types ask the solver
///    whether g and (s = 0) is satisfiable and add null constraints.
///  - Optimism makes a fixpoint necessary: symbolic blocks re-run when
///    later-discovered constraints change their calling context
///    (Section 4.1's two-symbolic-block example).
///  - Aliasing is restored at symbolic-to-typed transitions using the
///    may-points-to pre-pass (Section 4.2).
///  - Block results are cached per compatible calling context
///    (Section 4.3) in a sharded, mutex-striped BlockCache, and recursion
///    between blocks is resolved with a block stack and assumption
///    iteration (Section 4.4).
///
/// Parallelism (Jobs > 1): symbolic blocks are independent at their
/// boundaries — all a block exchanges with its caller is a calling
/// context (the BlockKey) and a translated summary (the SymOutcome) — so
/// each fixpoint round evaluates the round's distinct calling contexts
/// concurrently on a work-stealing pool and joins at a round barrier,
/// where summaries are applied to the qualifier graph in deterministic
/// site order. Frontier calls met during constraint generation are
/// *deferred* to the first round barrier instead of being analyzed
/// inline; that is just more of the optimism the paper already requires a
/// fixpoint for, and the qualifier constraint system is monotone, so the
/// rounds converge to the same least solution as the serial
/// Gauss-Seidel-style loop. Every worker owns its executor, solver, term
/// arena, block stack, and diagnostic buffer; the shared qualifier graph
/// is only touched under a lock (by nested symbolic-to-typed switches) or
/// at barriers. With Jobs <= 1 the original serial path runs unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_MIXY_MIXY_H
#define MIX_MIXY_MIXY_H

#include "csym/CSymExecutor.h"
#include "mixy/BlockCache.h"
#include "ptranal/PointsTo.h"
#include "qual/QualInference.h"
#include "runtime/ThreadPool.h"
#include "solver/SolverPool.h"

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace mix::c {

/// Configuration of a MIXY run.
struct MixyOptions {
  /// Cache block analysis results per calling context (Section 4.3).
  bool EnableCache = true;
  /// Restore aliasing relationships via the points-to pre-pass at
  /// symbolic-to-typed transitions (Section 4.2).
  bool RestoreAliasing = true;
  unsigned MaxFixpointIterations = 16;
  unsigned MaxRecursionIterations = 8;
  /// Worker threads for block-level parallelism. 1 (the default) is the
  /// serial engine, byte-for-byte identical to the pre-parallel driver;
  /// N > 1 evaluates each fixpoint round's symbolic blocks on N workers.
  unsigned Jobs = 1;
  CSymOptions Sym;
  QualOptions Qual;
  smt::SmtOptions Smt;

  /// Observability sinks (see src/observe/). The analysis copies these
  /// into Smt (solver counters/latency), the block caches
  /// ("mixy.cache.sym.*" / "mixy.cache.typed.*" counters), and the
  /// thread pool (per-worker task spans); the fixpoint driver adds
  /// "mixy.round" / "mixy.block.sym" / "mixy.block.typed" spans and
  /// publishes the MixyStats fields as "mixy.*" counters when the run
  /// finishes. Null (the default) disables all of it at one branch per
  /// site.
  obs::MetricsRegistry *Metrics = nullptr;
  obs::TraceSink *Trace = nullptr;
};

/// Statistics of a MIXY run.
struct MixyStats {
  unsigned SymbolicBlockRuns = 0;     ///< csym invocations (cache misses)
  unsigned SymbolicCacheHits = 0;
  unsigned TypedBlockRuns = 0;        ///< typed-block summaries computed
  unsigned TypedCacheHits = 0;
  unsigned SymbolicCallsFromTyped = 0;
  unsigned TypedCallsFromSymbolic = 0;
  unsigned FixpointIterations = 0;
  unsigned RecursionsDetected = 0;
};

/// The MIXY analysis.
class MixyAnalysis : public QualSymHook, public TypedCallHook {
public:
  enum class StartMode { Typed, Symbolic };

  MixyAnalysis(const CProgram &Program, CAstContext &Ctx,
               DiagnosticEngine &Diags, MixyOptions Opts = MixyOptions());
  ~MixyAnalysis();

  /// Runs the full analysis from \p Entry. Returns the number of
  /// warnings (qualifier violations plus symbolic-execution warnings).
  unsigned run(StartMode Mode, const std::string &Entry = "main");

  // --- QualSymHook: typed-to-symbolic switching (Section 4.1) -----------
  bool handleSymbolicCall(QualInference &Inference, const CCall *Call,
                          const CFuncDecl *Callee,
                          const std::vector<QualVec> &ArgQuals,
                          QualVec &RetQuals) override;

  // --- TypedCallHook: symbolic-to-typed switching ------------------------
  bool callTypedFunction(CSymExecutor &Exec, CSymState &State,
                         const CCall *Call, const CFuncDecl *Callee,
                         const std::vector<CSymValue> &Args,
                         CSymValue &RetOut) override;

  const MixyStats &stats() const { return Statistics; }
  QualInference &qualifiers() { return Qual; }
  CSymExecutor &executor() { return Exec; }
  PointsToAnalysis &pointsTo() { return PtrAnal; }

  /// Counters of the sharded symbolic-block cache (Section 4.3).
  BlockCacheStats symCacheStats() const { return SymCache.stats(); }
  /// Counters of the sharded typed-block cache.
  BlockCacheStats typedCacheStats() const { return TypedCache.stats(); }

private:
  /// Identity of a block analysis: the block plus its calling context,
  /// "the types for all variables that will be translated into symbolic
  /// values" (Section 4.3).
  struct BlockKey {
    bool Symbolic = true;
    const CFuncDecl *F = nullptr;
    std::vector<NullSeed> Params;
    std::map<std::string, NullSeed> Globals;

    bool operator<(const BlockKey &O) const {
      return std::tie(Symbolic, F, Params, Globals) <
             std::tie(O.Symbolic, O.F, O.Params, O.Globals);
    }
    bool operator==(const BlockKey &O) const {
      return Symbolic == O.Symbolic && F == O.F && Params == O.Params &&
             Globals == O.Globals;
    }
  };

  /// Stripe selector for the sharded caches (only placement, never
  /// identity: shards compare keys with operator<).
  struct BlockKeyHash {
    size_t operator()(const BlockKey &K) const {
      size_t H = std::hash<const void *>()(K.F) * 2 + (K.Symbolic ? 1 : 0);
      for (NullSeed S : K.Params)
        H = H * 131 + (size_t)S + 7;
      for (const auto &[Name, Seed] : K.Globals)
        H = H * 131 + std::hash<std::string>()(Name) + (size_t)Seed;
      return H;
    }
  };

  /// The caller-visible summary of one symbolic block run ("we cache the
  /// translated types", Section 4.3).
  struct SymOutcome {
    bool RetMayBeNull = false;
    std::vector<bool> ParamPointeeMayBeNull;
    std::map<std::string, bool> GlobalMayBeNull;

    bool operator==(const SymOutcome &O) const {
      return RetMayBeNull == O.RetMayBeNull &&
             ParamPointeeMayBeNull == O.ParamPointeeMayBeNull &&
             GlobalMayBeNull == O.GlobalMayBeNull;
    }
  };

  /// One frontier call site, remembered for the fixpoint loop. LastKey.F
  /// is null until the site's block has been analyzed at least once (the
  /// deferred state of the parallel engine).
  struct SymCallSite {
    const CCall *Call;
    const CFuncDecl *Callee;
    std::vector<QualVec> ArgQuals;
    QualVec RetQuals;
    BlockKey LastKey;
  };

  struct StackEntry {
    BlockKey Key;
    bool Recursive = false;
    SymOutcome SymAssumption;
    bool TypedAssumption = false;
  };

  /// The per-thread slice of analysis state a block evaluation runs
  /// against: an executor (with its solver and term arena behind it), the
  /// diagnostics sink for that executor, and the recursion stack. The
  /// serial engine binds these to the analysis-owned members; parallel
  /// workers bind them to their own WorkerContext.
  struct ExecContext {
    CSymExecutor &Exec;
    DiagnosticEngine &Diags;
    std::vector<StackEntry> &Stack;
  };

  /// Everything one pool worker owns privately (defined in Mixy.cpp).
  struct WorkerContext;

  // Region handling.
  std::set<const CFuncDecl *> typedRegionFrom(const CFuncDecl *Entry);
  void collectCallees(const CStmt *S, std::set<const CFuncDecl *> &Out,
                      bool &SawIndirect);

  // Context computation (Section 4.1 / 4.3).
  std::vector<NullSeed>
  paramSeedsFromArgQuals(const CFuncDecl *Callee,
                         const std::vector<QualVec> &ArgQuals);
  std::map<std::string, NullSeed> globalSeedsFromQuals();

  // Symbolic-block execution and translation.
  SymOutcome computeSymOutcome(const BlockKey &Key, ExecContext C);
  SymOutcome translateResult(const CFuncDecl *F, const CSymResult &Result,
                             CSymExecutor &WithExec);
  void applySymOutcome(const SymOutcome &Outcome, const CCall *Call,
                       const CFuncDecl *Callee,
                       const std::vector<QualVec> &ArgQuals,
                       QualVec &RetQuals);
  void restoreAliasing(const CFuncDecl *Callee);

  // Typed-block execution (from the symbolic side).
  bool computeTypedRet(const BlockKey &Key, const CCall *Call, ExecContext C);

  /// Fresh, unconstrained qualifier variables shaped like \p Ty.
  QualVec freshQuals(const CType *Ty, const std::string &Description,
                     SourceLoc Loc);

  // --- parallel engine ---------------------------------------------------
  bool parallel() const { return Opts.Jobs > 1; }
  /// The calling thread's context: its WorkerContext when on a pool
  /// worker of this analysis, the serial members otherwise.
  ExecContext currentContext();
  /// Lazily builds the calling pool worker's private context.
  WorkerContext &workerContext();
  /// The typed-start driver for Jobs > 1 (round-barrier fixpoint).
  unsigned runTypedParallel(const CFuncDecl *EntryFunc);
  /// Appends a round's worker diagnostics to the shared engine in
  /// deterministic order, deduplicating warnings across workers the same
  /// way one executor deduplicates across runs.
  void mergeRoundDiagnostics(const std::vector<std::vector<Diagnostic>> &Per);
  void bumpStat(unsigned MixyStats::*Field);
  /// Mirrors the final MixyStats into the metrics registry (no-op without
  /// one) so --stats / --metrics render from the same source.
  void publishStats();

  const CProgram &Program;
  CAstContext &Ctx;
  DiagnosticEngine &Diags;
  MixyOptions Opts;

  smt::TermArena Terms;
  smt::SmtSolver Solver;
  PointsToAnalysis PtrAnal;
  QualInference Qual;
  CSymExecutor Exec;

  BlockCache<BlockKey, SymOutcome, BlockKeyHash> SymCache;
  BlockCache<BlockKey, bool, BlockKeyHash> TypedCache;

  std::vector<StackEntry> BlockStack;

  std::vector<SymCallSite> SymCallSites;
  std::set<const CFuncDecl *> TypedRegionAnalyzed;

  // Parallel-engine state. QualM serializes every touch of the shared
  // qualifier graph (and shared diagnostics) from worker threads; it is
  // recursive because symbolic and typed blocks nest through the hooks.
  smt::SolverPool Solvers;
  std::unique_ptr<rt::ThreadPool> Pool;
  std::vector<std::unique_ptr<WorkerContext>> WorkerSlots;
  std::recursive_mutex QualM;
  std::mutex SlotsM;
  std::mutex StatsM;
  std::set<std::string> MergedWarnings;

  MixyStats Statistics;
};

} // namespace mix::c

#endif // MIX_MIXY_MIXY_H
