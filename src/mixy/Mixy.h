//===--- Mixy.h - The MIXY analysis driver ----------------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MIXY (Section 4): mixes null/nonnull type qualifier inference with the
/// C symbolic executor at function granularity.
///
///  - Analysis starts in typed or symbolic mode at an entry function.
///  - In typed mode, qualifier inference covers every function reachable
///    from the entry "up to the frontier of any functions that are marked
///    with MIX(symbolic)"; each frontier call switches to the symbolic
///    executor through QualSymHook.
///  - In symbolic mode, execution proceeds through unmarked functions and
///    switches to inference at MIX(typed) functions through
///    TypedCallHook.
///  - Translations follow Section 4.1: types to symbolic values seed
///    pointers as nonnull (fresh location) or maybe-null
///    ((alpha ? loc : 0)), with unconstrained qualifier variables treated
///    optimistically as nonnull; symbolic values to types ask the solver
///    whether g and (s = 0) is satisfiable and add null constraints.
///  - Optimism makes a fixpoint necessary: symbolic blocks re-run when
///    later-discovered constraints change their calling context
///    (Section 4.1's two-symbolic-block example).
///  - Aliasing is restored at symbolic-to-typed transitions using the
///    may-points-to pre-pass (Section 4.2).
///  - Block results are cached per compatible calling context
///    (Section 4.3) and recursion between blocks is resolved with a block
///    stack and assumption iteration (Section 4.4).
///
//===----------------------------------------------------------------------===//

#ifndef MIX_MIXY_MIXY_H
#define MIX_MIXY_MIXY_H

#include "csym/CSymExecutor.h"
#include "ptranal/PointsTo.h"
#include "qual/QualInference.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mix::c {

/// Configuration of a MIXY run.
struct MixyOptions {
  /// Cache block analysis results per calling context (Section 4.3).
  bool EnableCache = true;
  /// Restore aliasing relationships via the points-to pre-pass at
  /// symbolic-to-typed transitions (Section 4.2).
  bool RestoreAliasing = true;
  unsigned MaxFixpointIterations = 16;
  unsigned MaxRecursionIterations = 8;
  CSymOptions Sym;
  QualOptions Qual;
  smt::SmtOptions Smt;
};

/// Statistics of a MIXY run.
struct MixyStats {
  unsigned SymbolicBlockRuns = 0;     ///< csym invocations (cache misses)
  unsigned SymbolicCacheHits = 0;
  unsigned TypedBlockRuns = 0;        ///< typed-block summaries computed
  unsigned TypedCacheHits = 0;
  unsigned SymbolicCallsFromTyped = 0;
  unsigned TypedCallsFromSymbolic = 0;
  unsigned FixpointIterations = 0;
  unsigned RecursionsDetected = 0;
};

/// The MIXY analysis.
class MixyAnalysis : public QualSymHook, public TypedCallHook {
public:
  enum class StartMode { Typed, Symbolic };

  MixyAnalysis(const CProgram &Program, CAstContext &Ctx,
               DiagnosticEngine &Diags, MixyOptions Opts = MixyOptions());

  /// Runs the full analysis from \p Entry. Returns the number of
  /// warnings (qualifier violations plus symbolic-execution warnings).
  unsigned run(StartMode Mode, const std::string &Entry = "main");

  // --- QualSymHook: typed-to-symbolic switching (Section 4.1) -----------
  bool handleSymbolicCall(QualInference &Inference, const CCall *Call,
                          const CFuncDecl *Callee,
                          const std::vector<QualVec> &ArgQuals,
                          QualVec &RetQuals) override;

  // --- TypedCallHook: symbolic-to-typed switching ------------------------
  bool callTypedFunction(CSymExecutor &Exec, CSymState &State,
                         const CCall *Call, const CFuncDecl *Callee,
                         const std::vector<CSymValue> &Args,
                         CSymValue &RetOut) override;

  const MixyStats &stats() const { return Statistics; }
  QualInference &qualifiers() { return Qual; }
  CSymExecutor &executor() { return Exec; }
  PointsToAnalysis &pointsTo() { return PtrAnal; }

private:
  /// Identity of a block analysis: the block plus its calling context,
  /// "the types for all variables that will be translated into symbolic
  /// values" (Section 4.3).
  struct BlockKey {
    bool Symbolic = true;
    const CFuncDecl *F = nullptr;
    std::vector<NullSeed> Params;
    std::map<std::string, NullSeed> Globals;

    bool operator<(const BlockKey &O) const {
      return std::tie(Symbolic, F, Params, Globals) <
             std::tie(O.Symbolic, O.F, O.Params, O.Globals);
    }
    bool operator==(const BlockKey &O) const {
      return Symbolic == O.Symbolic && F == O.F && Params == O.Params &&
             Globals == O.Globals;
    }
  };

  /// The caller-visible summary of one symbolic block run ("we cache the
  /// translated types", Section 4.3).
  struct SymOutcome {
    bool RetMayBeNull = false;
    std::vector<bool> ParamPointeeMayBeNull;
    std::map<std::string, bool> GlobalMayBeNull;

    bool operator==(const SymOutcome &O) const {
      return RetMayBeNull == O.RetMayBeNull &&
             ParamPointeeMayBeNull == O.ParamPointeeMayBeNull &&
             GlobalMayBeNull == O.GlobalMayBeNull;
    }
  };

  /// One frontier call site, remembered for the fixpoint loop.
  struct SymCallSite {
    const CCall *Call;
    const CFuncDecl *Callee;
    std::vector<QualVec> ArgQuals;
    QualVec RetQuals;
    BlockKey LastKey;
  };

  // Region handling.
  std::set<const CFuncDecl *> typedRegionFrom(const CFuncDecl *Entry);
  void collectCallees(const CStmt *S, std::set<const CFuncDecl *> &Out,
                      bool &SawIndirect);

  // Context computation (Section 4.1 / 4.3).
  std::vector<NullSeed>
  paramSeedsFromArgQuals(const CFuncDecl *Callee,
                         const std::vector<QualVec> &ArgQuals);
  std::map<std::string, NullSeed> globalSeedsFromQuals();

  // Symbolic-block execution and translation.
  SymOutcome computeSymOutcome(const BlockKey &Key);
  SymOutcome translateResult(const CFuncDecl *F, const CSymResult &Result);
  void applySymOutcome(const SymOutcome &Outcome, const CCall *Call,
                       const CFuncDecl *Callee,
                       const std::vector<QualVec> &ArgQuals,
                       QualVec &RetQuals);
  void restoreAliasing(const CFuncDecl *Callee);

  // Typed-block execution (from the symbolic side).
  bool computeTypedRet(const BlockKey &Key, const CCall *Call);

  /// Fresh, unconstrained qualifier variables shaped like \p Ty.
  QualVec freshQuals(const CType *Ty, const std::string &Description,
                     SourceLoc Loc);

  const CProgram &Program;
  CAstContext &Ctx;
  DiagnosticEngine &Diags;
  MixyOptions Opts;

  smt::TermArena Terms;
  smt::SmtSolver Solver;
  PointsToAnalysis PtrAnal;
  QualInference Qual;
  CSymExecutor Exec;

  std::map<BlockKey, SymOutcome> SymCache;
  std::map<BlockKey, bool> TypedCache;

  struct StackEntry {
    BlockKey Key;
    bool Recursive = false;
    SymOutcome SymAssumption;
    bool TypedAssumption = false;
  };
  std::vector<StackEntry> BlockStack;

  std::vector<SymCallSite> SymCallSites;
  std::set<const CFuncDecl *> TypedRegionAnalyzed;

  MixyStats Statistics;
};

} // namespace mix::c

#endif // MIX_MIXY_MIXY_H
