//===--- Mixy.h - The MIXY analysis driver ----------------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MIXY (Section 4): mixes null/nonnull type qualifier inference with the
/// C symbolic executor at function granularity.
///
///  - Analysis starts in typed or symbolic mode at an entry function.
///  - In typed mode, qualifier inference covers every function reachable
///    from the entry "up to the frontier of any functions that are marked
///    with MIX(symbolic)"; each frontier call switches to the symbolic
///    executor through QualSymHook.
///  - In symbolic mode, execution proceeds through unmarked functions and
///    switches to inference at MIX(typed) functions through
///    TypedCallHook.
///  - Translations follow Section 4.1: types to symbolic values seed
///    pointers as nonnull (fresh location) or maybe-null
///    ((alpha ? loc : 0)), with unconstrained qualifier variables treated
///    optimistically as nonnull; symbolic values to types ask the solver
///    whether g and (s = 0) is satisfiable and add null constraints.
///  - Optimism makes a fixpoint necessary: symbolic blocks re-run when
///    later-discovered constraints change their calling context
///    (Section 4.1's two-symbolic-block example).
///  - Aliasing is restored at symbolic-to-typed transitions using the
///    may-points-to pre-pass (Section 4.2).
///  - Block results are cached per compatible calling context
///    (Section 4.3), and recursion between blocks is resolved with a
///    block stack and assumption iteration (Section 4.4) — both provided
///    by the shared engine layer (src/engine/MixEngine.h); MIXY is one of
///    its AnalysisDomain instantiations.
///
/// Parallelism (Jobs > 1): symbolic blocks are independent at their
/// boundaries — all a block exchanges with its caller is a calling
/// context (the BlockKey) and a translated summary (the SymOutcome) — so
/// their evaluations run concurrently on a work-stealing pool, scheduled
/// by the engine fixpoint driver (src/engine/Fixpoint.h). The default
/// schedule is the dependency-aware worklist: static dependency edges
/// between frontier call sites (call graph reachability to pointer-global
/// writers, pointer signatures, alias coupling) are condensed into SCCs,
/// each SCC iterates to its own fixpoint, and an SCC's dependents start
/// the moment it stabilizes — a block re-runs as soon as its inputs
/// change instead of waiting for a whole-program round barrier. A final
/// validation sweep (plain Jacobi rounds) guarantees the least fixpoint
/// even where the static edges under-approximate. The historical
/// round-barrier schedule remains selectable via
/// MixyOptions::ParallelSchedule. Frontier calls met during constraint
/// generation are *deferred* to the fixpoint instead of being analyzed
/// inline; that is just more of the optimism the paper already requires a
/// fixpoint for, and the qualifier constraint system is monotone, so both
/// schedules converge to the same least solution as the serial
/// Gauss-Seidel-style loop. Every worker owns its executor, solver, term
/// arena, block stack, and diagnostic buffer; the shared qualifier graph
/// is only touched under a lock (by nested symbolic-to-typed switches and
/// summary application), and per-wave diagnostics are merged in
/// deterministic wave-tag order. With Jobs <= 1 the original serial path
/// runs unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_MIXY_MIXY_H
#define MIX_MIXY_MIXY_H

#include "csym/CSymExecutor.h"
#include "engine/MixEngine.h"
#include "ptranal/PointsTo.h"
#include "qual/QualInference.h"
#include "runtime/ThreadPool.h"
#include "solver/SolverPool.h"
#include "symexec/SymExecutor.h"

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace mix::persist {
class PersistSession;
}

namespace mix::c {

// The block cache lives in the shared engine layer now (src/engine/);
// these aliases keep the historical mix::c spellings working.
using engine::BlockCache;
using engine::BlockCacheStats;
using engine::blockCacheShardsFor;

/// Configuration of a MIXY run.
struct MixyOptions {
  /// Cache block analysis results per calling context (Section 4.3).
  bool EnableCache = true;
  /// Restore aliasing relationships via the points-to pre-pass at
  /// symbolic-to-typed transitions (Section 4.2).
  bool RestoreAliasing = true;
  unsigned MaxFixpointIterations = 16;
  unsigned MaxRecursionIterations = 8;
  /// Worker threads for block-level parallelism. 1 (the default) is the
  /// serial engine, byte-for-byte identical to the pre-parallel driver;
  /// N > 1 evaluates independent symbolic blocks on N workers.
  unsigned Jobs = 1;
  /// Parallel fixpoint schedule (only meaningful with Jobs > 1). The
  /// default worklist condenses static site-dependency edges into SCCs
  /// and re-runs a block as soon as its inputs change; RoundBarrier is
  /// the historical Jacobi schedule (evaluate every changed site, join,
  /// apply, repeat). Both converge to the same least solution, so this
  /// is a performance knob, not a semantic one — it is deliberately
  /// excluded from mixyPersistFingerprint().
  enum class Schedule { Worklist, RoundBarrier };
  Schedule ParallelSchedule = Schedule::Worklist;
  CSymOptions Sym;
  QualOptions Qual;
  smt::SmtOptions Smt;
  /// Which engine executes symbolic blocks (--exec=ast|ir, shared with
  /// the core-language executor). Ir lowers each mini-C body once to the
  /// flat bytecode (src/ir/CIr.h) and interprets it through the unified
  /// concolic core (src/concolic/CIrExecutor); bodies the lowering cannot
  /// model fall back to the AST walker per callee, counted in
  /// exec.fallback.ast. Diagnostics are byte-identical between the two
  /// engines, which is why this knob — like Jobs and IncrementalSolver —
  /// is deliberately excluded from mixyPersistFingerprint().
  SymExecOptions::Engine ExecMode = SymExecOptions::Engine::Ast;
  /// Which solver backend answers feasibility queries (and whether every
  /// instance races the full registered portfolio). Applies to the serial
  /// solver and every pooled worker instance alike.
  smt::SolverSpec Solver;

  /// Observability sinks (see src/observe/). The analysis copies these
  /// into Smt (solver counters/latency), the block caches
  /// ("mixy.cache.sym.*" / "mixy.cache.typed.*" counters), and the
  /// thread pool (per-worker task spans); the fixpoint driver adds
  /// "mixy.round" / "mixy.block.sym" / "mixy.block.typed" spans and
  /// publishes the MixyStats fields as "mixy.*" counters when the run
  /// finishes. Null (the default) disables all of it at one branch per
  /// site.
  obs::MetricsRegistry *Metrics = nullptr;
  obs::TraceSink *Trace = nullptr;

  /// Per-request telemetry context (see src/observe/Phase.h). Copied into
  /// Smt and the fixpoint config, so solver queries, fixpoint rounds, and
  /// block boundaries attribute wall time to the request's phase
  /// breakdown. Null — the default — costs one branch per site.
  obs::RequestTelemetry *Telemetry = nullptr;

  /// Provenance recording (see src/provenance/). When attached — the
  /// analysis copies it into Sym and Qual — qualifier warnings carry
  /// their flow chain (with mix-boundary and alias edges labeled),
  /// symbolic-executor warnings carry their witness path, and every
  /// diagnostic a block run emits carries the block stack it came from.
  /// Recorded payloads persist inside block summaries, so warm --cache-dir
  /// runs replay the same explanations. Null records nothing.
  prov::ProvenanceSink *Prov = nullptr;

  /// The persistent cache session behind --cache-dir (see src/persist/).
  /// When set, solver queries are answered from / recorded into the
  /// session's query store; when the session is incremental, symbolic
  /// block summaries (and the diagnostics their runs emitted, replayed
  /// verbatim on a hit) persist across runs too. Null (the default)
  /// keeps every run cold.
  persist::PersistSession *Persist = nullptr;
};

/// Digest of every MixyOptions field that can change a persisted block
/// summary or its diagnostics. Used as the block-store fingerprint: a
/// cache written under different options loads as empty. Deliberately
/// excludes Jobs (results are --jobs-invariant) and the caching knobs
/// themselves.
uint64_t mixyPersistFingerprint(const MixyOptions &Opts);

/// Statistics of a MIXY run.
struct MixyStats {
  unsigned SymbolicBlockRuns = 0;     ///< csym invocations (cache misses)
  unsigned SymbolicCacheHits = 0;
  unsigned TypedBlockRuns = 0;        ///< typed-block summaries computed
  unsigned TypedCacheHits = 0;
  unsigned SymbolicCallsFromTyped = 0;
  unsigned TypedCallsFromSymbolic = 0;
  unsigned FixpointIterations = 0;
  unsigned RecursionsDetected = 0;
};

/// The MIXY analysis.
class MixyAnalysis : public QualSymHook, public TypedCallHook {
public:
  enum class StartMode { Typed, Symbolic };

  MixyAnalysis(const CProgram &Program, CAstContext &Ctx,
               DiagnosticEngine &Diags, MixyOptions Opts = MixyOptions());
  ~MixyAnalysis();

  /// Runs the full analysis from \p Entry. Returns the number of
  /// warnings (qualifier violations plus symbolic-execution warnings).
  unsigned run(StartMode Mode, const std::string &Entry = "main");

  // --- QualSymHook: typed-to-symbolic switching (Section 4.1) -----------
  bool handleSymbolicCall(QualInference &Inference, const CCall *Call,
                          const CFuncDecl *Callee,
                          const std::vector<QualVec> &ArgQuals,
                          QualVec &RetQuals) override;

  // --- TypedCallHook: symbolic-to-typed switching ------------------------
  bool callTypedFunction(CSymExecutor &Exec, CSymState &State,
                         const CCall *Call, const CFuncDecl *Callee,
                         const std::vector<CSymValue> &Args,
                         CSymValue &RetOut) override;

  const MixyStats &stats() const { return Statistics; }
  QualInference &qualifiers() { return Qual; }
  CSymExecutor &executor() { return Exec; }
  PointsToAnalysis &pointsTo() { return PtrAnal; }

  /// Counters of the sharded symbolic-block cache (Section 4.3).
  BlockCacheStats symCacheStats() const { return Eng.symCacheStats(); }
  /// Counters of the sharded typed-block cache.
  BlockCacheStats typedCacheStats() const { return Eng.typedCacheStats(); }

private:
  /// Identity of a block analysis: the block plus its calling context,
  /// "the types for all variables that will be translated into symbolic
  /// values" (Section 4.3).
  struct BlockKey {
    bool Symbolic = true;
    const CFuncDecl *F = nullptr;
    std::vector<NullSeed> Params;
    std::map<std::string, NullSeed> Globals;

    bool operator<(const BlockKey &O) const {
      return std::tie(Symbolic, F, Params, Globals) <
             std::tie(O.Symbolic, O.F, O.Params, O.Globals);
    }
    bool operator==(const BlockKey &O) const {
      return Symbolic == O.Symbolic && F == O.F && Params == O.Params &&
             Globals == O.Globals;
    }
  };

  /// Stripe selector for the sharded caches (only placement, never
  /// identity: shards compare keys with operator<).
  struct BlockKeyHash {
    size_t operator()(const BlockKey &K) const {
      size_t H = hashCombine(std::hash<const void *>()(K.F), K.Symbolic);
      for (NullSeed S : K.Params)
        H = hashCombine(H, (size_t)S);
      for (const auto &[Name, Seed] : K.Globals)
        H = hashCombine(hashCombine(H, std::hash<std::string>()(Name)),
                        (size_t)Seed);
      return H;
    }
  };

  /// The caller-visible summary of one symbolic block run ("we cache the
  /// translated types", Section 4.3).
  struct SymOutcome {
    bool RetMayBeNull = false;
    std::vector<bool> ParamPointeeMayBeNull;
    std::map<std::string, bool> GlobalMayBeNull;

    bool operator==(const SymOutcome &O) const {
      return RetMayBeNull == O.RetMayBeNull &&
             ParamPointeeMayBeNull == O.ParamPointeeMayBeNull &&
             GlobalMayBeNull == O.GlobalMayBeNull;
    }
  };

  /// One sym-to-typed switch a symbolic block run performed, recorded so
  /// a persisted summary can replay it: the typed block seeded the shared
  /// qualifier graph (parameter/global null sources), and a warm hit must
  /// reproduce those constraints or the end-of-run qualifier solution
  /// would differ from a cold run. Seeding is monotone, so replay order
  /// does not matter.
  struct TypedSwitch {
    std::string Callee;
    std::vector<NullSeed> Params;
    std::map<std::string, NullSeed> Globals;
    SourceLoc Loc;
  };

  /// One frontier call site, remembered for the fixpoint loop. LastKey.F
  /// is null until the site's block has been analyzed at least once (the
  /// deferred state of the parallel engine).
  struct SymCallSite {
    const CCall *Call;
    const CFuncDecl *Callee;
    std::vector<QualVec> ArgQuals;
    QualVec RetQuals;
    BlockKey LastKey;
  };

  /// MIXY's instantiation of the shared engine's AnalysisDomain concept
  /// (src/engine/MixEngine.h): the engine owns the per-context caches,
  /// the recursion stack, and the assumption iteration; MIXY supplies
  /// the key/outcome types and the evaluation hooks.
  struct EngineDomain {
    using Key = BlockKey;
    using KeyHash = BlockKeyHash;
    using SymOutcome = MixyAnalysis::SymOutcome;
    using TypedOutcome = bool;
    static constexpr const char *Name = "mixy";
  };
  using Engine = engine::MixEngine<EngineDomain>;

  /// The per-thread slice of analysis state a block evaluation runs
  /// against: an executor (with its solver and term arena behind it), the
  /// diagnostics sink for that executor, and the recursion stack. The
  /// serial engine binds these to the analysis-owned members; parallel
  /// workers bind them to their own WorkerContext.
  struct ExecContext {
    CSymExecutor &Exec;
    DiagnosticEngine &Diags;
    Engine::BlockStack &Stack;
  };

  /// Everything one pool worker owns privately (defined in Mixy.cpp).
  struct WorkerContext;

  // Region handling.
  std::set<const CFuncDecl *> typedRegionFrom(const CFuncDecl *Entry);
  void collectCallees(const CStmt *S, std::set<const CFuncDecl *> &Out,
                      bool &SawIndirect);

  // Context computation (Section 4.1 / 4.3).
  std::vector<NullSeed>
  paramSeedsFromArgQuals(const CFuncDecl *Callee,
                         const std::vector<QualVec> &ArgQuals);
  std::map<std::string, NullSeed> globalSeedsFromQuals();

  // Symbolic-block execution and translation.
  SymOutcome computeSymOutcome(const BlockKey &Key, ExecContext C);
  SymOutcome translateResult(const CFuncDecl *F, const CSymResult &Result,
                             CSymExecutor &WithExec);
  void applySymOutcome(const SymOutcome &Outcome, const CCall *Call,
                       const CFuncDecl *Callee,
                       const std::vector<QualVec> &ArgQuals,
                       QualVec &RetQuals);
  void restoreAliasing(const CFuncDecl *Callee);

  // Typed-block execution (from the symbolic side). \p CallLoc anchors
  // the null-seed notes (the call site, or the persisted location when a
  // recorded switch is replayed).
  bool computeTypedRet(const BlockKey &Key, SourceLoc CallLoc, ExecContext C);

  // --- persistent cache / incremental engine (src/persist/) --------------
  /// Computes per-function content and dependency-closure hashes, primes
  /// the session manifest, and publishes the incremental dirty-set
  /// metrics. Runs once per analysis, after the points-to pre-pass.
  void initPersist();
  /// The cross-run identity of a block analysis: closure hash of the
  /// function (so any edit in its dependency cone misses by
  /// construction) plus the calling context.
  uint64_t stableBlockKey(const BlockKey &Key) const;
  /// Serializes a summary plus the diagnostics and typed switches its
  /// block run emitted.
  std::string encodeBlockSummary(const SymOutcome &Outcome,
                                 const std::vector<Diagnostic> &Slice,
                                 const std::vector<TypedSwitch> &Switches)
      const;
  bool decodeBlockSummary(const std::string &Payload, SymOutcome &Outcome,
                          std::vector<Diagnostic> &Slice,
                          std::vector<TypedSwitch> &Switches) const;
  /// Writes a block summary, merging with whatever is already stored
  /// under \p PKey. A parallel cold run can evaluate the same calling
  /// context more than once against different snapshots of the shared
  /// qualifier state, and the outcomes differ; the qualifier graph saw
  /// the *union* of those seedings, so the persisted summary must carry
  /// the union too (the facts are monotone may-be-null bits, so the
  /// merge is an OR). A last-write-wins store here loses warnings on
  /// warm parallel replay.
  void storeBlockSummary(uint64_t PKey, const SymOutcome &Outcome,
                         const std::vector<Diagnostic> &Slice,
                         const std::vector<TypedSwitch> &Switches);
  /// Does every recorded callee still resolve? (Always true when the
  /// closure hash matched; a summary that fails this is stale and the
  /// block re-runs cold.)
  bool switchesResolvable(const std::vector<TypedSwitch> &Switches) const;
  /// Re-runs the recorded typed switches of a persisted block through the
  /// regular typed-block path, restoring the qualifier-graph constraints
  /// the cold run seeded.
  void replayTypedSwitches(const std::vector<TypedSwitch> &Switches,
                           ExecContext C);

  /// Fresh, unconstrained qualifier variables shaped like \p Ty.
  QualVec freshQuals(const CType *Ty, const std::string &Description,
                     SourceLoc Loc);

  // --- parallel engine ---------------------------------------------------
  bool parallel() const { return Opts.Jobs > 1; }
  /// The calling thread's context: its WorkerContext when on a pool
  /// worker of this analysis, the serial members otherwise.
  ExecContext currentContext();
  /// Lazily builds the calling pool worker's private context.
  WorkerContext &workerContext();
  /// The typed-start driver for Jobs > 1. Seats the fixpoint on
  /// engine::FixpointDriver — the dependency-aware worklist by default,
  /// the historical round barrier via MixyOptions::ParallelSchedule.
  unsigned runTypedParallel(const CFuncDecl *EntryFunc);
  /// Builds the engine configuration (cache sharding, recursion budget,
  /// metrics prefixes) from the analysis options.
  static Engine::Config engineConfig(const MixyOptions &O);
  /// Recomputes site I's calling context from the current qualifier
  /// solution. Returns true (and updates LastKey) when it changed.
  bool refreshSite(size_t I);
  /// Evaluates one wave of changed sites: distinct calling contexts run
  /// concurrently on the pool, then summaries are applied in site order.
  /// Buffered (worklist) waves stash their diagnostic slices under Tag
  /// for a post-fixpoint merge in tag order; unbuffered (round-barrier)
  /// waves merge immediately at the barrier.
  void evaluateWave(const std::vector<size_t> &Sites, uint64_t Tag,
                    bool Buffered);
  /// Static dependency edges between frontier call sites for the
  /// worklist schedule: site I influences site J when I's summary can
  /// move J's calling context (pointer signature, reachable
  /// pointer-global writer, alias coupling, or indirect calls). Sound
  /// over-approximation is not required — the driver's validation sweep
  /// catches anything these edges miss.
  std::vector<std::pair<size_t, size_t>> buildSiteGraph();
  /// Direct call-graph edges between defined functions (all-to-all when
  /// an indirect call makes the callee set unknowable), shared by the
  /// persistent-cache closure hashes and the site graph.
  std::map<const CFuncDecl *, std::vector<const CFuncDecl *>>
  dependencyEdges(bool &SawIndirect);
  /// May \p S store to any pointer-typed global in \p PtrGlobals? Any
  /// indirect store counts conservatively.
  bool writesPointerGlobal(const CStmt *S,
                           const std::set<std::string> &PtrGlobals);
  /// Appends a round's worker diagnostics to the shared engine in
  /// deterministic order, deduplicating warnings across workers the same
  /// way one executor deduplicates across runs.
  void mergeRoundDiagnostics(const std::vector<std::vector<Diagnostic>> &Per);
  void bumpStat(unsigned MixyStats::*Field);
  /// Mirrors the final MixyStats into the metrics registry (no-op without
  /// one) so --stats / --metrics render from the same source.
  void publishStats();

  const CProgram &Program;
  CAstContext &Ctx;
  DiagnosticEngine &Diags;
  MixyOptions Opts;

  smt::TermArena Terms;
  std::unique_ptr<smt::ISolver> Solver;
  PointsToAnalysis PtrAnal;
  QualInference Qual;
  CSymExecutor Exec;
  /// The serial executor's body engine (--exec=ir; null for the AST
  /// walker). Workers own theirs, bound to their own executor.
  std::unique_ptr<CBodyEngine> BodyEngine;

  /// The shared mix engine: block caches, recursion stack discipline,
  /// and assumption iteration (Sections 4.3 / 4.4).
  Engine Eng;

  /// The serial thread's recursion stack (workers own theirs).
  Engine::BlockStack BlockStack;

  std::vector<SymCallSite> SymCallSites;

  // Persistent-cache state (read-only after initPersist, so workers need
  // no lock).
  bool PersistReady = false;
  bool PersistBlocks = false;
  std::map<const CFuncDecl *, uint64_t> FuncClosure;

  // Parallel-engine state. QualM serializes every touch of the shared
  // qualifier graph (and shared diagnostics) from worker threads; it is
  // recursive because symbolic and typed blocks nest through the hooks.
  smt::SolverPool Solvers;
  std::unique_ptr<rt::ThreadPool> Pool;
  std::vector<std::unique_ptr<WorkerContext>> WorkerSlots;
  std::recursive_mutex QualM;
  std::mutex SlotsM;
  std::mutex StatsM;
  // Serializes storeBlockSummary's read-merge-write of a persisted block
  // summary, so concurrent evaluations of one calling context can't lose
  // each other's contributions.
  std::mutex PersistStoreM;
  std::set<std::string> MergedWarnings;

  // Worklist-schedule diagnostic buffering: wave tag -> per-context
  // diagnostic slices, merged in tag order after the driver returns so
  // the merged stream is independent of SCC completion timing.
  std::mutex WaveM;
  std::map<uint64_t, std::vector<std::vector<Diagnostic>>> WaveDiags;

  MixyStats Statistics;
};

} // namespace mix::c

#endif // MIX_MIXY_MIXY_H
