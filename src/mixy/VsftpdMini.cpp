//===--- VsftpdMini.cpp - The vsftpd-derived evaluation corpus -------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "mixy/VsftpdMini.h"

using namespace mix::c;

namespace {

/// Shared prelude: the allocation wrapper every case study calls into.
/// sysutil_free wraps free() and checks at run time that its argument is
/// non-null; the paper's single nonnull annotation captures that.
const char *Prelude = R"(
struct sockaddr { int sa_family; };
struct mystr { char *pbuf; };
void sysutil_free(void * nonnull p_ptr) MIX(typed);
)";

std::string symAnnot(bool Annotated) {
  return Annotated ? " MIX(symbolic)" : "";
}

/// Case 1 (Section 4.5): flow and path insensitivity in sockaddr_clear.
/// The null store on the line *after* the free call taints the argument
/// for the flow-insensitive system; the null check is invisible to it.
std::string case1Body(bool Annotated) {
  return "void sockaddr_clear(struct sockaddr ** nonnull p_sock)" +
         symAnnot(Annotated) + R"( {
  if (*p_sock != NULL) {
    sysutil_free((void*)*p_sock);
    *p_sock = NULL;
  }
}
)";
}

const char *Case1Main = R"(
struct sockaddr *g_addr;
int main(void) {
  sockaddr_clear(&g_addr);
  return 0;
}
)";

/// Case 2 (Section 4.5): path and context insensitivity around
/// str_next_dirent. sysutil_next_dirent may return NULL; the monomorphic
/// parameter of str_alloc_text conflates p_filename with str, so the
/// sysutil_free(str) in the other caller warns.
std::string case2Body(bool Annotated) {
  return std::string(R"(
void str_alloc_text(struct mystr *p_str, char *p_src) MIX(typed);
char *sysutil_next_dirent(int d) MIX(typed) {
  if (d == 0) { return NULL; }
  return "dirent";
}
)") + "void str_next_dirent(struct mystr *p_str, int d)" +
         symAnnot(Annotated) + R"( {
  char *p_filename = sysutil_next_dirent(d);
  if (p_filename != NULL) {
    str_alloc_text(p_str, p_filename);
  }
}
)";
}

const char *Case2Main = R"(
struct mystr g_str_obj;
void list_common(struct mystr *p_str) {
  char *str = "text";
  str_alloc_text(p_str, str);
  sysutil_free((void*)str);
}
int main(void) {
  str_next_dirent(&g_str_obj, 1);
  list_common(&g_str_obj);
  return 0;
}
)";

/// Case 3 (Section 4.5): flow and path insensitivity in dns_resolve and
/// main. Two null sources (*p_sock = NULL in main_BLOCK and in
/// sockaddr_clear) are overwritten by the allocations in dns_resolve,
/// which only symbolic execution can see. gethostbyname gets the paper's
/// "well-behaved symbolic model" returning only the two address families,
/// so the die() branch is infeasible.
std::string case3Body(bool Annotated) {
  std::string Out = R"(
struct hostent { int h_addrtype; };
char *tunable_pasv_address;
void die(char *p_msg) MIX(typed);
struct hostent *gethostbyname(char *p_name) {
  struct hostent *hent = (struct hostent*) malloc(sizeof(struct hostent));
  if (hent->h_addrtype != 2) {
    hent->h_addrtype = 10;
  }
  return hent;
}
void sockaddr_alloc_ipv4(struct sockaddr ** nonnull p_sock) {
  *p_sock = (struct sockaddr*) malloc(sizeof(struct sockaddr));
}
void sockaddr_alloc_ipv6(struct sockaddr ** nonnull p_sock) {
  *p_sock = (struct sockaddr*) malloc(sizeof(struct sockaddr));
}
void dns_resolve(struct sockaddr ** nonnull p_sock, char *p_name) {
  struct hostent *hent = gethostbyname(p_name);
  sockaddr_clear(p_sock);
  if (hent->h_addrtype == 2) {
    sockaddr_alloc_ipv4(p_sock);
  } else { if (hent->h_addrtype == 10) {
    sockaddr_alloc_ipv6(p_sock);
  } else {
    die("gethostbyname(): neither IPv4 nor IPv6");
  } }
}
)";
  Out += "void main_BLOCK(struct sockaddr ** nonnull p_sock)" +
         symAnnot(Annotated) + R"( {
  *p_sock = NULL;
  dns_resolve(p_sock, tunable_pasv_address);
}
)";
  return Out;
}

const char *Case3Main = R"(
int main(void) {
  struct sockaddr *p_addr;
  main_BLOCK(&p_addr);
  sysutil_free((void*)p_addr);
  return 0;
}
)";

/// Case 4 (Section 4.5): helping symbolic execution. The exit hook is a
/// function pointer the executor cannot call; extracting it into a
/// MIX(typed) block analyzes the call conservatively with types.
std::string case4Body(bool Annotated) {
  std::string Out = "void (*s_exit_func)(void);\n";
  Out += std::string("void sysutil_exit_BLOCK(void)") +
         (Annotated ? " MIX(typed)" : "") + R"( {
  if (s_exit_func != NULL) {
    (*s_exit_func)();
  }
}
)";
  Out += R"(
void sysutil_exit(int exit_code) MIX(symbolic) {
  sysutil_exit_BLOCK();
}
)";
  return Out;
}

const char *Case4Main = R"(
int main(void) {
  sysutil_exit(1);
  return 0;
}
)";

} // namespace

std::string mix::c::corpus::vsftpdCase(unsigned CaseNo, bool Annotated) {
  std::string Out = Prelude;
  switch (CaseNo) {
  case 1:
    return Out + case1Body(Annotated) + Case1Main;
  case 2:
    return Out + case2Body(Annotated) + Case2Main;
  case 3:
    return Out + case1Body(Annotated) + case3Body(Annotated) + Case3Main;
  case 4:
    return Out + case4Body(Annotated) + Case4Main;
  default:
    return Out;
  }
}

std::string mix::c::corpus::vsftpdFull(bool Annotated) {
  std::string Out = Prelude;
  Out += case1Body(Annotated);
  Out += case2Body(Annotated);
  Out += case3Body(Annotated);
  Out += case4Body(Annotated);
  // A merged main touching every case.
  Out += R"(
struct sockaddr *g_addr;
struct mystr g_str_obj;
void list_common(struct mystr *p_str) {
  char *str = "text";
  str_alloc_text(p_str, str);
  sysutil_free((void*)str);
}
int main(void) {
  struct sockaddr *p_addr;
  sockaddr_clear(&g_addr);
  str_next_dirent(&g_str_obj, 1);
  list_common(&g_str_obj);
  main_BLOCK(&p_addr);
  sysutil_free((void*)p_addr);
  sysutil_exit(0);
  return 0;
}
)";
  return Out;
}

std::string mix::c::corpus::vsftpdScaled(bool Annotated, unsigned Modules,
                                         unsigned SymbolicBlocks) {
  std::string Out = vsftpdFull(Annotated);
  // Filler modules: chains of pointer-passing helpers that enlarge the
  // qualifier constraint graph the way utility code does in vsftpd.
  for (unsigned M = 0; M != Modules; ++M) {
    std::string Mod = std::to_string(M);
    Out += "int *filler_src_" + Mod + "(int *p) { return p; }\n";
    Out += "int *filler_mid_" + Mod + "(int *p) { return filler_src_" +
           Mod + "(p); }\n";
    bool Symbolic = M < SymbolicBlocks;
    // Symbolic filler blocks carry real execution work: a branch cascade
    // over symbolic scalars (2^5 paths each) and a null-checked free, so
    // each added block costs the executor and solver measurably — the
    // shape behind the paper's "5 to 25 seconds ... with one symbolic
    // block" observation.
    Out += "void filler_use_" + Mod + "(int *p, int a, int b, int c, "
           "int d, int e)" +
           (Symbolic && Annotated ? std::string(" MIX(symbolic)")
                                  : std::string()) +
           " {\n"
           "  int acc;\n  acc = 0;\n"
           "  if (a > 0) { acc = acc + 1; } else { acc = acc - 1; }\n"
           "  if (b > a) { acc = acc + 2; } else { acc = acc - 2; }\n"
           "  if (c > b) { acc = acc + 3; } else { acc = acc - 3; }\n"
           "  if (d > c) { acc = acc + 4; } else { acc = acc - 4; }\n"
           "  if (e > d) { acc = acc + 5; } else { acc = acc - 5; }\n"
           "  int *q = filler_mid_" +
           Mod + "(p);\n"
                 "  if (q != NULL) { if (acc > 0) { "
                 "sysutil_free((void*)q); } }\n"
                 "}\n";
  }
  // Extend main with calls into the filler.
  Out += "int filler_main(void) {\n  int x;\n  x = 0;\n";
  for (unsigned M = 0; M != Modules; ++M)
    Out += "  filler_use_" + std::to_string(M) +
           "(&x, 1, 2, 3, 4, 5);\n";
  Out += "  return main();\n}\n";
  return Out;
}
