//===--- BlockCache.h - Sharded block-summary cache -------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Section 4.3 cache — "we cache the translated types" of each block
/// per compatible calling context — made safe for concurrent block
/// analyses. The key space is sharded and each shard carries its own
/// mutex, so lookups and inserts from different workers only contend when
/// they hash to the same stripe.
///
/// Semantics under races: first insert for a key wins and later inserts
/// of the same key are dropped (block outcomes are deterministic per key,
/// so the dropped value is identical — the insert is "lost" only as work,
/// never as information). An optional per-shard capacity evicts oldest
/// entries first; evictions only cost re-analysis, never soundness, which
/// is exactly the contract of the paper's cache.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_MIXY_BLOCKCACHE_H
#define MIX_MIXY_BLOCKCACHE_H

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace mix::c {

/// Counter snapshot of one cache (summed over shards).
struct BlockCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Inserts = 0;
  uint64_t DroppedInserts = 0; ///< insert raced an existing entry
  uint64_t Evictions = 0;

  /// "hits=3 misses=5 inserts=5 evictions=0"-style rendering.
  std::string str() const;
};

/// Number of stripes that keeps contention negligible for \p Workers
/// concurrent workers (a power of two comfortably above the worker
/// count).
unsigned blockCacheShardsFor(unsigned Workers);

/// A mutex-striped map from block calling contexts to block summaries.
///
/// \p Hash only selects the stripe; within a stripe, \p Key's operator<
/// orders the entries (the analysis keys already define it).
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class BlockCache {
public:
  /// \p Shards is rounded up to a power of two; \p MaxEntriesPerShard of
  /// 0 means unbounded.
  explicit BlockCache(unsigned Shards = 16, size_t MaxEntriesPerShard = 0,
                      Hash Hasher = Hash())
      : MaxPerShard(MaxEntriesPerShard), Hasher(Hasher) {
    unsigned N = 1;
    while (N < Shards)
      N <<= 1;
    Stripes = std::vector<Shard>(N);
  }

  /// Returns the cached summary for \p K, or nullopt on a miss.
  std::optional<Value> lookup(const Key &K) {
    Shard &S = shardFor(K);
    std::lock_guard<std::mutex> Lock(S.M);
    auto It = S.Map.find(K);
    if (It == S.Map.end()) {
      ++S.Counters.Misses;
      return std::nullopt;
    }
    ++S.Counters.Hits;
    return It->second;
  }

  /// Inserts \p K -> \p V. Returns true when this call created the entry;
  /// false when another insert got there first (the existing entry is
  /// kept — summaries are deterministic per key).
  bool insert(const Key &K, Value V) {
    Shard &S = shardFor(K);
    std::lock_guard<std::mutex> Lock(S.M);
    auto [It, Fresh] = S.Map.emplace(K, std::move(V));
    if (!Fresh) {
      ++S.Counters.DroppedInserts;
      return false;
    }
    ++S.Counters.Inserts;
    S.Order.push_back(K);
    if (MaxPerShard != 0 && S.Map.size() > MaxPerShard) {
      S.Map.erase(S.Order.front());
      S.Order.pop_front();
      ++S.Counters.Evictions;
    }
    return true;
  }

  /// Entries across all shards.
  size_t size() const {
    size_t N = 0;
    for (const Shard &S : Stripes) {
      std::lock_guard<std::mutex> Lock(S.M);
      N += S.Map.size();
    }
    return N;
  }

  void clear() {
    for (Shard &S : Stripes) {
      std::lock_guard<std::mutex> Lock(S.M);
      S.Map.clear();
      S.Order.clear();
    }
  }

  unsigned shardCount() const { return (unsigned)Stripes.size(); }

  /// Counter totals. Call at a barrier for exact numbers; counters are
  /// mutated under shard locks, so the snapshot is always consistent
  /// per-shard.
  BlockCacheStats stats() const {
    BlockCacheStats Total;
    for (const Shard &S : Stripes) {
      std::lock_guard<std::mutex> Lock(S.M);
      Total.Hits += S.Counters.Hits;
      Total.Misses += S.Counters.Misses;
      Total.Inserts += S.Counters.Inserts;
      Total.DroppedInserts += S.Counters.DroppedInserts;
      Total.Evictions += S.Counters.Evictions;
    }
    return Total;
  }

private:
  struct Shard {
    mutable std::mutex M;
    std::map<Key, Value> Map;
    std::deque<Key> Order; ///< insertion order, for FIFO eviction
    BlockCacheStats Counters;
  };

  Shard &shardFor(const Key &K) {
    // Mix the hash so clustered low bits still spread across stripes.
    size_t H = Hasher(K);
    H ^= (H >> 16) | (H << 16);
    return Stripes[H & (Stripes.size() - 1)];
  }

  size_t MaxPerShard;
  Hash Hasher;
  std::vector<Shard> Stripes;
};

} // namespace mix::c

#endif // MIX_MIXY_BLOCKCACHE_H
