//===--- VsftpdMini.h - The vsftpd-derived evaluation corpus ----*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The evaluation corpus: mini-C programs reproducing the call and alias
/// structure of the four vsftpd-2.0.7 case studies of Section 4.5
/// (sockaddr_clear, str_next_dirent, dns_resolve/main, and
/// sysutil_exit_BLOCK), plus a scalable filler generator that gives the
/// qualifier inference a realistically sized constraint graph for the
/// timing experiments (E5).
///
/// Each case has two variants: `Annotated = false` is the baseline —
/// pure type qualifier inference with its false positive; `Annotated =
/// true` adds the paper's MIX(symbolic) / MIX(typed) annotations that
/// eliminate it.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_MIXY_VSFTPDMINI_H
#define MIX_MIXY_VSFTPDMINI_H

#include <string>

namespace mix::c::corpus {

/// Case study \p CaseNo in 1..4 (Section 4.5); \p Annotated selects the
/// MIXY-annotated variant.
std::string vsftpdCase(unsigned CaseNo, bool Annotated);

/// All four case studies merged into one translation unit with a shared
/// main.
std::string vsftpdFull(bool Annotated);

/// Appends \p Modules filler modules (each with helper chains that feed
/// the constraint graph) and returns corpus + filler. \p SymbolicBlocks
/// of the filler entry points are annotated MIX(symbolic) to scale the
/// number of block switches (experiment E5).
std::string vsftpdScaled(bool Annotated, unsigned Modules,
                         unsigned SymbolicBlocks);

} // namespace mix::c::corpus

#endif // MIX_MIXY_VSFTPDMINI_H
