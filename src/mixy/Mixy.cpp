//===--- Mixy.cpp - The MIXY analysis driver --------------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "mixy/Mixy.h"

#include "concolic/CIrExecutor.h"
#include "engine/Fixpoint.h"
#include "persist/AstHash.h"
#include "persist/PersistSession.h"
#include "persist/RecordFile.h"
#include "support/Hash.h"
#include "support/StringExtras.h"

using namespace mix::c;

namespace {
/// The WorkerContext of the pool task currently running on this thread,
/// if any (type-erased so the private nested type stays private).
thread_local void *ActiveWorkerCtx = nullptr;

/// The typed-switch log of the innermost persistable symbolic block run
/// on this thread (a std::vector<MixyAnalysis::TypedSwitch>*, type-erased
/// like ActiveWorkerCtx). Null when the current run is not being
/// recorded. computeSymOutcome saves and restores it around each block,
/// so nested blocks log to their own summaries.
thread_local void *ActiveTypedLog = nullptr;
} // namespace

/// Everything a pool worker owns privately: a leased solver instance
/// (with its term arena), a diagnostics buffer merged at round barriers,
/// a symbolic executor bound to all three, and a recursion stack.
struct MixyAnalysis::WorkerContext {
  MixyAnalysis *Owner;
  smt::SolverPool::Lease SolverLease;
  DiagnosticEngine Diags;
  CSymExecutor Exec;
  std::unique_ptr<CBodyEngine> BodyEngine;
  Engine::BlockStack Stack;
  size_t Merged = 0; ///< diagnostics already consumed by earlier barriers

  explicit WorkerContext(MixyAnalysis &A)
      : Owner(&A), SolverLease(A.Solvers.acquire()),
        Exec(A.Program, A.Ctx, Diags, SolverLease.terms(),
             SolverLease.solver(), A.Opts.Sym) {
    Exec.setTypedCallHook(&A);
    BodyEngine = concolic::makeCBodyEngine(Exec, A.Opts.ExecMode,
                                           A.Opts.Metrics, A.Opts.Telemetry);
    if (BodyEngine)
      Exec.setBodyEngine(BodyEngine.get());
  }
};

/// Pushes the analysis-level observability sinks down into the nested
/// option structs so every solver (serial and pooled) reports into the
/// same registry/trace, and attaches the persistent query store (if any)
/// the same way — SolverPool copies Smt into every pooled instance, so
/// one assignment covers the serial solver and all workers.
static MixyOptions normalizedOptions(MixyOptions O) {
  O.Smt.Metrics = O.Metrics;
  O.Smt.Trace = O.Trace;
  O.Smt.Telemetry = O.Telemetry;
  O.Sym.Prov = O.Prov;
  O.Qual.Prov = O.Prov;
  if (O.Persist)
    O.Smt.Cache = &O.Persist->solverCache();
  return O;
}

uint64_t mix::c::mixyPersistFingerprint(const MixyOptions &Opts) {
  StableHasher H;
  H.boolean(Opts.RestoreAliasing);
  H.u32(Opts.MaxFixpointIterations);
  H.u32(Opts.MaxRecursionIterations);
  H.u32(Opts.Sym.LoopBound);
  H.u32(Opts.Sym.MaxCallDepth);
  H.u32(Opts.Sym.MaxPaths);
  H.boolean(Opts.Sym.ParamsMayBeNull);
  H.boolean(Opts.Sym.CheckNonnullArguments);
  H.boolean(Opts.Sym.CheckDereferences);
  H.boolean(Opts.Qual.WarnAllDereferences);
  H.u32(Opts.Smt.MaxTheoryIterations);
  // Recording changes the persisted payload (summaries carry the
  // provenance of their diagnostics), so explain-on and explain-off runs
  // must not share a block store.
  H.boolean(Opts.Prov != nullptr);
  // Backend choice changes the DecidedBy provenance persisted inside
  // block summaries (verdicts themselves are backend-independent).
  // Sym.IncrementalSolver is deliberately excluded: it only changes how
  // queries are batched, never a verdict or a diagnostic. ExecMode is
  // excluded for the same reason: the IR engine is byte-identical to the
  // AST walker, so --exec=ast and --exec=ir runs share a block store.
  H.str(Opts.Solver.Backend);
  H.boolean(Opts.Solver.Portfolio);
  return H.digest();
}

MixyAnalysis::Engine::Config MixyAnalysis::engineConfig(const MixyOptions &O) {
  Engine::Config C;
  C.EnableCache = O.EnableCache;
  C.MaxRecursionIterations = O.MaxRecursionIterations;
  C.Shards = blockCacheShardsFor(O.Jobs);
  C.Metrics = O.Metrics;
  // Historical counter names predate the shared engine; keep them.
  C.SymCachePrefix = "mixy.cache.sym.";
  C.TypedCachePrefix = "mixy.cache.typed.";
  return C;
}

MixyAnalysis::MixyAnalysis(const CProgram &Program, CAstContext &Ctx,
                           DiagnosticEngine &Diags, MixyOptions OptsIn)
    : Program(Program), Ctx(Ctx), Diags(Diags),
      Opts(normalizedOptions(std::move(OptsIn))),
      Solver(smt::createSolver(Opts.Solver, Terms, Opts.Smt)),
      PtrAnal(Program, Ctx, Diags), Qual(Program, Ctx, Diags, Opts.Qual),
      Exec(Program, Ctx, Diags, Terms, *Solver, Opts.Sym),
      Eng(engineConfig(Opts)), Solvers(Opts.Smt, Opts.Solver) {
  assert(Solver && "unknown solver backend (validate the SolverSpec with "
                   "parseSolverBackend before constructing)");
  Qual.setSymHook(this);
  Exec.setTypedCallHook(this);
  BodyEngine = concolic::makeCBodyEngine(Exec, Opts.ExecMode, Opts.Metrics,
                                         Opts.Telemetry);
  if (BodyEngine)
    Exec.setBodyEngine(BodyEngine.get());
}

MixyAnalysis::~MixyAnalysis() = default;

void MixyAnalysis::bumpStat(unsigned MixyStats::*Field) {
  std::lock_guard<std::mutex> Lock(StatsM);
  ++(Statistics.*Field);
}

void MixyAnalysis::publishStats() {
  obs::MetricsRegistry *M = Opts.Metrics;
  if (!M)
    return;
  // Counters are monotone; raise each one to the stat's current value so
  // repeated run() calls against one analysis stay consistent.
  auto Publish = [&](const char *Name, uint64_t V) {
    obs::Counter C = M->counter(Name);
    uint64_t Cur = C.value();
    if (V > Cur)
      C.add(V - Cur);
  };
  std::lock_guard<std::mutex> Lock(StatsM);
  Publish("mixy.sym_block_runs", Statistics.SymbolicBlockRuns);
  Publish("mixy.sym_cache_hits", Statistics.SymbolicCacheHits);
  Publish("mixy.typed_block_runs", Statistics.TypedBlockRuns);
  Publish("mixy.typed_cache_hits", Statistics.TypedCacheHits);
  Publish("mixy.switch.typed_to_sym", Statistics.SymbolicCallsFromTyped);
  Publish("mixy.switch.sym_to_typed", Statistics.TypedCallsFromSymbolic);
  Publish("mixy.fixpoint_rounds", Statistics.FixpointIterations);
  Publish("mixy.recursions", Statistics.RecursionsDetected);
}

// === dependency edges (persist closures + worklist site graph) ===============

std::map<const CFuncDecl *, std::vector<const CFuncDecl *>>
MixyAnalysis::dependencyEdges(bool &SawIndirect) {
  // A block's result depends on its callees (direct call graph; indirect
  // calls conservatively reach every defined function, mirroring
  // typedRegionFrom) and on its qualifier-alias neighbors:
  // restoreAliasing unifies qualifiers of variables sharing a points-to
  // class, so an edit to one such function can shift another's calling
  // context.
  std::map<const CFuncDecl *, std::vector<const CFuncDecl *>> Deps;
  SawIndirect = false;
  for (const CFuncDecl *F : Program.Funcs) {
    if (!F->isDefined())
      continue;
    std::set<const CFuncDecl *> Callees;
    collectCallees(F->body(), Callees, SawIndirect);
    Deps[F].assign(Callees.begin(), Callees.end());
  }
  if (SawIndirect) {
    std::vector<const CFuncDecl *> All;
    for (const auto &[F, D] : Deps) {
      (void)D;
      All.push_back(F);
    }
    for (auto &[F, D] : Deps) {
      (void)F;
      D = All;
    }
  } else {
    for (PointsToAnalysis::CellId Cell = 1; Cell <= PtrAnal.numCells();
         ++Cell) {
      if (PtrAnal.find(Cell) != Cell)
        continue;
      std::set<const CFuncDecl *> Owners;
      for (const auto &[Func, Name] : PtrAnal.variablesInClass(Cell)) {
        (void)Name;
        if (Func && Func->isDefined())
          Owners.insert(Func);
      }
      if (Owners.size() < 2)
        continue;
      for (const CFuncDecl *A : Owners)
        for (const CFuncDecl *B : Owners)
          if (A != B)
            Deps[A].push_back(B);
    }
  }
  return Deps;
}

// === persistent cache / incremental engine (src/persist/) ====================

void MixyAnalysis::initPersist() {
  persist::PersistSession *Session = Opts.Persist;
  if (!Session || PersistReady)
    return;
  PersistReady = true;
  PersistBlocks = Session->incremental();

  // Content hash per defined function, from the printed AST (stable
  // across runs; see persist/AstHash.h).
  std::map<const CFuncDecl *, uint64_t> Content;
  for (const CFuncDecl *F : Program.Funcs)
    if (F->isDefined())
      Content[F] = persist::functionContentHash(*F);
  uint64_t Env = persist::environmentHash(Program);

  bool SawIndirect = false;
  FuncClosure =
      persist::closureHashes(Content, dependencyEdges(SawIndirect), Env);

  // Manifest bookkeeping: record this run's hashes and, in incremental
  // mode, diff against the previous run's to report how much of the
  // program actually needs re-analysis ("persist.funcs.*" metrics).
  persist::Manifest M;
  for (const auto &[F, Hash] : Content)
    M.Funcs[F->name()] = {Hash, FuncClosure.at(F)};
  const persist::Manifest &Prev = Session->previousManifest();
  if (Opts.Metrics && PersistBlocks) {
    unsigned Changed = 0, Dirty = 0;
    for (const auto &[Name, Rec] : M.Funcs) {
      auto It = Prev.Funcs.find(Name);
      if (It == Prev.Funcs.end() || It->second.ContentHash != Rec.ContentHash)
        ++Changed;
      if (It == Prev.Funcs.end() || It->second.ClosureHash != Rec.ClosureHash)
        ++Dirty;
    }
    Opts.Metrics->counter("persist.funcs.total").add(M.Funcs.size());
    Opts.Metrics->counter("persist.funcs.changed").add(Changed);
    Opts.Metrics->counter("persist.funcs.dirty").add(Dirty);
  }
  Session->setCurrentManifest(std::move(M));
}

uint64_t MixyAnalysis::stableBlockKey(const BlockKey &Key) const {
  StableHasher H;
  H.u64(FuncClosure.at(Key.F));
  H.boolean(Key.Symbolic);
  H.u32((uint32_t)Key.Params.size());
  for (NullSeed S : Key.Params)
    H.u8((uint8_t)S);
  H.u32((uint32_t)Key.Globals.size());
  for (const auto &[Name, Seed] : Key.Globals) {
    H.str(Name);
    H.u8((uint8_t)Seed);
  }
  return H.digest();
}

std::string MixyAnalysis::encodeBlockSummary(
    const SymOutcome &Outcome, const std::vector<Diagnostic> &Slice,
    const std::vector<TypedSwitch> &Switches) const {
  persist::ByteWriter W;
  W.boolean(Outcome.RetMayBeNull);
  W.u32((uint32_t)Outcome.ParamPointeeMayBeNull.size());
  for (bool B : Outcome.ParamPointeeMayBeNull)
    W.boolean(B);
  W.u32((uint32_t)Outcome.GlobalMayBeNull.size());
  for (const auto &[Name, MayNull] : Outcome.GlobalMayBeNull) {
    W.str(Name);
    W.boolean(MayNull);
  }
  W.u32((uint32_t)Slice.size());
  for (const Diagnostic &D : Slice) {
    W.u8((uint8_t)D.Kind);
    W.u16((uint16_t)D.ID);
    W.u32(D.Loc.Line);
    W.u32(D.Loc.Column);
    W.str(D.Message);
    // The provenance payload rides along verbatim, so a warm hit replays
    // the same explanation the cold run printed.
    W.boolean(D.Prov != nullptr);
    if (D.Prov)
      prov::encodeProvenance(*D.Prov, W);
  }
  W.u32((uint32_t)Switches.size());
  for (const TypedSwitch &S : Switches) {
    W.str(S.Callee);
    W.u32((uint32_t)S.Params.size());
    for (NullSeed Seed : S.Params)
      W.u8((uint8_t)Seed);
    W.u32((uint32_t)S.Globals.size());
    for (const auto &[Name, Seed] : S.Globals) {
      W.str(Name);
      W.u8((uint8_t)Seed);
    }
    W.u32(S.Loc.Line);
    W.u32(S.Loc.Column);
  }
  return W.take();
}

bool MixyAnalysis::decodeBlockSummary(
    const std::string &Payload, SymOutcome &Outcome,
    std::vector<Diagnostic> &Slice,
    std::vector<TypedSwitch> &Switches) const {
  persist::ByteReader R(Payload);
  Outcome = SymOutcome();
  Slice.clear();
  Switches.clear();
  Outcome.RetMayBeNull = R.boolean();
  uint32_t NumParams = R.u32();
  for (uint32_t I = 0; R.ok() && I != NumParams; ++I)
    Outcome.ParamPointeeMayBeNull.push_back(R.boolean());
  uint32_t NumGlobals = R.u32();
  for (uint32_t I = 0; R.ok() && I != NumGlobals; ++I) {
    std::string Name = R.str();
    Outcome.GlobalMayBeNull[Name] = R.boolean();
  }
  uint32_t NumDiags = R.u32();
  for (uint32_t I = 0; R.ok() && I != NumDiags; ++I) {
    Diagnostic D;
    uint8_t Kind = R.u8();
    if (Kind > (uint8_t)DiagKind::Note)
      return false;
    D.Kind = (DiagKind)Kind;
    D.ID = (DiagID)R.u16();
    D.Loc.Line = R.u32();
    D.Loc.Column = R.u32();
    D.Message = R.str();
    if (R.boolean()) {
      D.Prov = prov::decodeProvenance(R);
      if (!D.Prov)
        return false;
    }
    Slice.push_back(std::move(D));
  }
  uint32_t NumSwitches = R.u32();
  for (uint32_t I = 0; R.ok() && I != NumSwitches; ++I) {
    TypedSwitch S;
    S.Callee = R.str();
    uint32_t NP = R.u32();
    for (uint32_t J = 0; R.ok() && J != NP; ++J) {
      uint8_t Seed = R.u8();
      if (Seed > (uint8_t)NullSeed::Nonnull)
        return false;
      S.Params.push_back((NullSeed)Seed);
    }
    uint32_t NG = R.u32();
    for (uint32_t J = 0; R.ok() && J != NG; ++J) {
      std::string Name = R.str();
      uint8_t Seed = R.u8();
      if (Seed > (uint8_t)NullSeed::Nonnull)
        return false;
      S.Globals[Name] = (NullSeed)Seed;
    }
    S.Loc.Line = R.u32();
    S.Loc.Column = R.u32();
    Switches.push_back(std::move(S));
  }
  return R.ok() && R.atEnd();
}

void MixyAnalysis::storeBlockSummary(
    uint64_t PKey, const SymOutcome &Outcome,
    const std::vector<Diagnostic> &Slice,
    const std::vector<TypedSwitch> &Switches) {
  // Read-merge-write under a lock: a parallel run can evaluate the same
  // calling context on two workers against different snapshots of the
  // shared qualifier state, and each evaluation's outcome is a valid
  // under-approximation of what the fixpoint ultimately applied. The
  // qualifier graph received the union of the seedings, so the summary a
  // warm run replays must be the union too — every fact here is a
  // monotone may-be-null bit, so merging is an OR and reaches the same
  // least fixpoint.
  std::lock_guard<std::mutex> Lock(PersistStoreM);
  SymOutcome MergedOutcome = Outcome;
  std::vector<Diagnostic> MergedSlice = Slice;
  std::vector<TypedSwitch> MergedSwitches = Switches;
  if (auto Payload = Opts.Persist->blocks().lookup(PKey)) {
    SymOutcome Old;
    std::vector<Diagnostic> OldSlice;
    std::vector<TypedSwitch> OldSwitches;
    if (decodeBlockSummary(*Payload, Old, OldSlice, OldSwitches)) {
      MergedOutcome.RetMayBeNull |= Old.RetMayBeNull;
      if (MergedOutcome.ParamPointeeMayBeNull.size() <
          Old.ParamPointeeMayBeNull.size())
        MergedOutcome.ParamPointeeMayBeNull.resize(
            Old.ParamPointeeMayBeNull.size(), false);
      for (size_t I = 0; I != Old.ParamPointeeMayBeNull.size(); ++I)
        if (Old.ParamPointeeMayBeNull[I])
          MergedOutcome.ParamPointeeMayBeNull[I] = true;
      for (const auto &[Name, MayNull] : Old.GlobalMayBeNull)
        if (MayNull)
          MergedOutcome.GlobalMayBeNull[Name] = true;
      // Union the switch logs: replaying a switch re-seeds constraints
      // the solver already has, so repeats are idempotent — but a switch
      // only one evaluation recorded must survive.
      auto SameSwitch = [](const TypedSwitch &A, const TypedSwitch &B) {
        return A.Callee == B.Callee && A.Params == B.Params &&
               A.Globals == B.Globals && A.Loc.Line == B.Loc.Line &&
               A.Loc.Column == B.Loc.Column;
      };
      for (const TypedSwitch &S : OldSwitches) {
        bool Seen = false;
        for (const TypedSwitch &N : MergedSwitches)
          Seen = Seen || SameSwitch(N, S);
        if (!Seen)
          MergedSwitches.push_back(S);
      }
      // Union the diagnostic slices, keeping each warning's trailing
      // notes attached to it. Replay dedups repeated warnings anyway;
      // deduping here keeps the payload from growing on every re-store.
      auto GroupKey = [](const Diagnostic &D) {
        return std::to_string((int)D.Kind) + "|" +
               std::to_string((int)D.ID) + "|" + std::to_string(D.Loc.Line) +
               ":" + std::to_string(D.Loc.Column) + "|" + D.Message;
      };
      std::set<std::string> Have;
      for (const Diagnostic &D : MergedSlice)
        if (D.Kind != DiagKind::Note)
          Have.insert(GroupKey(D));
      bool CopyGroup = false;
      for (const Diagnostic &D : OldSlice) {
        if (D.Kind != DiagKind::Note)
          CopyGroup = Have.insert(GroupKey(D)).second;
        if (CopyGroup)
          MergedSlice.push_back(D);
      }
    }
  }
  Opts.Persist->blocks().store(
      PKey, encodeBlockSummary(MergedOutcome, MergedSlice, MergedSwitches));
}

bool MixyAnalysis::switchesResolvable(
    const std::vector<TypedSwitch> &Switches) const {
  for (const TypedSwitch &S : Switches)
    if (!Program.findFunc(S.Callee))
      return false;
  return true;
}

void MixyAnalysis::replayTypedSwitches(
    const std::vector<TypedSwitch> &Switches, ExecContext C) {
  for (const TypedSwitch &S : Switches) {
    BlockKey Key;
    Key.Symbolic = false;
    Key.F = Program.findFunc(S.Callee);
    Key.Params = S.Params;
    Key.Globals = S.Globals;
    // Same serialization as a live sym-to-typed switch: the typed block
    // runs against the shared qualifier graph.
    std::unique_lock<std::recursive_mutex> Lock(QualM, std::defer_lock);
    if (parallel())
      Lock.lock();
    computeTypedRet(Key, S.Loc, C);
  }
}

// === region collection =======================================================

void MixyAnalysis::collectCallees(const CStmt *S,
                                  std::set<const CFuncDecl *> &Out,
                                  bool &SawIndirect) {
  if (!S)
    return;
  // Walk statements; inspect expressions for calls and address-taken
  // function names.
  std::vector<const CExpr *> Exprs;
  switch (S->kind()) {
  case CStmtKind::Expr:
    Exprs.push_back(cast<CExprStmt>(S)->expr());
    break;
  case CStmtKind::Decl:
    if (cast<CDeclStmt>(S)->init())
      Exprs.push_back(cast<CDeclStmt>(S)->init());
    break;
  case CStmtKind::If: {
    const auto *I = cast<CIfStmt>(S);
    Exprs.push_back(I->cond());
    collectCallees(I->thenStmt(), Out, SawIndirect);
    collectCallees(I->elseStmt(), Out, SawIndirect);
    break;
  }
  case CStmtKind::While: {
    const auto *W = cast<CWhileStmt>(S);
    Exprs.push_back(W->cond());
    collectCallees(W->body(), Out, SawIndirect);
    break;
  }
  case CStmtKind::Return:
    if (cast<CReturnStmt>(S)->value())
      Exprs.push_back(cast<CReturnStmt>(S)->value());
    break;
  case CStmtKind::Block:
    for (const CStmt *Sub : cast<CBlockStmt>(S)->stmts())
      collectCallees(Sub, Out, SawIndirect);
    break;
  }

  CSema Sema(Program, Ctx, Diags);
  while (!Exprs.empty()) {
    const CExpr *E = Exprs.back();
    Exprs.pop_back();
    switch (E->kind()) {
    case CExprKind::Call: {
      const auto *Call = cast<CCall>(E);
      if (const CFuncDecl *F = Sema.directCallee(Call))
        Out.insert(F);
      else {
        SawIndirect = true;
        Exprs.push_back(Call->callee());
      }
      for (const CExpr *Arg : Call->args())
        Exprs.push_back(Arg);
      break;
    }
    case CExprKind::Unary:
      Exprs.push_back(cast<CUnary>(E)->sub());
      break;
    case CExprKind::Binary:
      Exprs.push_back(cast<CBinary>(E)->lhs());
      Exprs.push_back(cast<CBinary>(E)->rhs());
      break;
    case CExprKind::Assign:
      Exprs.push_back(cast<CAssign>(E)->target());
      Exprs.push_back(cast<CAssign>(E)->value());
      break;
    case CExprKind::Member:
      Exprs.push_back(cast<CMember>(E)->base());
      break;
    case CExprKind::Cast:
      Exprs.push_back(cast<CCast>(E)->sub());
      break;
    case CExprKind::Ident:
      // A function name outside call position: address taken.
      if (Program.findFunc(cast<CIdent>(E)->name()))
        SawIndirect = true;
      break;
    default:
      break;
    }
  }
}

std::set<const CFuncDecl *>
MixyAnalysis::typedRegionFrom(const CFuncDecl *Entry) {
  // BFS over the call graph, stopping at the MIX(symbolic) frontier.
  std::set<const CFuncDecl *> Region;
  std::vector<const CFuncDecl *> Work;
  bool SawIndirect = false;
  Work.push_back(Entry);
  while (!Work.empty()) {
    const CFuncDecl *F = Work.back();
    Work.pop_back();
    if (!F->isDefined() || F->mixAnnot() == MixAnnot::Symbolic)
      continue;
    if (!Region.insert(F).second)
      continue;
    std::set<const CFuncDecl *> Callees;
    collectCallees(F->body(), Callees, SawIndirect);
    for (const CFuncDecl *Callee : Callees)
      Work.push_back(Callee);
  }
  if (SawIndirect) {
    // Calls through function pointers: conservatively include every
    // defined, non-symbolic function whose address could be taken (the
    // paper uses CIL's pointer analysis to find the targets).
    for (const CFuncDecl *F : Program.Funcs)
      if (F->isDefined() && F->mixAnnot() != MixAnnot::Symbolic)
        Region.insert(F);
  }
  return Region;
}

// === context computation (Sections 4.1 / 4.3) ================================

std::vector<NullSeed>
MixyAnalysis::paramSeedsFromArgQuals(const CFuncDecl *Callee,
                                     const std::vector<QualVec> &ArgQuals) {
  // "We first try to solve the current set of constraints to see whether
  // [the qualifier variable] has a solution as either null or nonnull...
  // Otherwise, if it could be either, we first optimistically assume it
  // is nonnull." (Section 4.1)
  Qual.solve();
  std::vector<NullSeed> Seeds;
  for (size_t I = 0; I != Callee->params().size(); ++I) {
    const CType *Ty = Callee->params()[I].Ty;
    if (!Ty->isPointer()) {
      Seeds.push_back(NullSeed::Nonnull); // ignored for non-pointers
      continue;
    }
    bool MayNull = false;
    if (I < ArgQuals.size() && !ArgQuals[I].empty())
      MayNull = Qual.mayBeNull(ArgQuals[I][0]);
    Seeds.push_back(MayNull ? NullSeed::MayBeNull : NullSeed::Nonnull);
  }
  return Seeds;
}

std::map<std::string, NullSeed> MixyAnalysis::globalSeedsFromQuals() {
  Qual.solve();
  std::map<std::string, NullSeed> Seeds;
  for (const CGlobalDecl *G : Program.Globals) {
    if (!G->type()->isPointer())
      continue;
    const QualVec &Q = Qual.qualsOfVar(nullptr, G->name());
    bool MayNull = !Q.empty() && Qual.mayBeNull(Q[0]);
    Seeds[G->name()] = MayNull ? NullSeed::MayBeNull : NullSeed::Nonnull;
  }
  return Seeds;
}

QualVec MixyAnalysis::freshQuals(const CType *Ty,
                                 const std::string &Description,
                                 SourceLoc Loc) {
  QualVec Out;
  unsigned Level = 0;
  while (Ty->isPointer()) {
    std::string Name = Description;
    if (Level != 0)
      Name += " @" + std::to_string(Level);
    Out.push_back(Qual.graph().newNode(Name, Loc));
    Ty = Ty->pointee();
    ++Level;
  }
  return Out;
}

// === parallel-engine plumbing ================================================

MixyAnalysis::WorkerContext &MixyAnalysis::workerContext() {
  int W = Pool->currentWorker();
  std::lock_guard<std::mutex> Lock(SlotsM);
  std::unique_ptr<WorkerContext> &Slot = WorkerSlots[(size_t)W];
  if (!Slot)
    Slot = std::make_unique<WorkerContext>(*this);
  return *Slot;
}

MixyAnalysis::ExecContext MixyAnalysis::currentContext() {
  auto *W = static_cast<WorkerContext *>(ActiveWorkerCtx);
  if (W && W->Owner == this)
    return ExecContext{W->Exec, W->Diags, W->Stack};
  return ExecContext{Exec, Diags, BlockStack};
}

void MixyAnalysis::mergeRoundDiagnostics(
    const std::vector<std::vector<Diagnostic>> &Per) {
  // Append in round-task order (deterministic: tasks are keyed by the
  // round's distinct-context list, not by which worker ran them). Each
  // worker executor already deduplicates its own warnings; the set below
  // extends that across workers with the same location|message key.
  for (const std::vector<Diagnostic> &Slice : Per) {
    bool DropNotes = false;
    for (const Diagnostic &D : Slice) {
      if (D.Kind == DiagKind::Warning) {
        std::string Key = D.Loc.str() + "|" + D.Message;
        DropNotes = !MergedWarnings.insert(Key).second;
        if (DropNotes)
          continue;
      } else if (D.Kind == DiagKind::Note && DropNotes) {
        continue; // notes ride with the warning that owned them
      } else {
        DropNotes = false;
      }
      size_t Idx = Diags.report(D.Kind, D.Loc, D.Message, D.ID);
      if (D.Prov)
        Diags.attachProvenance(Idx, D.Prov);
    }
  }
}

// === symbolic blocks (typed -> symbolic -> typed) ===========================

MixyAnalysis::SymOutcome
MixyAnalysis::translateResult(const CFuncDecl *F, const CSymResult &Result,
                              CSymExecutor &WithExec) {
  // "From Symbolic Values to Types": for each caller-visible pointer slot,
  // ask whether g and (s = 0) is satisfiable and record null if so.
  SymOutcome Outcome;
  Outcome.ParamPointeeMayBeNull.assign(F->params().size(), false);

  for (const CSymResult::PathOut &P : Result.Paths) {
    if (P.Returned && F->returnType()->isPointer() && P.Ret.isPtr() &&
        WithExec.mayBeNull(P.Path, P.Ret))
      Outcome.RetMayBeNull = true;

    for (size_t I = 0; I != F->params().size(); ++I) {
      LocId Pointee = I < Result.ParamPointeeLocs.size()
                          ? Result.ParamPointeeLocs[I]
                          : NoLoc;
      if (Pointee == NoLoc)
        continue;
      auto Cell = CSymExecutor::finalCell(P, Pointee, "");
      if (Cell && Cell->isPtr() && WithExec.mayBeNull(P.Path, *Cell))
        Outcome.ParamPointeeMayBeNull[I] = true;
    }

    for (const CGlobalDecl *G : Program.Globals) {
      if (!G->type()->isPointer())
        continue;
      auto Cell =
          CSymExecutor::finalCell(P, WithExec.globalLoc(G->name()), "");
      if (Cell && Cell->isPtr() && WithExec.mayBeNull(P.Path, *Cell))
        Outcome.GlobalMayBeNull[G->name()] = true;
    }
  }
  return Outcome;
}

MixyAnalysis::SymOutcome
MixyAnalysis::computeSymOutcome(const BlockKey &Key, ExecContext C) {
  bool Persistable = PersistBlocks && FuncClosure.count(Key.F) != 0;
  uint64_t PKey = Persistable ? stableBlockKey(Key) : 0;

  // Run state the engine hooks share: the trace span lives here so it
  // brackets the whole run (it outlives OnEvalBegin and is still open
  // through OnEvalEnd's provenance/persist work, like the historical
  // inline code); the switch log records this run's sym-to-typed
  // switches for the persistent summary.
  std::optional<obs::TraceSpan> Span;
  std::optional<obs::PhaseTimer> Timer;
  size_t DiagsBefore = 0;
  std::vector<TypedSwitch> SwitchLog;
  void *PrevLog = nullptr;

  engine::RunHooks<SymOutcome> H;
  H.OnCacheHit = [&](const SymOutcome &) {
    bumpStat(&MixyStats::SymbolicCacheHits);
  };
  // Recursion cut-off (Section 4.4) — detected on this thread's stack;
  // recursion cannot span threads, since a block's nested blocks run on
  // the worker that runs the block.
  H.OnRecursion = [&] { bumpStat(&MixyStats::RecursionsDetected); };
  // Persistent replay (src/persist/). The stable key embeds the
  // function's dependency-closure hash, so entries written before an
  // edit anywhere in this block's dependency cone can never match.
  if (Persistable)
    H.Replay = [&]() -> std::optional<SymOutcome> {
      auto Payload = Opts.Persist->blocks().lookup(PKey);
      if (!Payload)
        return std::nullopt;
      SymOutcome Outcome;
      std::vector<Diagnostic> Slice;
      std::vector<TypedSwitch> Switches;
      // A summary only replays when every recorded callee still resolves
      // (always true when the closure hash matched; checked up front so a
      // bad payload never half-replays).
      if (!decodeBlockSummary(*Payload, Outcome, Slice, Switches) ||
          !switchesResolvable(Switches))
        return std::nullopt;
      // Replay the stored run's diagnostics through the executor's
      // warning dedup, mirroring mergeRoundDiagnostics: a warning this
      // context already saw is dropped along with its notes, so warm
      // output matches cold output byte for byte. The slice replays
      // first (it carries the cold emission order, including nested
      // blocks' warnings); the typed switches after it re-seed the
      // qualifier graph, and any diagnostics their nested replays
      // surface deduplicate against the slice.
      bool DropNotes = false;
      for (const Diagnostic &D : Slice) {
        if (D.Kind == DiagKind::Warning) {
          DropNotes = !C.Exec.tryMarkWarningEmitted(D.Loc, D.Message);
          if (DropNotes)
            continue;
        } else if (D.Kind == DiagKind::Note && DropNotes) {
          continue;
        } else {
          DropNotes = false;
        }
        size_t Idx = C.Diags.report(D.Kind, D.Loc, D.Message, D.ID);
        // Re-attach the recorded explanation verbatim — including the
        // disposition the cold run stamped — so --explain output is
        // byte-identical cold vs. warm; only the replay counter tells
        // the runs apart.
        if (D.Prov) {
          C.Diags.attachProvenance(Idx, D.Prov);
          if (Opts.Prov)
            Opts.Prov->countReplay();
        }
      }
      replayTypedSwitches(Switches, C);
      return Outcome;
    };
  H.Init = [&] {
    SymOutcome Assumption;
    Assumption.ParamPointeeMayBeNull.assign(Key.F->params().size(), false);
    return Assumption;
  };
  H.OnEvalBegin = [&] {
    Timer.emplace(Opts.Telemetry, obs::Phase::BlockExec);
    Span.emplace(Opts.Trace, "mixy.block.sym", "mixy");
    if (Opts.Trace)
      Span->setArgs("{\"function\": \"" + jsonEscape(Key.F->name()) + "\"}");
    DiagsBefore = C.Diags.size();
    // Nested blocks save and restore the log slot so each run logs only
    // its own switches.
    PrevLog = ActiveTypedLog;
    ActiveTypedLog = Persistable ? &SwitchLog : nullptr;
  };
  H.OnIteration = [&](unsigned) { bumpStat(&MixyStats::SymbolicBlockRuns); };
  H.Eval = [&] {
    CSymResult Result = C.Exec.runFunction(Key.F, Key.Params, Key.Globals);
    return translateResult(Key.F, Result, C.Exec);
  };
  H.OnEvalEnd = [&](const SymOutcome &Outcome) {
    ActiveTypedLog = PrevLog;

    if (Opts.Prov) {
      // Stamp every diagnostic this run emitted with the block stack that
      // was live while it ran (the engine has already popped this block,
      // so C.Stack is the enclosing context). Nested block runs already
      // stamped their own (deeper) stack and are left alone; notes
      // inherit their parent's context implicitly.
      std::vector<std::string> StackNames;
      for (const Engine::StackEntry &E : C.Stack)
        StackNames.push_back(E.K.F->name() +
                             (E.Symbolic ? " [symbolic]" : " [typed]"));
      StackNames.push_back(Key.F->name() + " [symbolic]");
      const std::vector<Diagnostic> &All = C.Diags.diagnostics();
      for (size_t I = DiagsBefore; I != All.size(); ++I) {
        const Diagnostic &D = All[I];
        if (D.Kind == DiagKind::Note)
          continue;
        if (D.Prov && !D.Prov->Block.Stack.empty())
          continue;
        auto P = std::make_shared<prov::DiagProvenance>(
            D.Prov ? *D.Prov : prov::DiagProvenance());
        P->Block.Stack = StackNames;
        P->Block.Disposition = prov::BlockDisposition::Fresh;
        C.Diags.attachProvenance(I, std::move(P));
        Opts.Prov->countBlock();
      }
    }

    if (Persistable) {
      const std::vector<Diagnostic> &All = C.Diags.diagnostics();
      std::vector<Diagnostic> Slice(All.begin() + (long)DiagsBefore,
                                    All.end());
      storeBlockSummary(PKey, Outcome, Slice, SwitchLog);
    }
  };

  return Eng.runSymbolic(Key, C.Stack, H);
}

void MixyAnalysis::restoreAliasing(const CFuncDecl *Callee) {
  if (!Opts.RestoreAliasing)
    return;
  // "We use CIL's built-in may pointer analysis to conservatively
  // discover points-to relationships... we add constraints to require
  // that all may-aliased expressions have the same type." (Section 4.2)
  auto UnifyTargetsOf = [&](PointsToAnalysis::CellId Cell) {
    PointsToAnalysis::CellId Target = PtrAnal.pointsTo(Cell);
    if (Target == PointsToAnalysis::NoCell)
      return;
    Qual.unifyAliasClass(PtrAnal.variablesInClass(Target), Callee->loc());
  };
  for (const auto &P : Callee->params())
    if (P.Ty->isPointer())
      UnifyTargetsOf(PtrAnal.cellOfVar(Callee, P.Name));
  for (const CGlobalDecl *G : Program.Globals)
    if (G->type()->isPointer())
      UnifyTargetsOf(PtrAnal.cellOfVar(nullptr, G->name()));
}

void MixyAnalysis::applySymOutcome(const SymOutcome &Outcome,
                                   const CCall *Call,
                                   const CFuncDecl *Callee,
                                   const std::vector<QualVec> &ArgQuals,
                                   QualVec &RetQuals) {
  // These seeds cross the symbolic-to-typed boundary (the block summary
  // feeding the qualifier graph), so their flow-chain edges are labeled
  // as mix-boundary edges.
  if (Outcome.RetMayBeNull && !RetQuals.empty())
    Qual.seedNull(RetQuals[0],
                  "symbolic result of " + Callee->name() + " may be null",
                  Call->loc(), prov::FlowEdgeKind::MixBoundary);
  for (size_t I = 0; I != Outcome.ParamPointeeMayBeNull.size(); ++I) {
    if (!Outcome.ParamPointeeMayBeNull[I])
      continue;
    if (I < ArgQuals.size() && ArgQuals[I].size() > 1)
      Qual.seedNull(ArgQuals[I][1],
                    "after " + Callee->name() + ", *" +
                        Callee->params()[I].Name + " may be null",
                    Call->loc(), prov::FlowEdgeKind::MixBoundary);
  }
  for (const auto &[Name, MayNull] : Outcome.GlobalMayBeNull) {
    if (!MayNull)
      continue;
    const QualVec &Q = Qual.qualsOfVar(nullptr, Name);
    if (!Q.empty())
      Qual.seedNull(Q[0],
                    "after " + Callee->name() + ", global " + Name +
                        " may be null",
                    Call->loc(), prov::FlowEdgeKind::MixBoundary);
  }
  restoreAliasing(Callee);
}

bool MixyAnalysis::handleSymbolicCall(QualInference &Inference,
                                      const CCall *Call,
                                      const CFuncDecl *Callee,
                                      const std::vector<QualVec> &ArgQuals,
                                      QualVec &RetQuals) {
  if (!Callee->isDefined())
    return false;
  (void)Inference;

  if (parallel()) {
    auto *W = static_cast<WorkerContext *>(ActiveWorkerCtx);
    if (!W || W->Owner != this) {
      // Main thread, during constraint generation: defer the block to the
      // next round barrier. The fresh, unconstrained result qualifiers are
      // exactly the paper's optimism ("we first optimistically assume it
      // is nonnull", Section 4.1); the fixpoint loop evaluates the block
      // and seeds the constraints it missed.
      std::lock_guard<std::recursive_mutex> Lock(QualM);
      bumpStat(&MixyStats::SymbolicCallsFromTyped);
      RetQuals = freshQuals(Callee->returnType(),
                            "symbolic call " + Callee->name(), Call->loc());
      SymCallSites.push_back({Call, Callee, ArgQuals, RetQuals, BlockKey()});
      return true;
    }
    // Worker thread: a typed block nested inside a symbolic block hit the
    // symbolic frontier again. Run it synchronously on this worker's
    // context; the caller (callTypedFunction) already holds QualM.
    bumpStat(&MixyStats::SymbolicCallsFromTyped);
    BlockKey Key;
    Key.Symbolic = true;
    Key.F = Callee;
    Key.Params = paramSeedsFromArgQuals(Callee, ArgQuals);
    Key.Globals = globalSeedsFromQuals();
    RetQuals = freshQuals(Callee->returnType(),
                          "symbolic call " + Callee->name(), Call->loc());
    SymOutcome Outcome = computeSymOutcome(Key, currentContext());
    applySymOutcome(Outcome, Call, Callee, ArgQuals, RetQuals);
    SymCallSites.push_back({Call, Callee, ArgQuals, RetQuals, Key});
    return true;
  }

  bumpStat(&MixyStats::SymbolicCallsFromTyped);

  BlockKey Key;
  Key.Symbolic = true;
  Key.F = Callee;
  Key.Params = paramSeedsFromArgQuals(Callee, ArgQuals);
  Key.Globals = globalSeedsFromQuals();

  RetQuals = freshQuals(Callee->returnType(),
                        "symbolic call " + Callee->name(), Call->loc());

  SymOutcome Outcome = computeSymOutcome(Key, currentContext());
  applySymOutcome(Outcome, Call, Callee, ArgQuals, RetQuals);

  // Remember the site for the fixpoint loop (Section 4.1).
  SymCallSites.push_back({Call, Callee, ArgQuals, RetQuals, Key});
  return true;
}

// === typed blocks (symbolic -> typed -> symbolic) ===========================

bool MixyAnalysis::computeTypedRet(const BlockKey &Key, SourceLoc CallLoc,
                                   ExecContext C) {
  std::optional<obs::TraceSpan> Span;
  std::optional<obs::PhaseTimer> Timer;

  engine::RunHooks<bool> H;
  H.OnCacheHit = [&](const bool &) { bumpStat(&MixyStats::TypedCacheHits); };
  H.OnRecursion = [&] { bumpStat(&MixyStats::RecursionsDetected); };
  H.OnEvalBegin = [&] {
    Timer.emplace(Opts.Telemetry, obs::Phase::BlockExec);
    Span.emplace(Opts.Trace, "mixy.block.typed", "mixy");
    if (Opts.Trace)
      Span->setArgs("{\"function\": \"" + jsonEscape(Key.F->name()) + "\"}");
  };
  H.OnIteration = [&](unsigned) { bumpStat(&MixyStats::TypedBlockRuns); };
  H.Eval = [&] {
    // Run qualifier inference over the typed region rooted here; nested
    // MIX(symbolic) frontier calls re-enter handleSymbolicCall.
    for (const CFuncDecl *F : typedRegionFrom(Key.F))
      Qual.analyzeFunction(F);
    Qual.analyzeGlobals();

    // Seed the calling context ("From Symbolic Values to Types").
    for (size_t I = 0; I != Key.Params.size(); ++I) {
      if (Key.Params[I] != NullSeed::MayBeNull)
        continue;
      const QualVec &PQ = Qual.qualsOfParam(Key.F, (unsigned)I);
      if (!PQ.empty())
        Qual.seedNull(PQ[0], "symbolic argument may be null", CallLoc,
                      prov::FlowEdgeKind::MixBoundary);
    }
    for (const auto &[Name, Seed] : Key.Globals) {
      if (Seed != NullSeed::MayBeNull)
        continue;
      const QualVec &GQ = Qual.qualsOfVar(nullptr, Name);
      if (!GQ.empty())
        Qual.seedNull(GQ[0], "global may be null at symbolic call", CallLoc,
                      prov::FlowEdgeKind::MixBoundary);
    }

    Qual.solve();
    const QualVec &RQ = Qual.qualsOfReturn(Key.F);
    return !RQ.empty() && Qual.mayBeNull(RQ[0]);
  };

  return Eng.runTyped(Key, C.Stack, H);
}

bool MixyAnalysis::callTypedFunction(CSymExecutor &Exec2, CSymState &State,
                                     const CCall *Call,
                                     const CFuncDecl *Callee,
                                     const std::vector<CSymValue> &Args,
                                     CSymValue &RetOut) {
  bumpStat(&MixyStats::TypedCallsFromSymbolic);

  BlockKey Key;
  Key.Symbolic = false;
  Key.F = Callee;
  // The calling context from symbolic values: solver queries per pointer
  // argument and per pointer global present in the store. These touch
  // only the calling executor's own state — no lock needed yet.
  for (size_t I = 0; I != Callee->params().size(); ++I) {
    bool MayNull = I < Args.size() && Args[I].isPtr() &&
                   Exec2.mayBeNull(State.Path, Args[I]);
    Key.Params.push_back(MayNull ? NullSeed::MayBeNull : NullSeed::Nonnull);
  }
  for (const CGlobalDecl *G : Program.Globals) {
    if (!G->type()->isPointer())
      continue;
    auto Cell = State.Store.get({Exec2.globalLoc(G->name()), ""});
    if (!Cell || !Cell->isPtr())
      continue;
    Key.Globals[G->name()] = Exec2.mayBeNull(State.Path, *Cell)
                                 ? NullSeed::MayBeNull
                                 : NullSeed::Nonnull;
  }

  // Record the switch for the enclosing block's persistent summary (null
  // slot when the run is not being recorded): a warm replay re-seeds the
  // same qualifier constraints this switch is about to.
  if (auto *Log = static_cast<std::vector<TypedSwitch> *>(ActiveTypedLog))
    Log->push_back({Callee->name(), Key.Params, Key.Globals, Call->loc()});

  // The typed block runs against the shared qualifier graph; in parallel
  // mode every such touch is serialized (recursively — typed and symbolic
  // blocks nest through the hooks).
  std::unique_lock<std::recursive_mutex> Lock(QualM, std::defer_lock);
  if (parallel())
    Lock.lock();

  bool RetMayBeNull = computeTypedRet(Key, Call->loc(), currentContext());

  // Re-entering symbolic execution: memory is havocked ("symbolic blocks
  // are forced to start with a fresh memory when switching from typed
  // blocks", Section 4.6), then pointer globals are re-seeded from the
  // current qualifier solution.
  Exec2.havocStore(State);
  Qual.solve();
  for (const CGlobalDecl *G : Program.Globals) {
    if (!G->type()->isPointer())
      continue;
    const QualVec &Q = Qual.qualsOfVar(nullptr, G->name());
    NullSeed Seed = (!Q.empty() && Qual.mayBeNull(Q[0]))
                        ? NullSeed::MayBeNull
                        : NullSeed::Nonnull;
    State.Store.set({Exec2.globalLoc(G->name()), ""},
                    Exec2.seededPointer(G->type(), Seed, G->name()));
  }

  if (Lock.owns_lock())
    Lock.unlock();

  if (Callee->returnType()->isPointer())
    RetOut = Exec2.seededPointer(Callee->returnType(),
                                 RetMayBeNull ? NullSeed::MayBeNull
                                              : NullSeed::Nonnull,
                                 Callee->name() + "()");
  else
    RetOut = CSymValue::scalar(
        Exec2.terms().freshIntVar(Callee->name() + "()"));
  return true;
}

// === driver ==================================================================

unsigned MixyAnalysis::run(StartMode Mode, const std::string &Entry) {
  PtrAnal.run();
  initPersist();

  const CFuncDecl *EntryFunc = Program.findFunc(Entry);
  if (!EntryFunc || !EntryFunc->isDefined()) {
    Diags.error(SourceLoc(), "entry function '" + Entry + "' not found",
                DiagID::EntryNotFound);
    publishStats();
    return Diags.warningCount();
  }

  if (Mode == StartMode::Symbolic ||
      EntryFunc->mixAnnot() == MixAnnot::Symbolic) {
    // Begin in symbolic mode: execute the entry function; typed frontier
    // calls switch through callTypedFunction. A single symbolic block has
    // no sibling blocks to farm out, so this path is always serial.
    ++Statistics.SymbolicBlockRuns;
    {
      obs::PhaseTimer Timer(Opts.Telemetry, obs::Phase::BlockExec);
      obs::TraceSpan Span(Opts.Trace, "mixy.block.sym", "mixy");
      if (Opts.Trace)
        Span.setArgs("{\"function\": \"" + jsonEscape(EntryFunc->name()) +
                     "\"}");
      CSymResult Result = Exec.runFunction(EntryFunc);
      (void)Result;
    }
    Qual.solve();
    Qual.reportWarnings();
    publishStats();
    return Diags.warningCount();
  }

  if (parallel())
    return runTypedParallel(EntryFunc);

  // Begin in typed mode: qualifier inference over the region reachable
  // from the entry, with symbolic frontier calls via handleSymbolicCall.
  Qual.analyzeGlobals();
  for (const CFuncDecl *F : typedRegionFrom(EntryFunc))
    Qual.analyzeFunction(F);

  // Fixpoint (Section 4.1): re-run symbolic blocks whose calling context
  // changed as constraints accumulated, until nothing changes. The
  // engine driver's serial schedule is the historical Gauss-Seidel loop:
  // each site's evaluation sees every earlier one's effects.
  engine::FixpointConfig FC;
  FC.MaxRounds = Opts.MaxFixpointIterations;
  FC.Trace = Opts.Trace;
  FC.RoundSpanName = "mixy.round";
  FC.SpanCategory = "mixy";
  FC.Metrics = Opts.Metrics;
  FC.Telemetry = Opts.Telemetry;
  engine::FixpointDriver Driver(FC);

  engine::FixpointCallbacks CB;
  CB.NumSites = [&] { return SymCallSites.size(); };
  CB.OnRoundBegin = [&](unsigned) { Qual.solve(); };
  CB.Refresh = [&](size_t I) { return refreshSite(I); };
  CB.EvaluateWave = [&](const std::vector<size_t> &Sites, uint64_t) {
    for (size_t I : Sites) {
      // Copy the key before evaluating: a nested frontier call can grow
      // SymCallSites and invalidate references into it.
      BlockKey Key = SymCallSites[I].LastKey;
      SymOutcome Outcome = computeSymOutcome(Key, currentContext());
      SymCallSite &Site = SymCallSites[I];
      applySymOutcome(Outcome, Site.Call, Site.Callee, Site.ArgQuals,
                      Site.RetQuals);
    }
  };
  Statistics.FixpointIterations += Driver.runSerial(CB);

  Qual.solve();
  Qual.reportWarnings();
  publishStats();
  return Diags.warningCount();
}

bool MixyAnalysis::refreshSite(size_t I) {
  // The worklist schedule refreshes sites from pool workers; every touch
  // of the site table and the qualifier graph (the seed computations
  // solve it) is serialized. Uncontended in the serial and round-barrier
  // schedules, where only one thread refreshes.
  std::lock_guard<std::recursive_mutex> Lock(QualM);
  SymCallSite &Site = SymCallSites[I];
  BlockKey Key;
  Key.Symbolic = true;
  Key.F = Site.Callee;
  Key.Params = paramSeedsFromArgQuals(Site.Callee, Site.ArgQuals);
  Key.Globals = globalSeedsFromQuals();
  if (Site.LastKey.F && Key == Site.LastKey)
    return false;
  Site.LastKey = Key;
  return true;
}

void MixyAnalysis::evaluateWave(const std::vector<size_t> &Sites,
                                uint64_t Tag, bool Buffered) {
  // Distinct calling contexts of the wave, in site order (two sites with
  // the same context share one evaluation — and one diagnostics slice,
  // like one cache entry).
  std::vector<BlockKey> Keys;
  std::vector<std::pair<size_t, size_t>> Apply; // (site, key index)
  {
    std::unique_lock<std::recursive_mutex> Lock(QualM, std::defer_lock);
    if (Buffered)
      Lock.lock(); // other SCCs' workers may be touching the site table
    for (size_t I : Sites) {
      const BlockKey &Key = SymCallSites[I].LastKey;
      size_t KeyIdx = 0;
      while (KeyIdx != Keys.size() && !(Keys[KeyIdx] == Key))
        ++KeyIdx;
      if (KeyIdx == Keys.size())
        Keys.push_back(Key);
      Apply.push_back({I, KeyIdx});
    }
  }

  // Evaluate the wave. Results are carried out of the tasks directly
  // (not via the cache, which may be disabled) and diagnostics are
  // collected per task so their merge order is independent of worker
  // scheduling.
  std::vector<SymOutcome> Outcomes(Keys.size());
  std::vector<std::vector<Diagnostic>> Slices(Keys.size());
  Pool->parallelFor(Keys.size(), [&](size_t K) {
    WorkerContext &W = workerContext();
    void *Prev = ActiveWorkerCtx;
    ActiveWorkerCtx = &W;
    size_t Before = W.Diags.size();
    Outcomes[K] =
        computeSymOutcome(Keys[K], ExecContext{W.Exec, W.Diags, W.Stack});
    const std::vector<Diagnostic> &All = W.Diags.diagnostics();
    Slices[K].assign(All.begin() + (long)Before, All.end());
    ActiveWorkerCtx = Prev;
  });

  if (Buffered) {
    // Worklist: SCCs finish in timing-dependent order, so stash the
    // slices under the deterministic wave tag; runTypedParallel merges
    // them in tag order once the driver returns.
    std::lock_guard<std::mutex> Lock(WaveM);
    WaveDiags.emplace(Tag, std::move(Slices));
  } else {
    // Round barrier: the wave IS the round; merge at the barrier.
    mergeRoundDiagnostics(Slices);
  }

  // Apply summaries in site order.
  {
    std::unique_lock<std::recursive_mutex> Lock(QualM, std::defer_lock);
    if (Buffered)
      Lock.lock();
    for (const auto &[SiteIdx, KeyIdx] : Apply) {
      SymCallSite &Site = SymCallSites[SiteIdx];
      applySymOutcome(Outcomes[KeyIdx], Site.Call, Site.Callee,
                      Site.ArgQuals, Site.RetQuals);
    }
  }
}

bool MixyAnalysis::writesPointerGlobal(
    const CStmt *S, const std::set<std::string> &PtrGlobals) {
  if (!S)
    return false;
  std::vector<const CExpr *> Exprs;
  switch (S->kind()) {
  case CStmtKind::Expr:
    Exprs.push_back(cast<CExprStmt>(S)->expr());
    break;
  case CStmtKind::Decl:
    if (cast<CDeclStmt>(S)->init())
      Exprs.push_back(cast<CDeclStmt>(S)->init());
    break;
  case CStmtKind::If: {
    const auto *I = cast<CIfStmt>(S);
    Exprs.push_back(I->cond());
    if (writesPointerGlobal(I->thenStmt(), PtrGlobals) ||
        writesPointerGlobal(I->elseStmt(), PtrGlobals))
      return true;
    break;
  }
  case CStmtKind::While: {
    const auto *W = cast<CWhileStmt>(S);
    Exprs.push_back(W->cond());
    if (writesPointerGlobal(W->body(), PtrGlobals))
      return true;
    break;
  }
  case CStmtKind::Return:
    if (cast<CReturnStmt>(S)->value())
      Exprs.push_back(cast<CReturnStmt>(S)->value());
    break;
  case CStmtKind::Block:
    for (const CStmt *Sub : cast<CBlockStmt>(S)->stmts())
      if (writesPointerGlobal(Sub, PtrGlobals))
        return true;
    break;
  }

  while (!Exprs.empty()) {
    const CExpr *E = Exprs.back();
    Exprs.pop_back();
    switch (E->kind()) {
    case CExprKind::Assign: {
      const auto *A = cast<CAssign>(E);
      const CExpr *Target = A->target();
      if (Target->kind() == CExprKind::Ident) {
        // Direct store to a named variable: a write only when the name
        // is a pointer global (a shadowing local over-approximates).
        if (PtrGlobals.count(cast<CIdent>(Target)->name()))
          return true;
      } else {
        // Indirect store (*p = ..., p->f = ...): may hit anything.
        return true;
      }
      Exprs.push_back(A->value());
      break;
    }
    case CExprKind::Call: {
      const auto *Call = cast<CCall>(E);
      Exprs.push_back(Call->callee());
      for (const CExpr *Arg : Call->args())
        Exprs.push_back(Arg);
      break;
    }
    case CExprKind::Unary:
      Exprs.push_back(cast<CUnary>(E)->sub());
      break;
    case CExprKind::Binary:
      Exprs.push_back(cast<CBinary>(E)->lhs());
      Exprs.push_back(cast<CBinary>(E)->rhs());
      break;
    case CExprKind::Member:
      Exprs.push_back(cast<CMember>(E)->base());
      break;
    case CExprKind::Cast:
      Exprs.push_back(cast<CCast>(E)->sub());
      break;
    default:
      break;
    }
  }
  return false;
}

std::vector<std::pair<size_t, size_t>> MixyAnalysis::buildSiteGraph() {
  // Called once from the coordinator before any worker starts, so the
  // site table is stable. An edge i -> j means "re-evaluating site i may
  // change site j's calling context". Contexts are built from two
  // sources — the argument qualifiers at the site and the pointer
  // globals' qualifiers — so i influences j when i's summary can move
  // either. Precision is best-effort: the driver's validation sweep
  // reaches the least fixpoint even where these edges under-approximate,
  // and over-approximation only costs parallelism (an all-to-all graph
  // collapses to one SCC, which behaves exactly like the round barrier).
  std::vector<std::pair<size_t, size_t>> Edges;
  size_t N = SymCallSites.size();
  if (N < 2)
    return Edges;

  std::set<std::string> PtrGlobals;
  for (const CGlobalDecl *G : Program.Globals)
    if (G->type()->isPointer())
      PtrGlobals.insert(G->name());
  bool AnyPtrGlobal = !PtrGlobals.empty();

  // Alias coupling (Section 4.2): applySymOutcome ends every summary
  // application with restoreAliasing, which unifies the pointee classes
  // of all pointer globals; when such a class holds two or more
  // variables the unification can move qualifiers far from the site.
  bool AliasCoupling = false;
  if (Opts.RestoreAliasing && AnyPtrGlobal) {
    for (const CGlobalDecl *G : Program.Globals) {
      if (!G->type()->isPointer())
        continue;
      PointsToAnalysis::CellId Target =
          PtrAnal.pointsTo(PtrAnal.cellOfVar(nullptr, G->name()));
      if (Target != PointsToAnalysis::NoCell &&
          PtrAnal.variablesInClass(Target).size() >= 2) {
        AliasCoupling = true;
        break;
      }
    }
  }

  bool SawIndirect = false;
  std::map<const CFuncDecl *, std::vector<const CFuncDecl *>> Deps =
      dependencyEdges(SawIndirect);
  std::set<const CFuncDecl *> Writers;
  for (const auto &[F, D] : Deps) {
    (void)D;
    if (writesPointerGlobal(F->body(), PtrGlobals))
      Writers.insert(F);
  }

  // Does anything reachable from F (symbolically executed unmarked
  // callees included) write a pointer global?
  auto ClosureWrites = [&](const CFuncDecl *F) {
    std::set<const CFuncDecl *> Visited;
    std::vector<const CFuncDecl *> Work{F};
    while (!Work.empty()) {
      const CFuncDecl *Cur = Work.back();
      Work.pop_back();
      if (!Visited.insert(Cur).second)
        continue;
      if (Writers.count(Cur))
        return true;
      auto It = Deps.find(Cur);
      if (It != Deps.end())
        for (const CFuncDecl *Callee : It->second)
          Work.push_back(Callee);
    }
    return false;
  };

  for (size_t I = 0; I != N; ++I) {
    const CFuncDecl *Callee = SymCallSites[I].Callee;
    // A pointer in the signature feeds summaries straight into the
    // caller's qualifier graph (return quals / argument pointee quals),
    // whose flow we do not track per-site: influence everything.
    bool PtrSignature = Callee->returnType()->isPointer();
    for (const auto &P : Callee->params())
      PtrSignature = PtrSignature || P.Ty->isPointer();
    // A global write anywhere in the block's call cone moves the global
    // seeds, and every site's context includes every pointer global.
    bool Influences =
        PtrSignature || SawIndirect ||
        (AnyPtrGlobal && (AliasCoupling || ClosureWrites(Callee)));
    if (!Influences)
      continue;
    for (size_t J = 0; J != N; ++J)
      if (J != I)
        Edges.emplace_back(I, J);
  }
  return Edges;
}

unsigned MixyAnalysis::runTypedParallel(const CFuncDecl *EntryFunc) {
  // Warm the lazily-built singleton types so workers mostly read the AST
  // context instead of racing to create them.
  Ctx.voidType();
  Ctx.intType();
  Ctx.charType();

  Pool = std::make_unique<rt::ThreadPool>(Opts.Jobs, Opts.Trace, "mixy");
  WorkerSlots.resize(Pool->workerCount());

  // Constraint generation over the typed region. Frontier calls defer
  // their blocks (handleSymbolicCall records the sites with an empty
  // LastKey), so this phase is pure qualifier inference.
  Qual.analyzeGlobals();
  for (const CFuncDecl *F : typedRegionFrom(EntryFunc))
    Qual.analyzeFunction(F);

  // Parallel fixpoint via the engine driver. Worklist (default):
  // condense the static site-dependency graph into SCCs, iterate each
  // SCC to its own fixpoint on the pool, release dependents as soon as
  // their inputs settle, then validate with plain rounds. Round barrier:
  // the historical Jacobi schedule. The constraint system is monotone,
  // so both reach the same least fixpoint as the serial loop.
  engine::FixpointConfig FC;
  FC.MaxRounds = Opts.MaxFixpointIterations;
  FC.Trace = Opts.Trace;
  FC.RoundSpanName = "mixy.round";
  FC.SpanCategory = "mixy";
  FC.Metrics = Opts.Metrics;
  FC.Telemetry = Opts.Telemetry;
  engine::FixpointDriver Driver(FC);

  bool Worklist = Opts.ParallelSchedule == MixyOptions::Schedule::Worklist;
  engine::FixpointCallbacks CB;
  CB.NumSites = [&] { return SymCallSites.size(); };
  CB.OnRoundBegin = [&](unsigned) { Qual.solve(); };
  CB.Refresh = [&](size_t I) { return refreshSite(I); };
  CB.EvaluateWave = [&](const std::vector<size_t> &Sites, uint64_t Tag) {
    evaluateWave(Sites, Tag, Worklist);
  };

  if (Worklist) {
    CB.Edges = [&] { return buildSiteGraph(); };
    Statistics.FixpointIterations += Driver.runWorklist(CB, *Pool);
    // Merge the buffered diagnostic slices in wave-tag order — a pure
    // function of the SCC structure, not of completion timing.
    for (const auto &[Tag, Slices] : WaveDiags) {
      (void)Tag;
      mergeRoundDiagnostics(Slices);
    }
    WaveDiags.clear();
  } else {
    Statistics.FixpointIterations += Driver.runRoundBarrier(CB);
  }

  Qual.solve();
  Qual.reportWarnings();
  publishStats();
  return Diags.warningCount();
}
