//===--- Mixy.cpp - The MIXY analysis driver --------------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "mixy/Mixy.h"

#include "support/StringExtras.h"

using namespace mix::c;

namespace {
/// The WorkerContext of the pool task currently running on this thread,
/// if any (type-erased so the private nested type stays private).
thread_local void *ActiveWorkerCtx = nullptr;
} // namespace

/// Everything a pool worker owns privately: a leased solver instance
/// (with its term arena), a diagnostics buffer merged at round barriers,
/// a symbolic executor bound to all three, and a recursion stack.
struct MixyAnalysis::WorkerContext {
  MixyAnalysis *Owner;
  smt::SolverPool::Lease SolverLease;
  DiagnosticEngine Diags;
  CSymExecutor Exec;
  std::vector<StackEntry> Stack;
  size_t Merged = 0; ///< diagnostics already consumed by earlier barriers

  explicit WorkerContext(MixyAnalysis &A)
      : Owner(&A), SolverLease(A.Solvers.acquire()),
        Exec(A.Program, A.Ctx, Diags, SolverLease.terms(),
             SolverLease.solver(), A.Opts.Sym) {
    Exec.setTypedCallHook(&A);
  }
};

/// Pushes the analysis-level observability sinks down into the nested
/// option structs so every solver (serial and pooled) reports into the
/// same registry/trace.
static MixyOptions normalizedOptions(MixyOptions O) {
  O.Smt.Metrics = O.Metrics;
  O.Smt.Trace = O.Trace;
  return O;
}

MixyAnalysis::MixyAnalysis(const CProgram &Program, CAstContext &Ctx,
                           DiagnosticEngine &Diags, MixyOptions OptsIn)
    : Program(Program), Ctx(Ctx), Diags(Diags),
      Opts(normalizedOptions(std::move(OptsIn))), Solver(Terms, Opts.Smt),
      PtrAnal(Program, Ctx, Diags), Qual(Program, Ctx, Diags, Opts.Qual),
      Exec(Program, Ctx, Diags, Terms, Solver, Opts.Sym),
      SymCache(blockCacheShardsFor(Opts.Jobs), 0, BlockKeyHash(), Opts.Metrics,
               "mixy.cache.sym."),
      TypedCache(blockCacheShardsFor(Opts.Jobs), 0, BlockKeyHash(),
                 Opts.Metrics, "mixy.cache.typed."),
      Solvers(Opts.Smt) {
  Qual.setSymHook(this);
  Exec.setTypedCallHook(this);
}

MixyAnalysis::~MixyAnalysis() = default;

void MixyAnalysis::bumpStat(unsigned MixyStats::*Field) {
  std::lock_guard<std::mutex> Lock(StatsM);
  ++(Statistics.*Field);
}

void MixyAnalysis::publishStats() {
  obs::MetricsRegistry *M = Opts.Metrics;
  if (!M)
    return;
  // Counters are monotone; raise each one to the stat's current value so
  // repeated run() calls against one analysis stay consistent.
  auto Publish = [&](const char *Name, uint64_t V) {
    obs::Counter C = M->counter(Name);
    uint64_t Cur = C.value();
    if (V > Cur)
      C.add(V - Cur);
  };
  std::lock_guard<std::mutex> Lock(StatsM);
  Publish("mixy.sym_block_runs", Statistics.SymbolicBlockRuns);
  Publish("mixy.sym_cache_hits", Statistics.SymbolicCacheHits);
  Publish("mixy.typed_block_runs", Statistics.TypedBlockRuns);
  Publish("mixy.typed_cache_hits", Statistics.TypedCacheHits);
  Publish("mixy.switch.typed_to_sym", Statistics.SymbolicCallsFromTyped);
  Publish("mixy.switch.sym_to_typed", Statistics.TypedCallsFromSymbolic);
  Publish("mixy.fixpoint_rounds", Statistics.FixpointIterations);
  Publish("mixy.recursions", Statistics.RecursionsDetected);
}

// === region collection =======================================================

void MixyAnalysis::collectCallees(const CStmt *S,
                                  std::set<const CFuncDecl *> &Out,
                                  bool &SawIndirect) {
  if (!S)
    return;
  // Walk statements; inspect expressions for calls and address-taken
  // function names.
  std::vector<const CExpr *> Exprs;
  switch (S->kind()) {
  case CStmtKind::Expr:
    Exprs.push_back(cast<CExprStmt>(S)->expr());
    break;
  case CStmtKind::Decl:
    if (cast<CDeclStmt>(S)->init())
      Exprs.push_back(cast<CDeclStmt>(S)->init());
    break;
  case CStmtKind::If: {
    const auto *I = cast<CIfStmt>(S);
    Exprs.push_back(I->cond());
    collectCallees(I->thenStmt(), Out, SawIndirect);
    collectCallees(I->elseStmt(), Out, SawIndirect);
    break;
  }
  case CStmtKind::While: {
    const auto *W = cast<CWhileStmt>(S);
    Exprs.push_back(W->cond());
    collectCallees(W->body(), Out, SawIndirect);
    break;
  }
  case CStmtKind::Return:
    if (cast<CReturnStmt>(S)->value())
      Exprs.push_back(cast<CReturnStmt>(S)->value());
    break;
  case CStmtKind::Block:
    for (const CStmt *Sub : cast<CBlockStmt>(S)->stmts())
      collectCallees(Sub, Out, SawIndirect);
    break;
  }

  CSema Sema(Program, Ctx, Diags);
  while (!Exprs.empty()) {
    const CExpr *E = Exprs.back();
    Exprs.pop_back();
    switch (E->kind()) {
    case CExprKind::Call: {
      const auto *Call = cast<CCall>(E);
      if (const CFuncDecl *F = Sema.directCallee(Call))
        Out.insert(F);
      else {
        SawIndirect = true;
        Exprs.push_back(Call->callee());
      }
      for (const CExpr *Arg : Call->args())
        Exprs.push_back(Arg);
      break;
    }
    case CExprKind::Unary:
      Exprs.push_back(cast<CUnary>(E)->sub());
      break;
    case CExprKind::Binary:
      Exprs.push_back(cast<CBinary>(E)->lhs());
      Exprs.push_back(cast<CBinary>(E)->rhs());
      break;
    case CExprKind::Assign:
      Exprs.push_back(cast<CAssign>(E)->target());
      Exprs.push_back(cast<CAssign>(E)->value());
      break;
    case CExprKind::Member:
      Exprs.push_back(cast<CMember>(E)->base());
      break;
    case CExprKind::Cast:
      Exprs.push_back(cast<CCast>(E)->sub());
      break;
    case CExprKind::Ident:
      // A function name outside call position: address taken.
      if (Program.findFunc(cast<CIdent>(E)->name()))
        SawIndirect = true;
      break;
    default:
      break;
    }
  }
}

std::set<const CFuncDecl *>
MixyAnalysis::typedRegionFrom(const CFuncDecl *Entry) {
  // BFS over the call graph, stopping at the MIX(symbolic) frontier.
  std::set<const CFuncDecl *> Region;
  std::vector<const CFuncDecl *> Work;
  bool SawIndirect = false;
  Work.push_back(Entry);
  while (!Work.empty()) {
    const CFuncDecl *F = Work.back();
    Work.pop_back();
    if (!F->isDefined() || F->mixAnnot() == MixAnnot::Symbolic)
      continue;
    if (!Region.insert(F).second)
      continue;
    std::set<const CFuncDecl *> Callees;
    collectCallees(F->body(), Callees, SawIndirect);
    for (const CFuncDecl *Callee : Callees)
      Work.push_back(Callee);
  }
  if (SawIndirect) {
    // Calls through function pointers: conservatively include every
    // defined, non-symbolic function whose address could be taken (the
    // paper uses CIL's pointer analysis to find the targets).
    for (const CFuncDecl *F : Program.Funcs)
      if (F->isDefined() && F->mixAnnot() != MixAnnot::Symbolic)
        Region.insert(F);
  }
  return Region;
}

// === context computation (Sections 4.1 / 4.3) ================================

std::vector<NullSeed>
MixyAnalysis::paramSeedsFromArgQuals(const CFuncDecl *Callee,
                                     const std::vector<QualVec> &ArgQuals) {
  // "We first try to solve the current set of constraints to see whether
  // [the qualifier variable] has a solution as either null or nonnull...
  // Otherwise, if it could be either, we first optimistically assume it
  // is nonnull." (Section 4.1)
  Qual.solve();
  std::vector<NullSeed> Seeds;
  for (size_t I = 0; I != Callee->params().size(); ++I) {
    const CType *Ty = Callee->params()[I].Ty;
    if (!Ty->isPointer()) {
      Seeds.push_back(NullSeed::Nonnull); // ignored for non-pointers
      continue;
    }
    bool MayNull = false;
    if (I < ArgQuals.size() && !ArgQuals[I].empty())
      MayNull = Qual.mayBeNull(ArgQuals[I][0]);
    Seeds.push_back(MayNull ? NullSeed::MayBeNull : NullSeed::Nonnull);
  }
  return Seeds;
}

std::map<std::string, NullSeed> MixyAnalysis::globalSeedsFromQuals() {
  Qual.solve();
  std::map<std::string, NullSeed> Seeds;
  for (const CGlobalDecl *G : Program.Globals) {
    if (!G->type()->isPointer())
      continue;
    const QualVec &Q = Qual.qualsOfVar(nullptr, G->name());
    bool MayNull = !Q.empty() && Qual.mayBeNull(Q[0]);
    Seeds[G->name()] = MayNull ? NullSeed::MayBeNull : NullSeed::Nonnull;
  }
  return Seeds;
}

QualVec MixyAnalysis::freshQuals(const CType *Ty,
                                 const std::string &Description,
                                 SourceLoc Loc) {
  QualVec Out;
  unsigned Level = 0;
  while (Ty->isPointer()) {
    std::string Name = Description;
    if (Level != 0)
      Name += " @" + std::to_string(Level);
    Out.push_back(Qual.graph().newNode(Name, Loc));
    Ty = Ty->pointee();
    ++Level;
  }
  return Out;
}

// === parallel-engine plumbing ================================================

MixyAnalysis::WorkerContext &MixyAnalysis::workerContext() {
  int W = Pool->currentWorker();
  std::lock_guard<std::mutex> Lock(SlotsM);
  std::unique_ptr<WorkerContext> &Slot = WorkerSlots[(size_t)W];
  if (!Slot)
    Slot = std::make_unique<WorkerContext>(*this);
  return *Slot;
}

MixyAnalysis::ExecContext MixyAnalysis::currentContext() {
  auto *W = static_cast<WorkerContext *>(ActiveWorkerCtx);
  if (W && W->Owner == this)
    return ExecContext{W->Exec, W->Diags, W->Stack};
  return ExecContext{Exec, Diags, BlockStack};
}

void MixyAnalysis::mergeRoundDiagnostics(
    const std::vector<std::vector<Diagnostic>> &Per) {
  // Append in round-task order (deterministic: tasks are keyed by the
  // round's distinct-context list, not by which worker ran them). Each
  // worker executor already deduplicates its own warnings; the set below
  // extends that across workers with the same location|message key.
  for (const std::vector<Diagnostic> &Slice : Per) {
    bool DropNotes = false;
    for (const Diagnostic &D : Slice) {
      if (D.Kind == DiagKind::Warning) {
        std::string Key = D.Loc.str() + "|" + D.Message;
        DropNotes = !MergedWarnings.insert(Key).second;
        if (DropNotes)
          continue;
      } else if (D.Kind == DiagKind::Note && DropNotes) {
        continue; // notes ride with the warning that owned them
      } else {
        DropNotes = false;
      }
      Diags.report(D.Kind, D.Loc, D.Message, D.ID);
    }
  }
}

// === symbolic blocks (typed -> symbolic -> typed) ===========================

MixyAnalysis::SymOutcome
MixyAnalysis::translateResult(const CFuncDecl *F, const CSymResult &Result,
                              CSymExecutor &WithExec) {
  // "From Symbolic Values to Types": for each caller-visible pointer slot,
  // ask whether g and (s = 0) is satisfiable and record null if so.
  SymOutcome Outcome;
  Outcome.ParamPointeeMayBeNull.assign(F->params().size(), false);

  for (const CSymResult::PathOut &P : Result.Paths) {
    if (P.Returned && F->returnType()->isPointer() && P.Ret.isPtr() &&
        WithExec.mayBeNull(P.Path, P.Ret))
      Outcome.RetMayBeNull = true;

    for (size_t I = 0; I != F->params().size(); ++I) {
      LocId Pointee = I < Result.ParamPointeeLocs.size()
                          ? Result.ParamPointeeLocs[I]
                          : NoLoc;
      if (Pointee == NoLoc)
        continue;
      auto Cell = CSymExecutor::finalCell(P, Pointee, "");
      if (Cell && Cell->isPtr() && WithExec.mayBeNull(P.Path, *Cell))
        Outcome.ParamPointeeMayBeNull[I] = true;
    }

    for (const CGlobalDecl *G : Program.Globals) {
      if (!G->type()->isPointer())
        continue;
      auto Cell =
          CSymExecutor::finalCell(P, WithExec.globalLoc(G->name()), "");
      if (Cell && Cell->isPtr() && WithExec.mayBeNull(P.Path, *Cell))
        Outcome.GlobalMayBeNull[G->name()] = true;
    }
  }
  return Outcome;
}

MixyAnalysis::SymOutcome
MixyAnalysis::computeSymOutcome(const BlockKey &Key, ExecContext C) {
  if (Opts.EnableCache) {
    if (auto Cached = SymCache.lookup(Key)) {
      bumpStat(&MixyStats::SymbolicCacheHits);
      return *Cached;
    }
  }

  // Recursion detection (Section 4.4): the same block with a compatible
  // calling context is already being analyzed (on this thread's stack —
  // recursion cannot span threads, since a block's nested blocks run on
  // the worker that runs the block).
  for (StackEntry &Entry : C.Stack) {
    if (Entry.Key == Key) {
      Entry.Recursive = true;
      bumpStat(&MixyStats::RecursionsDetected);
      return Entry.SymAssumption;
    }
  }

  C.Stack.push_back({Key, false, SymOutcome(), false});
  C.Stack.back().SymAssumption.ParamPointeeMayBeNull.assign(
      Key.F->params().size(), false);

  obs::TraceSpan Span(Opts.Trace, "mixy.block.sym", "mixy");
  if (Opts.Trace)
    Span.setArgs("{\"function\": \"" + jsonEscape(Key.F->name()) + "\"}");

  SymOutcome Outcome;
  for (unsigned Iter = 0; Iter != Opts.MaxRecursionIterations; ++Iter) {
    C.Stack.back().Recursive = false;
    bumpStat(&MixyStats::SymbolicBlockRuns);
    CSymResult Result = C.Exec.runFunction(Key.F, Key.Params, Key.Globals);
    Outcome = translateResult(Key.F, Result, C.Exec);
    // "If the assumption is compatible with the actual result, we return
    // the result; otherwise, we re-analyze the block using the actual
    // result as the updated assumption." (Section 4.4)
    if (!C.Stack.back().Recursive || Outcome == C.Stack.back().SymAssumption)
      break;
    C.Stack.back().SymAssumption = Outcome;
  }
  C.Stack.pop_back();

  if (Opts.EnableCache)
    SymCache.insert(Key, Outcome);
  return Outcome;
}

void MixyAnalysis::restoreAliasing(const CFuncDecl *Callee) {
  if (!Opts.RestoreAliasing)
    return;
  // "We use CIL's built-in may pointer analysis to conservatively
  // discover points-to relationships... we add constraints to require
  // that all may-aliased expressions have the same type." (Section 4.2)
  auto UnifyTargetsOf = [&](PointsToAnalysis::CellId Cell) {
    PointsToAnalysis::CellId Target = PtrAnal.pointsTo(Cell);
    if (Target == PointsToAnalysis::NoCell)
      return;
    Qual.unifyAliasClass(PtrAnal.variablesInClass(Target));
  };
  for (const auto &P : Callee->params())
    if (P.Ty->isPointer())
      UnifyTargetsOf(PtrAnal.cellOfVar(Callee, P.Name));
  for (const CGlobalDecl *G : Program.Globals)
    if (G->type()->isPointer())
      UnifyTargetsOf(PtrAnal.cellOfVar(nullptr, G->name()));
}

void MixyAnalysis::applySymOutcome(const SymOutcome &Outcome,
                                   const CCall *Call,
                                   const CFuncDecl *Callee,
                                   const std::vector<QualVec> &ArgQuals,
                                   QualVec &RetQuals) {
  if (Outcome.RetMayBeNull && !RetQuals.empty())
    Qual.seedNull(RetQuals[0],
                  "symbolic result of " + Callee->name() + " may be null",
                  Call->loc());
  for (size_t I = 0; I != Outcome.ParamPointeeMayBeNull.size(); ++I) {
    if (!Outcome.ParamPointeeMayBeNull[I])
      continue;
    if (I < ArgQuals.size() && ArgQuals[I].size() > 1)
      Qual.seedNull(ArgQuals[I][1],
                    "after " + Callee->name() + ", *" +
                        Callee->params()[I].Name + " may be null",
                    Call->loc());
  }
  for (const auto &[Name, MayNull] : Outcome.GlobalMayBeNull) {
    if (!MayNull)
      continue;
    const QualVec &Q = Qual.qualsOfVar(nullptr, Name);
    if (!Q.empty())
      Qual.seedNull(Q[0],
                    "after " + Callee->name() + ", global " + Name +
                        " may be null",
                    Call->loc());
  }
  restoreAliasing(Callee);
}

bool MixyAnalysis::handleSymbolicCall(QualInference &Inference,
                                      const CCall *Call,
                                      const CFuncDecl *Callee,
                                      const std::vector<QualVec> &ArgQuals,
                                      QualVec &RetQuals) {
  if (!Callee->isDefined())
    return false;
  (void)Inference;

  if (parallel()) {
    auto *W = static_cast<WorkerContext *>(ActiveWorkerCtx);
    if (!W || W->Owner != this) {
      // Main thread, during constraint generation: defer the block to the
      // next round barrier. The fresh, unconstrained result qualifiers are
      // exactly the paper's optimism ("we first optimistically assume it
      // is nonnull", Section 4.1); the fixpoint loop evaluates the block
      // and seeds the constraints it missed.
      std::lock_guard<std::recursive_mutex> Lock(QualM);
      bumpStat(&MixyStats::SymbolicCallsFromTyped);
      RetQuals = freshQuals(Callee->returnType(),
                            "symbolic call " + Callee->name(), Call->loc());
      SymCallSites.push_back({Call, Callee, ArgQuals, RetQuals, BlockKey()});
      return true;
    }
    // Worker thread: a typed block nested inside a symbolic block hit the
    // symbolic frontier again. Run it synchronously on this worker's
    // context; the caller (callTypedFunction) already holds QualM.
    bumpStat(&MixyStats::SymbolicCallsFromTyped);
    BlockKey Key;
    Key.Symbolic = true;
    Key.F = Callee;
    Key.Params = paramSeedsFromArgQuals(Callee, ArgQuals);
    Key.Globals = globalSeedsFromQuals();
    RetQuals = freshQuals(Callee->returnType(),
                          "symbolic call " + Callee->name(), Call->loc());
    SymOutcome Outcome = computeSymOutcome(Key, currentContext());
    applySymOutcome(Outcome, Call, Callee, ArgQuals, RetQuals);
    SymCallSites.push_back({Call, Callee, ArgQuals, RetQuals, Key});
    return true;
  }

  bumpStat(&MixyStats::SymbolicCallsFromTyped);

  BlockKey Key;
  Key.Symbolic = true;
  Key.F = Callee;
  Key.Params = paramSeedsFromArgQuals(Callee, ArgQuals);
  Key.Globals = globalSeedsFromQuals();

  RetQuals = freshQuals(Callee->returnType(),
                        "symbolic call " + Callee->name(), Call->loc());

  SymOutcome Outcome = computeSymOutcome(Key, currentContext());
  applySymOutcome(Outcome, Call, Callee, ArgQuals, RetQuals);

  // Remember the site for the fixpoint loop (Section 4.1).
  SymCallSites.push_back({Call, Callee, ArgQuals, RetQuals, Key});
  return true;
}

// === typed blocks (symbolic -> typed -> symbolic) ===========================

bool MixyAnalysis::computeTypedRet(const BlockKey &Key, const CCall *Call,
                                   ExecContext C) {
  if (Opts.EnableCache) {
    if (auto Cached = TypedCache.lookup(Key)) {
      bumpStat(&MixyStats::TypedCacheHits);
      return *Cached;
    }
  }

  for (StackEntry &Entry : C.Stack) {
    if (Entry.Key == Key) {
      Entry.Recursive = true;
      bumpStat(&MixyStats::RecursionsDetected);
      return Entry.TypedAssumption;
    }
  }

  C.Stack.push_back({Key, false, SymOutcome(), false});

  obs::TraceSpan Span(Opts.Trace, "mixy.block.typed", "mixy");
  if (Opts.Trace)
    Span.setArgs("{\"function\": \"" + jsonEscape(Key.F->name()) + "\"}");

  bool RetMayBeNull = false;
  for (unsigned Iter = 0; Iter != Opts.MaxRecursionIterations; ++Iter) {
    C.Stack.back().Recursive = false;
    bumpStat(&MixyStats::TypedBlockRuns);

    // Run qualifier inference over the typed region rooted here; nested
    // MIX(symbolic) frontier calls re-enter handleSymbolicCall.
    for (const CFuncDecl *F : typedRegionFrom(Key.F))
      Qual.analyzeFunction(F);
    Qual.analyzeGlobals();

    // Seed the calling context ("From Symbolic Values to Types").
    for (size_t I = 0; I != Key.Params.size(); ++I) {
      if (Key.Params[I] != NullSeed::MayBeNull)
        continue;
      const QualVec &PQ = Qual.qualsOfParam(Key.F, (unsigned)I);
      if (!PQ.empty())
        Qual.seedNull(PQ[0], "symbolic argument may be null", Call->loc());
    }
    for (const auto &[Name, Seed] : Key.Globals) {
      if (Seed != NullSeed::MayBeNull)
        continue;
      const QualVec &GQ = Qual.qualsOfVar(nullptr, Name);
      if (!GQ.empty())
        Qual.seedNull(GQ[0], "global may be null at symbolic call",
                      Call->loc());
    }

    Qual.solve();
    const QualVec &RQ = Qual.qualsOfReturn(Key.F);
    RetMayBeNull = !RQ.empty() && Qual.mayBeNull(RQ[0]);

    if (!C.Stack.back().Recursive ||
        RetMayBeNull == C.Stack.back().TypedAssumption)
      break;
    C.Stack.back().TypedAssumption = RetMayBeNull;
  }
  C.Stack.pop_back();

  if (Opts.EnableCache)
    TypedCache.insert(Key, RetMayBeNull);
  return RetMayBeNull;
}

bool MixyAnalysis::callTypedFunction(CSymExecutor &Exec2, CSymState &State,
                                     const CCall *Call,
                                     const CFuncDecl *Callee,
                                     const std::vector<CSymValue> &Args,
                                     CSymValue &RetOut) {
  bumpStat(&MixyStats::TypedCallsFromSymbolic);

  BlockKey Key;
  Key.Symbolic = false;
  Key.F = Callee;
  // The calling context from symbolic values: solver queries per pointer
  // argument and per pointer global present in the store. These touch
  // only the calling executor's own state — no lock needed yet.
  for (size_t I = 0; I != Callee->params().size(); ++I) {
    bool MayNull = I < Args.size() && Args[I].isPtr() &&
                   Exec2.mayBeNull(State.Path, Args[I]);
    Key.Params.push_back(MayNull ? NullSeed::MayBeNull : NullSeed::Nonnull);
  }
  for (const CGlobalDecl *G : Program.Globals) {
    if (!G->type()->isPointer())
      continue;
    auto Cell = State.Store.get({Exec2.globalLoc(G->name()), ""});
    if (!Cell || !Cell->isPtr())
      continue;
    Key.Globals[G->name()] = Exec2.mayBeNull(State.Path, *Cell)
                                 ? NullSeed::MayBeNull
                                 : NullSeed::Nonnull;
  }

  // The typed block runs against the shared qualifier graph; in parallel
  // mode every such touch is serialized (recursively — typed and symbolic
  // blocks nest through the hooks).
  std::unique_lock<std::recursive_mutex> Lock(QualM, std::defer_lock);
  if (parallel())
    Lock.lock();

  bool RetMayBeNull = computeTypedRet(Key, Call, currentContext());

  // Re-entering symbolic execution: memory is havocked ("symbolic blocks
  // are forced to start with a fresh memory when switching from typed
  // blocks", Section 4.6), then pointer globals are re-seeded from the
  // current qualifier solution.
  Exec2.havocStore(State);
  Qual.solve();
  for (const CGlobalDecl *G : Program.Globals) {
    if (!G->type()->isPointer())
      continue;
    const QualVec &Q = Qual.qualsOfVar(nullptr, G->name());
    NullSeed Seed = (!Q.empty() && Qual.mayBeNull(Q[0]))
                        ? NullSeed::MayBeNull
                        : NullSeed::Nonnull;
    State.Store.set({Exec2.globalLoc(G->name()), ""},
                    Exec2.seededPointer(G->type(), Seed, G->name()));
  }

  if (Lock.owns_lock())
    Lock.unlock();

  if (Callee->returnType()->isPointer())
    RetOut = Exec2.seededPointer(Callee->returnType(),
                                 RetMayBeNull ? NullSeed::MayBeNull
                                              : NullSeed::Nonnull,
                                 Callee->name() + "()");
  else
    RetOut = CSymValue::scalar(
        Exec2.terms().freshIntVar(Callee->name() + "()"));
  return true;
}

// === driver ==================================================================

unsigned MixyAnalysis::run(StartMode Mode, const std::string &Entry) {
  PtrAnal.run();

  const CFuncDecl *EntryFunc = Program.findFunc(Entry);
  if (!EntryFunc || !EntryFunc->isDefined()) {
    Diags.error(SourceLoc(), "entry function '" + Entry + "' not found",
                DiagID::EntryNotFound);
    publishStats();
    return Diags.warningCount();
  }

  if (Mode == StartMode::Symbolic ||
      EntryFunc->mixAnnot() == MixAnnot::Symbolic) {
    // Begin in symbolic mode: execute the entry function; typed frontier
    // calls switch through callTypedFunction. A single symbolic block has
    // no sibling blocks to farm out, so this path is always serial.
    ++Statistics.SymbolicBlockRuns;
    {
      obs::TraceSpan Span(Opts.Trace, "mixy.block.sym", "mixy");
      if (Opts.Trace)
        Span.setArgs("{\"function\": \"" + jsonEscape(EntryFunc->name()) +
                     "\"}");
      CSymResult Result = Exec.runFunction(EntryFunc);
      (void)Result;
    }
    Qual.solve();
    Qual.reportWarnings();
    publishStats();
    return Diags.warningCount();
  }

  if (parallel())
    return runTypedParallel(EntryFunc);

  // Begin in typed mode: qualifier inference over the region reachable
  // from the entry, with symbolic frontier calls via handleSymbolicCall.
  Qual.analyzeGlobals();
  for (const CFuncDecl *F : typedRegionFrom(EntryFunc))
    Qual.analyzeFunction(F);

  // Fixpoint (Section 4.1): re-run symbolic blocks whose calling context
  // changed as constraints accumulated, until nothing changes.
  for (unsigned Iter = 0; Iter != Opts.MaxFixpointIterations; ++Iter) {
    obs::TraceSpan RoundSpan(Opts.Trace, "mixy.round", "mixy");
    if (Opts.Trace)
      RoundSpan.setArgs("{\"round\": " + std::to_string(Iter) + "}");
    Qual.solve();
    bool Changed = false;
    for (SymCallSite &Site : SymCallSites) {
      BlockKey Key;
      Key.Symbolic = true;
      Key.F = Site.Callee;
      Key.Params = paramSeedsFromArgQuals(Site.Callee, Site.ArgQuals);
      Key.Globals = globalSeedsFromQuals();
      if (Key == Site.LastKey)
        continue;
      Changed = true;
      Site.LastKey = Key;
      SymOutcome Outcome = computeSymOutcome(Key, currentContext());
      applySymOutcome(Outcome, Site.Call, Site.Callee, Site.ArgQuals,
                      Site.RetQuals);
    }
    if (!Changed)
      break;
    ++Statistics.FixpointIterations;
  }

  Qual.solve();
  Qual.reportWarnings();
  publishStats();
  return Diags.warningCount();
}

unsigned MixyAnalysis::runTypedParallel(const CFuncDecl *EntryFunc) {
  // Warm the lazily-built singleton types so workers mostly read the AST
  // context instead of racing to create them.
  Ctx.voidType();
  Ctx.intType();
  Ctx.charType();

  Pool = std::make_unique<rt::ThreadPool>(Opts.Jobs, Opts.Trace, "mixy");
  WorkerSlots.resize(Pool->workerCount());

  // Constraint generation over the typed region. Frontier calls defer
  // their blocks (handleSymbolicCall records the sites with an empty
  // LastKey), so this phase is pure qualifier inference.
  Qual.analyzeGlobals();
  for (const CFuncDecl *F : typedRegionFrom(EntryFunc))
    Qual.analyzeFunction(F);

  // Round-barrier fixpoint: each round recomputes every site's calling
  // context against the current qualifier solution, evaluates the round's
  // distinct contexts concurrently, then applies the summaries to the
  // qualifier graph in deterministic site order at the barrier. The
  // constraint system is monotone, so these Jacobi-style rounds reach the
  // same least fixpoint as the serial site-at-a-time loop.
  for (unsigned Iter = 0; Iter != Opts.MaxFixpointIterations; ++Iter) {
    obs::TraceSpan RoundSpan(Opts.Trace, "mixy.round", "mixy");
    if (Opts.Trace)
      RoundSpan.setArgs("{\"round\": " + std::to_string(Iter) + "}");
    Qual.solve();

    std::vector<std::pair<size_t, size_t>> Changed; // (site, key index)
    std::vector<BlockKey> RoundKeys;
    for (size_t I = 0; I != SymCallSites.size(); ++I) {
      SymCallSite &Site = SymCallSites[I];
      BlockKey Key;
      Key.Symbolic = true;
      Key.F = Site.Callee;
      Key.Params = paramSeedsFromArgQuals(Site.Callee, Site.ArgQuals);
      Key.Globals = globalSeedsFromQuals();
      if (Site.LastKey.F && Key == Site.LastKey)
        continue;
      Site.LastKey = Key;
      size_t KeyIdx = 0;
      while (KeyIdx != RoundKeys.size() && !(RoundKeys[KeyIdx] == Key))
        ++KeyIdx;
      if (KeyIdx == RoundKeys.size())
        RoundKeys.push_back(Key);
      Changed.push_back({I, KeyIdx});
    }
    if (Changed.empty())
      break;
    ++Statistics.FixpointIterations;

    // Evaluate the round. Results are carried out of the tasks directly
    // (not via the cache, which may be disabled) and diagnostics are
    // collected per task so their merge order is independent of worker
    // scheduling.
    std::vector<SymOutcome> RoundOutcomes(RoundKeys.size());
    std::vector<std::vector<Diagnostic>> RoundDiags(RoundKeys.size());
    Pool->parallelFor(RoundKeys.size(), [&](size_t K) {
      WorkerContext &W = workerContext();
      void *Prev = ActiveWorkerCtx;
      ActiveWorkerCtx = &W;
      size_t Before = W.Diags.size();
      RoundOutcomes[K] =
          computeSymOutcome(RoundKeys[K], ExecContext{W.Exec, W.Diags, W.Stack});
      const std::vector<Diagnostic> &All = W.Diags.diagnostics();
      RoundDiags[K].assign(All.begin() + (long)Before, All.end());
      ActiveWorkerCtx = Prev;
    });
    mergeRoundDiagnostics(RoundDiags);

    // Barrier: apply summaries in site order.
    for (const auto &[SiteIdx, KeyIdx] : Changed) {
      SymCallSite &Site = SymCallSites[SiteIdx];
      applySymOutcome(RoundOutcomes[KeyIdx], Site.Call, Site.Callee,
                      Site.ArgQuals, Site.RetQuals);
    }
  }

  Qual.solve();
  Qual.reportWarnings();
  publishStats();
  return Diags.warningCount();
}
