//===--- AstPrinter.h - Pretty printer for the core AST ---------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a core-language AST back to concrete syntax. The output
/// re-parses to a structurally identical tree (used as a round-trip
/// property in the test suite) and is used by diagnostics that need to
/// quote program fragments.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_LANG_ASTPRINTER_H
#define MIX_LANG_ASTPRINTER_H

#include "lang/Ast.h"

#include <string>

namespace mix {

/// Renders \p E in source syntax. Parenthesizes conservatively, so the
/// result is unambiguous regardless of the original layout.
std::string printExpr(const Expr *E);

} // namespace mix

#endif // MIX_LANG_ASTPRINTER_H
