//===--- AstClone.h - AST cloning and block stripping -----------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structure-preserving AST clone with an option to erase analysis blocks.
/// Since `{t e t}` and `{s e s}` are semantically transparent, the
/// stripped program is the input for "what would type checking alone (or
/// symbolic execution alone) say" comparisons in tests and benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_LANG_ASTCLONE_H
#define MIX_LANG_ASTCLONE_H

#include "lang/Ast.h"

namespace mix {

/// Clones \p E into \p Ctx. Types are re-interned into Ctx's TypeContext
/// only if \p Ctx is the owning context; pass the same context the tree
/// was built in (types are shared).
const Expr *cloneExpr(AstContext &Ctx, const Expr *E);

/// Clones \p E into \p Ctx with every `{t ...}` / `{s ...}` block replaced
/// by its body.
const Expr *cloneStrippingBlocks(AstContext &Ctx, const Expr *E);

} // namespace mix

#endif // MIX_LANG_ASTCLONE_H
