//===--- Ast.cpp - AST of the core MIX language ---------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "lang/Ast.h"

using namespace mix;

const char *mix::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Eq:
    return "=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::And:
    return "and";
  case BinaryOp::Or:
    return "or";
  }
  return "<invalid-op>";
}
