//===--- AstClone.cpp - AST cloning and block stripping --------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "lang/AstClone.h"

using namespace mix;

namespace {

const Expr *clone(AstContext &Ctx, const Expr *E, bool StripBlocks) {
  switch (E->kind()) {
  case ExprKind::Var:
    return Ctx.make<VarExpr>(E->loc(), cast<VarExpr>(E)->name());
  case ExprKind::IntLit:
    return Ctx.make<IntLitExpr>(E->loc(), cast<IntLitExpr>(E)->value());
  case ExprKind::BoolLit:
    return Ctx.make<BoolLitExpr>(E->loc(), cast<BoolLitExpr>(E)->value());
  case ExprKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    return Ctx.make<BinaryExpr>(E->loc(), B->op(),
                                clone(Ctx, B->lhs(), StripBlocks),
                                clone(Ctx, B->rhs(), StripBlocks));
  }
  case ExprKind::Not:
    return Ctx.make<NotExpr>(E->loc(),
                             clone(Ctx, cast<NotExpr>(E)->sub(), StripBlocks));
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    return Ctx.make<IfExpr>(E->loc(), clone(Ctx, I->cond(), StripBlocks),
                            clone(Ctx, I->thenExpr(), StripBlocks),
                            clone(Ctx, I->elseExpr(), StripBlocks));
  }
  case ExprKind::Let: {
    const auto *L = cast<LetExpr>(E);
    return Ctx.make<LetExpr>(E->loc(), L->name(), L->declaredType(),
                             clone(Ctx, L->init(), StripBlocks),
                             clone(Ctx, L->body(), StripBlocks));
  }
  case ExprKind::Ref:
    return Ctx.make<RefExpr>(E->loc(),
                             clone(Ctx, cast<RefExpr>(E)->sub(), StripBlocks));
  case ExprKind::Deref:
    return Ctx.make<DerefExpr>(
        E->loc(), clone(Ctx, cast<DerefExpr>(E)->sub(), StripBlocks));
  case ExprKind::Assign: {
    const auto *A = cast<AssignExpr>(E);
    return Ctx.make<AssignExpr>(E->loc(),
                                clone(Ctx, A->target(), StripBlocks),
                                clone(Ctx, A->value(), StripBlocks));
  }
  case ExprKind::Seq: {
    const auto *S = cast<SeqExpr>(E);
    return Ctx.make<SeqExpr>(E->loc(), clone(Ctx, S->first(), StripBlocks),
                             clone(Ctx, S->second(), StripBlocks));
  }
  case ExprKind::Block: {
    const auto *B = cast<BlockExpr>(E);
    const Expr *Body = clone(Ctx, B->body(), StripBlocks);
    if (StripBlocks)
      return Body;
    return Ctx.make<BlockExpr>(E->loc(), B->blockKind(), Body);
  }
  case ExprKind::Fun: {
    const auto *F = cast<FunExpr>(E);
    return Ctx.make<FunExpr>(E->loc(), F->param(), F->paramType(),
                             F->resultType(),
                             clone(Ctx, F->body(), StripBlocks));
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    return Ctx.make<AppExpr>(E->loc(), clone(Ctx, A->fn(), StripBlocks),
                             clone(Ctx, A->arg(), StripBlocks));
  }
  }
  return nullptr;
}

} // namespace

const Expr *mix::cloneExpr(AstContext &Ctx, const Expr *E) {
  return clone(Ctx, E, /*StripBlocks=*/false);
}

const Expr *mix::cloneStrippingBlocks(AstContext &Ctx, const Expr *E) {
  return clone(Ctx, E, /*StripBlocks=*/true);
}
