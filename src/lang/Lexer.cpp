//===--- Lexer.cpp - Lexer for the core MIX language ----------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace mix;

const char *mix::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Ident:
    return "identifier";
  case TokenKind::IntLit:
    return "integer literal";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwThen:
    return "'then'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwLet:
    return "'let'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::KwRef:
    return "'ref'";
  case TokenKind::KwFun:
    return "'fun'";
  case TokenKind::KwNot:
    return "'not'";
  case TokenKind::KwAnd:
    return "'and'";
  case TokenKind::KwOr:
    return "'or'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Equal:
    return "'='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEqual:
    return "'<='";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::ColonEqual:
    return "':='";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::LBraceTyped:
    return "'{t'";
  case TokenKind::RBraceTyped:
    return "'t}'";
  case TokenKind::LBraceSymbolic:
    return "'{s'";
  case TokenKind::RBraceSymbolic:
    return "'s}'";
  }
  return "unknown token";
}

Lexer::Lexer(std::string_view Source, DiagnosticEngine &Diags)
    : Source(Source), Diags(Diags) {}

char Lexer::peek(size_t LookAhead) const {
  return Pos + LookAhead < Source.size() ? Source[Pos + LookAhead] : '\0';
}

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

static bool isIdentStart(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) || C == '_';
}

static bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_' || C == '\'';
}

void Lexer::skipWhitespaceAndComments() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    // Nested ML-style comments: (* ... (* ... *) ... *).
    if (C == '(' && peek(1) == '*') {
      SourceLoc Start = loc();
      advance();
      advance();
      unsigned Depth = 1;
      while (Depth != 0) {
        if (atEnd()) {
          Diags.error(Start, "unterminated comment", DiagID::LexError);
          return;
        }
        if (peek() == '(' && peek(1) == '*') {
          advance();
          advance();
          ++Depth;
        } else if (peek() == '*' && peek(1) == ')') {
          advance();
          advance();
          --Depth;
        } else {
          advance();
        }
      }
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, SourceLoc Loc) const {
  Token T;
  T.Kind = Kind;
  T.Loc = Loc;
  return T;
}

Token Lexer::lexIdentOrKeyword() {
  SourceLoc Start = loc();
  std::string Text;
  while (!atEnd() && isIdentChar(peek()))
    Text += advance();

  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"true", TokenKind::KwTrue},   {"false", TokenKind::KwFalse},
      {"if", TokenKind::KwIf},       {"then", TokenKind::KwThen},
      {"else", TokenKind::KwElse},   {"let", TokenKind::KwLet},
      {"in", TokenKind::KwIn},       {"ref", TokenKind::KwRef},
      {"fun", TokenKind::KwFun},     {"not", TokenKind::KwNot},
      {"and", TokenKind::KwAnd},     {"or", TokenKind::KwOr},
      {"int", TokenKind::KwInt},     {"bool", TokenKind::KwBool},
  };
  auto It = Keywords.find(Text);
  if (It != Keywords.end())
    return makeToken(It->second, Start);

  Token T = makeToken(TokenKind::Ident, Start);
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexNumber() {
  SourceLoc Start = loc();
  long long Value = 0;
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
    Value = Value * 10 + (advance() - '0');
  Token T = makeToken(TokenKind::IntLit, Start);
  T.IntValue = Value;
  return T;
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  SourceLoc Start = loc();
  if (atEnd())
    return makeToken(TokenKind::Eof, Start);

  char C = peek();

  // Block delimiters. `{t` / `{s` open a block when the marker letter is not
  // the start of a longer identifier; `t}` / `s}` close one.
  if (C == '{' && (peek(1) == 't' || peek(1) == 's') && !isIdentChar(peek(2))) {
    advance();
    char Marker = advance();
    return makeToken(Marker == 't' ? TokenKind::LBraceTyped
                                   : TokenKind::LBraceSymbolic,
                     Start);
  }
  if ((C == 't' || C == 's') && peek(1) == '}') {
    advance();
    advance();
    return makeToken(C == 't' ? TokenKind::RBraceTyped
                              : TokenKind::RBraceSymbolic,
                     Start);
  }

  if (isIdentStart(C))
    return lexIdentOrKeyword();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();

  advance();
  switch (C) {
  case '+':
    return makeToken(TokenKind::Plus, Start);
  case '-':
    if (peek() == '>') {
      advance();
      return makeToken(TokenKind::Arrow, Start);
    }
    return makeToken(TokenKind::Minus, Start);
  case '=':
    return makeToken(TokenKind::Equal, Start);
  case '<':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::LessEqual, Start);
    }
    return makeToken(TokenKind::Less, Start);
  case '(':
    return makeToken(TokenKind::LParen, Start);
  case ')':
    return makeToken(TokenKind::RParen, Start);
  case '!':
    return makeToken(TokenKind::Bang, Start);
  case ':':
    if (peek() == '=') {
      advance();
      return makeToken(TokenKind::ColonEqual, Start);
    }
    return makeToken(TokenKind::Colon, Start);
  case ';':
    return makeToken(TokenKind::Semi, Start);
  default:
    break;
  }

  Diags.error(Start, std::string("unexpected character '") + C + "'",
              DiagID::LexError);
  Token T = makeToken(TokenKind::Error, Start);
  T.Text = std::string(1, C);
  return T;
}
