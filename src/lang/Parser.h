//===--- Parser.h - Parser for the core MIX language ------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the core language. The grammar, lowest
/// precedence first:
///
///   expr     := seq
///   seq      := assign (';' seq)?
///   assign   := or (':=' assign)?
///   or       := and ('or' and)*
///   and      := cmp ('and' cmp)*
///   cmp      := add (('=' | '<' | '<=') add)?
///   add      := app (('+' | '-') app)*
///   app      := prefix prefix*                  (application, left assoc)
///   prefix   := ('!' | 'ref' | 'not') prefix | primary
///   primary  := ident | literal | '(' expr ')' | '{t' expr 't}'
///            | '{s' expr 's}' | if | let | fun
///   fun      := 'fun' '(' ident ':' type ')' ':' reftype '->' expr
///               (arrow-typed results must be parenthesized so the body
///               arrow is unambiguous)
///
/// `if`/`let`/`fun` extend as far right as possible, as in ML.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_LANG_PARSER_H
#define MIX_LANG_PARSER_H

#include "lang/Ast.h"
#include "lang/Lexer.h"

namespace mix {

/// Parses core-language source text into an AST owned by an AstContext.
class Parser {
public:
  Parser(std::string_view Source, AstContext &Ctx, DiagnosticEngine &Diags);

  /// Parses a complete program (a single expression followed by EOF).
  /// Returns null and reports diagnostics on failure.
  const Expr *parseProgram();

private:
  // Token stream plumbing.
  const Token &tok() const { return Tok; }
  void consume();
  bool expect(TokenKind Kind);
  bool error(const std::string &Message);

  // Expression grammar, one method per precedence level.
  const Expr *parseExpr();
  const Expr *parseSeq();
  const Expr *parseAssign();
  const Expr *parseOr();
  const Expr *parseAnd();
  const Expr *parseCmp();
  const Expr *parseAdd();
  const Expr *parseApp();
  const Expr *parsePrefix();
  const Expr *parsePrimary();
  const Expr *parseIf();
  const Expr *parseLet();
  const Expr *parseFun();

  // Type annotations.
  const Type *parseType();
  const Type *parseRefType();
  const Type *parseAtomType();

  /// True when the current token can begin an application argument.
  bool startsAtom() const;

  AstContext &Ctx;
  DiagnosticEngine &Diags;
  Lexer Lex;
  Token Tok;
};

/// Convenience entry point: parses \p Source with a fresh parser.
const Expr *parseExpression(std::string_view Source, AstContext &Ctx,
                            DiagnosticEngine &Diags);

} // namespace mix

#endif // MIX_LANG_PARSER_H
