//===--- AstPrinter.cpp - Pretty printer for the core AST -----------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "lang/AstPrinter.h"

using namespace mix;

namespace {

/// Recursive printer. Wraps each compound subexpression in parentheses so
/// precedence never needs to be reconstructed.
class PrinterVisitor {
public:
  std::string print(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Var:
      return cast<VarExpr>(E)->name();
    case ExprKind::IntLit:
      return std::to_string(cast<IntLitExpr>(E)->value());
    case ExprKind::BoolLit:
      return cast<BoolLitExpr>(E)->value() ? "true" : "false";
    case ExprKind::Binary: {
      const auto *B = cast<BinaryExpr>(E);
      return "(" + print(B->lhs()) + " " + binaryOpSpelling(B->op()) + " " +
             print(B->rhs()) + ")";
    }
    case ExprKind::Not:
      return "(not " + print(cast<NotExpr>(E)->sub()) + ")";
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      return "(if " + print(I->cond()) + " then " + print(I->thenExpr()) +
             " else " + print(I->elseExpr()) + ")";
    }
    case ExprKind::Let: {
      const auto *L = cast<LetExpr>(E);
      std::string Ascription =
          L->declaredType() ? " : " + L->declaredType()->str() : "";
      return "(let " + L->name() + Ascription + " = " + print(L->init()) +
             " in " + print(L->body()) + ")";
    }
    case ExprKind::Ref:
      return "(ref " + print(cast<RefExpr>(E)->sub()) + ")";
    case ExprKind::Deref:
      return "(!" + print(cast<DerefExpr>(E)->sub()) + ")";
    case ExprKind::Assign: {
      const auto *A = cast<AssignExpr>(E);
      return "(" + print(A->target()) + " := " + print(A->value()) + ")";
    }
    case ExprKind::Seq: {
      const auto *S = cast<SeqExpr>(E);
      return "(" + print(S->first()) + "; " + print(S->second()) + ")";
    }
    case ExprKind::Block: {
      const auto *B = cast<BlockExpr>(E);
      if (B->blockKind() == BlockKind::Typed)
        return "{t " + print(B->body()) + " t}";
      return "{s " + print(B->body()) + " s}";
    }
    case ExprKind::Fun: {
      const auto *F = cast<FunExpr>(E);
      return "(fun (" + F->param() + ": " + F->paramType()->str() +
             ") : " + F->resultType()->str() + " -> " + print(F->body()) +
             ")";
    }
    case ExprKind::App: {
      const auto *A = cast<AppExpr>(E);
      return "(" + print(A->fn()) + " " + print(A->arg()) + ")";
    }
    }
    return "<invalid-expr>";
  }
};

} // namespace

std::string mix::printExpr(const Expr *E) {
  PrinterVisitor V;
  return V.print(E);
}
