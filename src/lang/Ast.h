//===--- Ast.h - AST of the core MIX language -------------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax of the core language (Figure 1):
///
///   e ::= x | v | e + e | e = e | not e | e and e
///       | if e then e else e | let x = e in e
///       | ref e | !e | e := e
///       | {t e t} | {s e s}
///
/// extended, as Section 2's motivating examples require, with subtraction,
/// `<` / `<=` comparisons, `or`, sequencing `e; e`, and monomorphic
/// first-class functions `fun (x: tau) -> e` with application by
/// juxtaposition.
///
/// Nodes are immutable after construction and owned by an AstContext. The
/// class hierarchy uses LLVM-style kind discriminators with isa/cast/dyn_cast
/// helpers instead of RTTI.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_LANG_AST_H
#define MIX_LANG_AST_H

#include "lang/Type.h"
#include "support/SourceLoc.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace mix {

/// Discriminator for every expression form.
enum class ExprKind {
  Var,
  IntLit,
  BoolLit,
  Binary,
  Not,
  If,
  Let,
  Ref,
  Deref,
  Assign,
  Seq,
  Block,
  Fun,
  App,
};

/// Base class of all expressions.
class Expr {
public:
  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

  Expr(const Expr &) = delete;
  Expr &operator=(const Expr &) = delete;

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
  ~Expr() = default;

private:
  ExprKind Kind;
  SourceLoc Loc;
};

/// LLVM-style isa<> over the Expr hierarchy.
template <typename T> bool isa(const Expr *E) {
  assert(E && "isa<> on null expression");
  return T::classof(E);
}

/// LLVM-style cast<>: asserts the dynamic kind matches.
template <typename T> const T *cast(const Expr *E) {
  assert(isa<T>(E) && "cast<> to incompatible expression kind");
  return static_cast<const T *>(E);
}

/// LLVM-style dyn_cast<>: returns null when the kind does not match.
template <typename T> const T *dyn_cast(const Expr *E) {
  return isa<T>(E) ? static_cast<const T *>(E) : nullptr;
}

/// A variable reference `x`.
class VarExpr : public Expr {
public:
  VarExpr(SourceLoc Loc, std::string Name)
      : Expr(ExprKind::Var, Loc), Name(std::move(Name)) {}

  const std::string &name() const { return Name; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Var; }

private:
  std::string Name;
};

/// An integer literal `n`.
class IntLitExpr : public Expr {
public:
  IntLitExpr(SourceLoc Loc, long long Value)
      : Expr(ExprKind::IntLit, Loc), Value(Value) {}

  long long value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::IntLit; }

private:
  long long Value;
};

/// A boolean literal `true` or `false`.
class BoolLitExpr : public Expr {
public:
  BoolLitExpr(SourceLoc Loc, bool Value)
      : Expr(ExprKind::BoolLit, Loc), Value(Value) {}

  bool value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::BoolLit; }

private:
  bool Value;
};

/// Binary operators of the core language.
enum class BinaryOp {
  Add, ///< integer addition `e + e`
  Sub, ///< integer subtraction `e - e`
  Eq,  ///< equality `e = e` (int = int or bool = bool)
  Lt,  ///< integer less-than `e < e`
  Le,  ///< integer less-or-equal `e <= e`
  And, ///< boolean conjunction `e and e`
  Or,  ///< boolean disjunction `e or e`
};

/// Returns the operator's source spelling, e.g. "+" or "and".
const char *binaryOpSpelling(BinaryOp Op);

/// A binary operation.
class BinaryExpr : public Expr {
public:
  BinaryExpr(SourceLoc Loc, BinaryOp Op, const Expr *Lhs, const Expr *Rhs)
      : Expr(ExprKind::Binary, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}

  BinaryOp op() const { return Op; }
  const Expr *lhs() const { return Lhs; }
  const Expr *rhs() const { return Rhs; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Binary; }

private:
  BinaryOp Op;
  const Expr *Lhs;
  const Expr *Rhs;
};

/// Boolean negation `not e`.
class NotExpr : public Expr {
public:
  NotExpr(SourceLoc Loc, const Expr *Sub)
      : Expr(ExprKind::Not, Loc), Sub(Sub) {}

  const Expr *sub() const { return Sub; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Not; }

private:
  const Expr *Sub;
};

/// A conditional `if e1 then e2 else e3`.
class IfExpr : public Expr {
public:
  IfExpr(SourceLoc Loc, const Expr *Cond, const Expr *Then, const Expr *Else)
      : Expr(ExprKind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}

  const Expr *cond() const { return Cond; }
  const Expr *thenExpr() const { return Then; }
  const Expr *elseExpr() const { return Else; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::If; }

private:
  const Expr *Cond;
  const Expr *Then;
  const Expr *Else;
};

/// A let binding `let x = e1 in e2`, optionally carrying a declared type
/// ascription `let x : tau = e1 in e2`.
class LetExpr : public Expr {
public:
  LetExpr(SourceLoc Loc, std::string Name, const Type *DeclaredType,
          const Expr *Init, const Expr *Body)
      : Expr(ExprKind::Let, Loc), Name(std::move(Name)),
        DeclaredType(DeclaredType), Init(Init), Body(Body) {}

  const std::string &name() const { return Name; }
  /// The ascribed type, or null when the binding is unannotated.
  const Type *declaredType() const { return DeclaredType; }
  const Expr *init() const { return Init; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Let; }

private:
  std::string Name;
  const Type *DeclaredType;
  const Expr *Init;
  const Expr *Body;
};

/// Reference construction `ref e`.
class RefExpr : public Expr {
public:
  RefExpr(SourceLoc Loc, const Expr *Sub)
      : Expr(ExprKind::Ref, Loc), Sub(Sub) {}

  const Expr *sub() const { return Sub; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Ref; }

private:
  const Expr *Sub;
};

/// Reference read `!e`.
class DerefExpr : public Expr {
public:
  DerefExpr(SourceLoc Loc, const Expr *Sub)
      : Expr(ExprKind::Deref, Loc), Sub(Sub) {}

  const Expr *sub() const { return Sub; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Deref; }

private:
  const Expr *Sub;
};

/// Reference write `e1 := e2`.
class AssignExpr : public Expr {
public:
  AssignExpr(SourceLoc Loc, const Expr *Target, const Expr *Value)
      : Expr(ExprKind::Assign, Loc), Target(Target), Value(Value) {}

  const Expr *target() const { return Target; }
  const Expr *value() const { return Value; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Assign; }

private:
  const Expr *Target;
  const Expr *Value;
};

/// Sequencing `e1; e2`: evaluate e1 for effect, result is e2.
class SeqExpr : public Expr {
public:
  SeqExpr(SourceLoc Loc, const Expr *First, const Expr *Second)
      : Expr(ExprKind::Seq, Loc), First(First), Second(Second) {}

  const Expr *first() const { return First; }
  const Expr *second() const { return Second; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Seq; }

private:
  const Expr *First;
  const Expr *Second;
};

/// Which analysis a block requests.
enum class BlockKind {
  Typed,    ///< `{t e t}` — analyze e with the type checker.
  Symbolic, ///< `{s e s}` — analyze e with the symbolic executor.
};

/// An analysis block `{t e t}` or `{s e s}` — the paper's central construct.
class BlockExpr : public Expr {
public:
  BlockExpr(SourceLoc Loc, BlockKind BKind, const Expr *Body)
      : Expr(ExprKind::Block, Loc), BKind(BKind), Body(Body) {}

  BlockKind blockKind() const { return BKind; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Block; }

private:
  BlockKind BKind;
  const Expr *Body;
};

/// A function literal `fun (x: tau1) : tau2 -> e`. Both the parameter and
/// the result type are annotated, keeping the type system monomorphic (as
/// the paper assumes) and letting the symbolic executor type closure
/// values without consulting a type checker.
class FunExpr : public Expr {
public:
  FunExpr(SourceLoc Loc, std::string Param, const Type *ParamType,
          const Type *ResultType, const Expr *Body)
      : Expr(ExprKind::Fun, Loc), Param(std::move(Param)),
        ParamType(ParamType), ResultType(ResultType), Body(Body) {}

  const std::string &param() const { return Param; }
  const Type *paramType() const { return ParamType; }
  const Type *resultType() const { return ResultType; }
  const Expr *body() const { return Body; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::Fun; }

private:
  std::string Param;
  const Type *ParamType;
  const Type *ResultType;
  const Expr *Body;
};

/// Function application `e1 e2`.
class AppExpr : public Expr {
public:
  AppExpr(SourceLoc Loc, const Expr *Fn, const Expr *Arg)
      : Expr(ExprKind::App, Loc), Fn(Fn), Arg(Arg) {}

  const Expr *fn() const { return Fn; }
  const Expr *arg() const { return Arg; }

  static bool classof(const Expr *E) { return E->kind() == ExprKind::App; }

private:
  const Expr *Fn;
  const Expr *Arg;
};

/// Owns every Expr node of a parse, plus the TypeContext used for type
/// annotations appearing in the source.
class AstContext {
public:
  TypeContext &types() { return Types; }

  /// Allocates and owns a node of type \p T.
  template <typename T, typename... Args> const T *make(Args &&...As) {
    auto Node = std::make_unique<T>(std::forward<Args>(As)...);
    const T *Ptr = Node.get();
    Owned.push_back(NodePtr(Node.release(), deleteNode<T>));
    return Ptr;
  }

private:
  template <typename T> static void deleteNode(const Expr *E) {
    delete static_cast<const T *>(E);
  }

  using NodePtr = std::unique_ptr<const Expr, void (*)(const Expr *)>;
  std::vector<NodePtr> Owned;
  TypeContext Types;
};

} // namespace mix

#endif // MIX_LANG_AST_H
