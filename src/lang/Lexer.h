//===--- Lexer.h - Lexer for the core MIX language --------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the core language. Supports nested ML-style
/// comments `(* ... *)` and the paper's block delimiters `{t ... t}` /
/// `{s ... s}`.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_LANG_LEXER_H
#define MIX_LANG_LEXER_H

#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <string_view>

namespace mix {

/// Produces a token stream from a source buffer.
class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticEngine &Diags);

  /// Lexes and returns the next token, advancing the cursor.
  Token next();

  /// The current source location of the cursor.
  SourceLoc loc() const { return {Line, Column}; }

private:
  char peek(size_t LookAhead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  void skipWhitespaceAndComments();
  Token lexIdentOrKeyword();
  Token lexNumber();
  Token makeToken(TokenKind Kind, SourceLoc Loc) const;

  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
};

} // namespace mix

#endif // MIX_LANG_LEXER_H
