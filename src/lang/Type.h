//===--- Type.h - Types of the core MIX language ----------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types of the core language, Figure 1 of the paper:
///
///   tau ::= int | bool | tau ref
///
/// extended with monomorphic function types `tau -> tau` so the motivating
/// examples of Section 2 (e.g. the `id` and `div` functions) can be written
/// directly. Types are interned in a TypeContext, so equality is pointer
/// equality.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_LANG_TYPE_H
#define MIX_LANG_TYPE_H

#include <cassert>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mix {

/// Discriminator for the type forms of the core language.
enum class TypeKind {
  Int,  ///< Machine-independent integers.
  Bool, ///< Booleans.
  Ref,  ///< ML-style updatable references, `tau ref`.
  Fun,  ///< Monomorphic functions, `tau -> tau` (Section 2 extension).
};

/// An interned, immutable type. Obtain instances from TypeContext; compare
/// with ==.
class Type {
public:
  TypeKind kind() const { return Kind; }

  bool isInt() const { return Kind == TypeKind::Int; }
  bool isBool() const { return Kind == TypeKind::Bool; }
  bool isRef() const { return Kind == TypeKind::Ref; }
  bool isFun() const { return Kind == TypeKind::Fun; }

  /// For `tau ref`, the referent type tau.
  const Type *pointee() const {
    assert(isRef() && "pointee() on non-ref type");
    return Arg0;
  }

  /// For `tau1 -> tau2`, the parameter type tau1.
  const Type *param() const {
    assert(isFun() && "param() on non-function type");
    return Arg0;
  }

  /// For `tau1 -> tau2`, the result type tau2.
  const Type *result() const {
    assert(isFun() && "result() on non-function type");
    return Arg1;
  }

  /// Renders the type in source syntax, e.g. "int ref" or "int -> bool".
  std::string str() const;

private:
  friend class TypeContext;
  Type(TypeKind Kind, const Type *Arg0, const Type *Arg1)
      : Kind(Kind), Arg0(Arg0), Arg1(Arg1) {}

  TypeKind Kind;
  const Type *Arg0;
  const Type *Arg1;
};

/// Owns and interns Type instances.
///
/// All types built from the same context with equal structure are the same
/// pointer, so type equality checks throughout the type checker and the
/// symbolic executor are pointer comparisons.
class TypeContext {
public:
  TypeContext();
  TypeContext(const TypeContext &) = delete;
  TypeContext &operator=(const TypeContext &) = delete;

  const Type *intType() const { return IntTy; }
  const Type *boolType() const { return BoolTy; }
  const Type *refType(const Type *Pointee);
  const Type *funType(const Type *Param, const Type *Result);

private:
  const Type *make(TypeKind Kind, const Type *Arg0, const Type *Arg1);

  /// Interning mutates the maps below, and parallel block analyses share
  /// one context, so lookups are serialized. Interned pointers stay
  /// stable forever; only the intern step itself needs the lock.
  std::mutex InternM;
  std::vector<std::unique_ptr<Type>> Owned;
  std::map<std::pair<const Type *, const Type *>, const Type *> RefTypes;
  std::map<std::pair<const Type *, const Type *>, const Type *> FunTypes;
  const Type *IntTy;
  const Type *BoolTy;
};

} // namespace mix

#endif // MIX_LANG_TYPE_H
