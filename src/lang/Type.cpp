//===--- Type.cpp - Types of the core MIX language ------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "lang/Type.h"

using namespace mix;

std::string Type::str() const {
  switch (Kind) {
  case TypeKind::Int:
    return "int";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Ref: {
    std::string Inner = pointee()->str();
    if (pointee()->isFun())
      Inner = "(" + Inner + ")";
    return Inner + " ref";
  }
  case TypeKind::Fun: {
    std::string Lhs = param()->str();
    if (param()->isFun())
      Lhs = "(" + Lhs + ")";
    return Lhs + " -> " + result()->str();
  }
  }
  return "<invalid>";
}

TypeContext::TypeContext() {
  IntTy = make(TypeKind::Int, nullptr, nullptr);
  BoolTy = make(TypeKind::Bool, nullptr, nullptr);
}

const Type *TypeContext::make(TypeKind Kind, const Type *Arg0,
                              const Type *Arg1) {
  Owned.push_back(std::unique_ptr<Type>(new Type(Kind, Arg0, Arg1)));
  return Owned.back().get();
}

const Type *TypeContext::refType(const Type *Pointee) {
  std::lock_guard<std::mutex> Lock(InternM);
  auto Key = std::make_pair(Pointee, nullptr);
  auto It = RefTypes.find(Key);
  if (It != RefTypes.end())
    return It->second;
  const Type *T = make(TypeKind::Ref, Pointee, nullptr);
  RefTypes[Key] = T;
  return T;
}

const Type *TypeContext::funType(const Type *Param, const Type *Result) {
  std::lock_guard<std::mutex> Lock(InternM);
  auto Key = std::make_pair(Param, Result);
  auto It = FunTypes.find(Key);
  if (It != FunTypes.end())
    return It->second;
  const Type *T = make(TypeKind::Fun, Param, Result);
  FunTypes[Key] = T;
  return T;
}
