//===--- Parser.cpp - Parser for the core MIX language --------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

using namespace mix;

Parser::Parser(std::string_view Source, AstContext &Ctx,
               DiagnosticEngine &Diags)
    : Ctx(Ctx), Diags(Diags), Lex(Source, Diags) {
  Tok = Lex.next();
}

void Parser::consume() { Tok = Lex.next(); }

bool Parser::expect(TokenKind Kind) {
  if (Tok.is(Kind)) {
    consume();
    return true;
  }
  Diags.error(Tok.Loc,
              std::string("expected ") + tokenKindName(Kind) + ", found " +
                  tokenKindName(Tok.Kind),
              DiagID::ParseError);
  return false;
}

bool Parser::error(const std::string &Message) {
  Diags.error(Tok.Loc, Message, DiagID::ParseError);
  return false;
}

const Expr *Parser::parseProgram() {
  const Expr *E = parseExpr();
  if (!E)
    return nullptr;
  if (!Tok.is(TokenKind::Eof)) {
    error(std::string("unexpected ") + tokenKindName(Tok.Kind) +
          " after expression");
    return nullptr;
  }
  return E;
}

const Expr *Parser::parseExpr() { return parseSeq(); }

const Expr *Parser::parseSeq() {
  const Expr *First = parseAssign();
  if (!First)
    return nullptr;
  if (!Tok.is(TokenKind::Semi))
    return First;
  SourceLoc Loc = Tok.Loc;
  consume();
  const Expr *Second = parseSeq();
  if (!Second)
    return nullptr;
  return Ctx.make<SeqExpr>(Loc, First, Second);
}

const Expr *Parser::parseAssign() {
  const Expr *Target = parseOr();
  if (!Target)
    return nullptr;
  if (!Tok.is(TokenKind::ColonEqual))
    return Target;
  SourceLoc Loc = Tok.Loc;
  consume();
  const Expr *Value = parseAssign();
  if (!Value)
    return nullptr;
  return Ctx.make<AssignExpr>(Loc, Target, Value);
}

const Expr *Parser::parseOr() {
  const Expr *Lhs = parseAnd();
  if (!Lhs)
    return nullptr;
  while (Tok.is(TokenKind::KwOr)) {
    SourceLoc Loc = Tok.Loc;
    consume();
    const Expr *Rhs = parseAnd();
    if (!Rhs)
      return nullptr;
    Lhs = Ctx.make<BinaryExpr>(Loc, BinaryOp::Or, Lhs, Rhs);
  }
  return Lhs;
}

const Expr *Parser::parseAnd() {
  const Expr *Lhs = parseCmp();
  if (!Lhs)
    return nullptr;
  while (Tok.is(TokenKind::KwAnd)) {
    SourceLoc Loc = Tok.Loc;
    consume();
    const Expr *Rhs = parseCmp();
    if (!Rhs)
      return nullptr;
    Lhs = Ctx.make<BinaryExpr>(Loc, BinaryOp::And, Lhs, Rhs);
  }
  return Lhs;
}

const Expr *Parser::parseCmp() {
  const Expr *Lhs = parseAdd();
  if (!Lhs)
    return nullptr;
  BinaryOp Op;
  if (Tok.is(TokenKind::Equal))
    Op = BinaryOp::Eq;
  else if (Tok.is(TokenKind::Less))
    Op = BinaryOp::Lt;
  else if (Tok.is(TokenKind::LessEqual))
    Op = BinaryOp::Le;
  else
    return Lhs;
  SourceLoc Loc = Tok.Loc;
  consume();
  const Expr *Rhs = parseAdd();
  if (!Rhs)
    return nullptr;
  return Ctx.make<BinaryExpr>(Loc, Op, Lhs, Rhs);
}

const Expr *Parser::parseAdd() {
  const Expr *Lhs = parseApp();
  if (!Lhs)
    return nullptr;
  while (Tok.is(TokenKind::Plus) || Tok.is(TokenKind::Minus)) {
    BinaryOp Op = Tok.is(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    SourceLoc Loc = Tok.Loc;
    consume();
    const Expr *Rhs = parseApp();
    if (!Rhs)
      return nullptr;
    Lhs = Ctx.make<BinaryExpr>(Loc, Op, Lhs, Rhs);
  }
  return Lhs;
}

bool Parser::startsAtom() const {
  switch (Tok.Kind) {
  case TokenKind::Ident:
  case TokenKind::IntLit:
  case TokenKind::KwTrue:
  case TokenKind::KwFalse:
  case TokenKind::LParen:
  case TokenKind::Bang:
  case TokenKind::LBraceTyped:
  case TokenKind::LBraceSymbolic:
    return true;
  default:
    return false;
  }
}

const Expr *Parser::parseApp() {
  const Expr *Fn = parsePrefix();
  if (!Fn)
    return nullptr;
  while (startsAtom()) {
    SourceLoc Loc = Tok.Loc;
    const Expr *Arg = parsePrefix();
    if (!Arg)
      return nullptr;
    Fn = Ctx.make<AppExpr>(Loc, Fn, Arg);
  }
  return Fn;
}

const Expr *Parser::parsePrefix() {
  SourceLoc Loc = Tok.Loc;
  if (Tok.is(TokenKind::Bang)) {
    consume();
    const Expr *Sub = parsePrefix();
    if (!Sub)
      return nullptr;
    return Ctx.make<DerefExpr>(Loc, Sub);
  }
  if (Tok.is(TokenKind::KwRef)) {
    consume();
    const Expr *Sub = parsePrefix();
    if (!Sub)
      return nullptr;
    return Ctx.make<RefExpr>(Loc, Sub);
  }
  if (Tok.is(TokenKind::KwNot)) {
    consume();
    const Expr *Sub = parsePrefix();
    if (!Sub)
      return nullptr;
    return Ctx.make<NotExpr>(Loc, Sub);
  }
  return parsePrimary();
}

const Expr *Parser::parsePrimary() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokenKind::Ident: {
    std::string Name = Tok.Text;
    consume();
    return Ctx.make<VarExpr>(Loc, std::move(Name));
  }
  case TokenKind::IntLit: {
    long long Value = Tok.IntValue;
    consume();
    return Ctx.make<IntLitExpr>(Loc, Value);
  }
  case TokenKind::KwTrue:
    consume();
    return Ctx.make<BoolLitExpr>(Loc, true);
  case TokenKind::KwFalse:
    consume();
    return Ctx.make<BoolLitExpr>(Loc, false);
  case TokenKind::LParen: {
    consume();
    const Expr *Inner = parseExpr();
    if (!Inner || !expect(TokenKind::RParen))
      return nullptr;
    return Inner;
  }
  case TokenKind::LBraceTyped: {
    consume();
    const Expr *Body = parseExpr();
    if (!Body || !expect(TokenKind::RBraceTyped))
      return nullptr;
    return Ctx.make<BlockExpr>(Loc, BlockKind::Typed, Body);
  }
  case TokenKind::LBraceSymbolic: {
    consume();
    const Expr *Body = parseExpr();
    if (!Body || !expect(TokenKind::RBraceSymbolic))
      return nullptr;
    return Ctx.make<BlockExpr>(Loc, BlockKind::Symbolic, Body);
  }
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwLet:
    return parseLet();
  case TokenKind::KwFun:
    return parseFun();
  default:
    error(std::string("expected expression, found ") +
          tokenKindName(Tok.Kind));
    return nullptr;
  }
}

const Expr *Parser::parseIf() {
  SourceLoc Loc = Tok.Loc;
  consume(); // 'if'
  const Expr *Cond = parseExpr();
  if (!Cond || !expect(TokenKind::KwThen))
    return nullptr;
  const Expr *Then = parseExpr();
  if (!Then || !expect(TokenKind::KwElse))
    return nullptr;
  const Expr *Else = parseExpr();
  if (!Else)
    return nullptr;
  return Ctx.make<IfExpr>(Loc, Cond, Then, Else);
}

const Expr *Parser::parseLet() {
  SourceLoc Loc = Tok.Loc;
  consume(); // 'let'
  if (!Tok.is(TokenKind::Ident)) {
    error("expected identifier after 'let'");
    return nullptr;
  }
  std::string Name = Tok.Text;
  consume();

  const Type *Declared = nullptr;
  if (Tok.is(TokenKind::Colon)) {
    consume();
    Declared = parseType();
    if (!Declared)
      return nullptr;
  }

  if (!expect(TokenKind::Equal))
    return nullptr;
  const Expr *Init = parseExpr();
  if (!Init || !expect(TokenKind::KwIn))
    return nullptr;
  const Expr *Body = parseExpr();
  if (!Body)
    return nullptr;
  return Ctx.make<LetExpr>(Loc, std::move(Name), Declared, Init, Body);
}

const Expr *Parser::parseFun() {
  SourceLoc Loc = Tok.Loc;
  consume(); // 'fun'
  if (!expect(TokenKind::LParen))
    return nullptr;
  if (!Tok.is(TokenKind::Ident)) {
    error("expected parameter name in 'fun'");
    return nullptr;
  }
  std::string Param = Tok.Text;
  consume();
  if (!expect(TokenKind::Colon))
    return nullptr;
  const Type *ParamType = parseType();
  if (!ParamType || !expect(TokenKind::RParen) || !expect(TokenKind::Colon))
    return nullptr;
  // The result annotation stops before '->' so the body arrow is not
  // swallowed by the type grammar; arrow result types need parentheses,
  // e.g. `fun (f: int) : (int -> int) -> ...`.
  const Type *ResultType = parseRefType();
  if (!ResultType || !expect(TokenKind::Arrow))
    return nullptr;
  const Expr *Body = parseExpr();
  if (!Body)
    return nullptr;
  return Ctx.make<FunExpr>(Loc, std::move(Param), ParamType, ResultType,
                           Body);
}

const Type *Parser::parseType() {
  const Type *Lhs = parseRefType();
  if (!Lhs)
    return nullptr;
  if (!Tok.is(TokenKind::Arrow))
    return Lhs;
  consume();
  const Type *Rhs = parseType();
  if (!Rhs)
    return nullptr;
  return Ctx.types().funType(Lhs, Rhs);
}

const Type *Parser::parseRefType() {
  const Type *T = parseAtomType();
  if (!T)
    return nullptr;
  while (Tok.is(TokenKind::KwRef)) {
    consume();
    T = Ctx.types().refType(T);
  }
  return T;
}

const Type *Parser::parseAtomType() {
  switch (Tok.Kind) {
  case TokenKind::KwInt:
    consume();
    return Ctx.types().intType();
  case TokenKind::KwBool:
    consume();
    return Ctx.types().boolType();
  case TokenKind::LParen: {
    consume();
    const Type *Inner = parseType();
    if (!Inner || !expect(TokenKind::RParen))
      return nullptr;
    return Inner;
  }
  default:
    error(std::string("expected type, found ") + tokenKindName(Tok.Kind));
    return nullptr;
  }
}

const Expr *mix::parseExpression(std::string_view Source, AstContext &Ctx,
                                 DiagnosticEngine &Diags) {
  Parser P(Source, Ctx, Diags);
  return P.parseProgram();
}
