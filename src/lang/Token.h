//===--- Token.h - Tokens of the core MIX language --------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token vocabulary for the core language lexer. Block delimiters `{t`,
/// `t}`, `{s`, `s}` are single tokens, matching the paper's concrete syntax.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_LANG_TOKEN_H
#define MIX_LANG_TOKEN_H

#include "support/SourceLoc.h"

#include <string>

namespace mix {

/// Kinds of core-language tokens.
enum class TokenKind {
  Eof,
  Error,

  Ident,
  IntLit,

  // Keywords.
  KwTrue,
  KwFalse,
  KwIf,
  KwThen,
  KwElse,
  KwLet,
  KwIn,
  KwRef,
  KwFun,
  KwNot,
  KwAnd,
  KwOr,
  KwInt,
  KwBool,

  // Punctuation and operators.
  Plus,
  Minus,
  Equal,
  Less,
  LessEqual,
  LParen,
  RParen,
  Bang,
  ColonEqual,
  Colon,
  Semi,
  Arrow,

  // Analysis-block delimiters.
  LBraceTyped,    ///< `{t`
  RBraceTyped,    ///< `t}`
  LBraceSymbolic, ///< `{s`
  RBraceSymbolic, ///< `s}`
};

/// Returns a human-readable name for \p Kind, used in parse diagnostics.
const char *tokenKindName(TokenKind Kind);

/// A single lexed token.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  /// Identifier spelling (Kind == Ident) or raw text for Error tokens.
  std::string Text;
  /// Literal value when Kind == IntLit.
  long long IntValue = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace mix

#endif // MIX_LANG_TOKEN_H
