//===--- QualGraph.h - Qualifier constraint graph ---------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint graph of the null/nonnull type qualifier inference
/// system (a simplified reimplementation of Foster et al. 2006, as MIXY's
/// CilQual is). Nodes are qualifier variables; directed edges are value
/// flows. The qualifier lattice is nonnull < null ("may be null" is the
/// top): an error is a flow from a null source into a nonnull-bounded
/// position.
///
/// Solving is reachability from null sources, yielding for each offending
/// node a witness path that the diagnostics print — the paper's notion of
/// "imprecise qualifier flows".
///
//===----------------------------------------------------------------------===//

#ifndef MIX_QUAL_QUALGRAPH_H
#define MIX_QUAL_QUALGRAPH_H

#include "provenance/Provenance.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace mix::c {

/// A qualifier constraint graph.
class QualGraph {
public:
  using Node = unsigned;
  static constexpr Node NoNode = ~0u;

  /// Why an edge exists and where it was induced — the provenance the
  /// flow-chain explanations print. Plain assignments default to Flow
  /// with no location (the node's own location stands in); the mix rules
  /// and alias restoration tag their edges so block-boundary translations
  /// are visible in the explanation.
  struct EdgeInfo {
    prov::FlowEdgeKind Kind = prov::FlowEdgeKind::Flow;
    SourceLoc Loc;
  };

  /// Creates a qualifier variable. \p Description names the program
  /// position (e.g. "main::p_addr" or "param 1 of sysutil_free").
  Node newNode(std::string Description, SourceLoc Loc = SourceLoc());

  /// Records the value flow \p From -> \p To (qual(From) <= qual(To)).
  /// \p Info records why; a duplicate edge keeps its first recording
  /// (deterministic under re-analysis). The two-argument form records a
  /// plain Flow edge with no location.
  void addFlow(Node From, Node To);
  void addFlow(Node From, Node To, EdgeInfo Info);

  /// Marks \p N as a source of null values (a NULL literal or a `null`
  /// annotation).
  void markNullSource(Node N);

  /// Marks \p N as requiring nonnull (a `nonnull` annotation).
  void markNonnullBound(Node N);

  unsigned numNodes() const { return (unsigned)Descriptions.size(); }
  unsigned numEdges() const { return NumEdges; }
  const std::string &description(Node N) const { return Descriptions[N]; }
  SourceLoc location(Node N) const { return Locations[N]; }
  bool isNonnullBound(Node N) const { return NonnullBound[N]; }

  /// Recomputes null-reachability. Call after the graph changes and
  /// before querying mayBeNull / violations.
  void solve();

  /// After solve(): does a null value reach \p N?
  bool mayBeNull(Node N) const { return NullReachable[N]; }

  /// After solve(): every nonnull-bounded node reached by null, i.e.
  /// every qualifier error.
  std::vector<Node> violations() const;

  /// After solve(): a witness flow path from some null source to \p N
  /// (inclusive), as node indices. Empty if N is not reachable.
  std::vector<Node> witnessPath(Node N) const;

  /// Renders the witness path for diagnostics.
  std::string describePath(const std::vector<Node> &Path) const;

  /// After solve(): the witness path for \p N as a provenance flow
  /// chain — one step per node, each carrying the kind and program point
  /// of the edge that reached it (steps with no recorded edge site fall
  /// back to the node's own location). Empty chain if N is unreachable.
  prov::FlowChain flowChain(Node N) const;

private:
  std::vector<std::string> Descriptions;
  std::vector<SourceLoc> Locations;
  std::vector<std::vector<Node>> Successors;
  std::vector<std::vector<EdgeInfo>> EdgeMeta; // parallel to Successors
  std::vector<bool> NullSource;
  std::vector<bool> NonnullBound;
  std::vector<bool> NullReachable;
  std::vector<Node> Parents;         // BFS tree for witnesses
  std::vector<EdgeInfo> ParentEdges; // edge that reached each node
  unsigned NumEdges = 0;
};

} // namespace mix::c

#endif // MIX_QUAL_QUALGRAPH_H
