//===--- QualInference.h - null/nonnull qualifier inference -----*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monomorphic, flow-insensitive null/nonnull type qualifier inference
/// for mini-C — the paper's CilQual. Every pointer position (variable,
/// struct field, parameter, return) gets one qualifier variable per
/// pointer level; assignments, calls, and returns generate flow
/// constraints; NULL literals and `null` annotations are null sources;
/// `nonnull` annotations are bounds. A warning is a flow from a source to
/// a bound, with a witness path.
///
/// The deliberate imprecision matches the paper:
///  - flow-insensitive: assignment order is ignored (Case 1),
///  - path-insensitive: null checks are ignored (Cases 1-3),
///  - context-insensitive: one qualifier per function parameter conflates
///    call sites (Case 2).
///
/// MIXY hooks in through QualSymHook: when the inference reaches a call
/// to a MIX(symbolic) function, the hook analyzes it symbolically and
/// seeds constraints from the result (Section 4.1).
///
//===----------------------------------------------------------------------===//

#ifndef MIX_QUAL_QUALINFERENCE_H
#define MIX_QUAL_QUALINFERENCE_H

#include "ptranal/PointsTo.h"
#include "qual/QualGraph.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mix::c {

/// Qualifier variables of an expression, one per pointer level of its
/// type (outermost first). Scalars have an empty vector.
using QualVec = std::vector<QualGraph::Node>;

class QualInference;

/// MIXY's entry point into typed regions: called when inference reaches a
/// call to a MIX(symbolic) function.
class QualSymHook {
public:
  virtual ~QualSymHook() = default;

  /// Analyzes the call to \p Callee symbolically and adds the resulting
  /// constraints to \p Inference. \p ArgQuals are the qualifier variables
  /// of the actual arguments; \p RetQuals receives the result qualifiers.
  /// Returns false to fall back to ordinary monomorphic binding.
  virtual bool handleSymbolicCall(QualInference &Inference,
                                  const CCall *Call, const CFuncDecl *Callee,
                                  const std::vector<QualVec> &ArgQuals,
                                  QualVec &RetQuals) = 0;
};

/// Options for the inference.
struct QualOptions {
  /// Treat every pointer dereference as a nonnull requirement (the
  /// "annotate all dereferences" mode the paper chose not to start with).
  bool WarnAllDereferences = false;

  /// When attached, every reported warning carries a qualifier flow
  /// chain (shortest $null-source-to-sink path with per-edge provenance).
  /// Null — the default — skips recording entirely.
  prov::ProvenanceSink *Prov = nullptr;
};

/// The inference engine. Constraint generation is incremental: MIXY calls
/// analyzeFunction for each function in a typed region and solve()
/// whenever it needs qualifier answers.
class QualInference {
public:
  QualInference(const CProgram &Program, CAstContext &Ctx,
                DiagnosticEngine &Diags, QualOptions Opts = QualOptions())
      : Program(Program), Sema(Program, Ctx, Diags), Diags(Diags),
        Opts(Opts) {}

  void setSymHook(QualSymHook *Hook) { this->Hook = Hook; }

  /// Generates constraints for all globals and every defined function —
  /// "pure type qualifier inference" over the program.
  void analyzeAll();

  /// Generates constraints for one function body (idempotent).
  void analyzeFunction(const CFuncDecl *F);

  /// Generates constraints for global initializers (idempotent).
  void analyzeGlobals();

  /// Recomputes reachability.
  void solve() { Graph.solve(); }

  /// After solve(): reports one warning (plus a witness-path note) per
  /// violated nonnull bound. Returns the number of warnings.
  unsigned reportWarnings();

  /// After solve(): the number of violated nonnull bounds.
  unsigned violationCount() const { return (unsigned)Graph.violations().size(); }

  // --- qualifier variables (for MIXY's translations, Section 4.1) -------

  /// Qualifier variables of variable \p Name (function-local or global).
  const QualVec &qualsOfVar(const CFuncDecl *Func, const std::string &Name);
  /// Qualifier variables of field \p Field of \p Struct.
  const QualVec &qualsOfField(const CStructDecl *Struct,
                              const std::string &Field);
  const QualVec &qualsOfReturn(const CFuncDecl *F);
  const QualVec &qualsOfParam(const CFuncDecl *F, unsigned Index);

  /// Qualifier variables of an arbitrary expression in a scope (generates
  /// any constraints the expression implies).
  QualVec qualsOfExpr(const CExpr *E, const CScope &Scope);

  /// After solve(): may a null value reach this qualifier variable?
  bool mayBeNull(QualGraph::Node N) const { return Graph.mayBeNull(N); }

  /// Seeds a null source into \p N (used when translating a possibly-null
  /// symbolic value back to types). \p Reason labels the source node;
  /// \p Kind tags the induced edge for flow-chain explanations (MIXY's
  /// block-boundary translations pass MixBoundary).
  void seedNull(QualGraph::Node N, const std::string &Reason, SourceLoc Loc,
                prov::FlowEdgeKind Kind = prov::FlowEdgeKind::Seed);

  /// Adds a plain flow edge (used by alias restoration, Section 4.2).
  void addFlow(QualGraph::Node From, QualGraph::Node To) {
    Graph.addFlow(From, To);
  }

  /// Makes the top-level qualifiers of all pointer variables that the
  /// points-to analysis places in one equivalence class flow into each
  /// other (Section 4.2, symbolic-to-typed transition). \p Loc is the
  /// program point that triggered the restoration (tags the alias edges).
  void unifyAliasClass(
      const std::vector<std::pair<const CFuncDecl *, std::string>> &Vars,
      SourceLoc Loc = SourceLoc());

  QualGraph &graph() { return Graph; }
  CSema &sema() { return Sema; }

private:
  /// Number of pointer levels along the spine of \p Ty.
  static unsigned qualDepth(const CType *Ty);

  /// Builds the qualifier variables for a declared type, applying its
  /// source annotations.
  QualVec makeQualsForType(const CType *Ty, const std::string &Description,
                           SourceLoc Loc);

  /// Top-level flow plus deeper-level invariance, padding with fresh
  /// nodes where depths differ.
  void flowInto(const QualVec &From, const QualVec &To);

  void analyzeStmt(const CStmt *S, CScope &Scope);
  QualVec analyzeCall(const CCall *Call, const CScope &Scope);

  const CProgram &Program;
  CSema Sema;
  DiagnosticEngine &Diags;
  QualOptions Opts;
  QualGraph Graph;
  QualSymHook *Hook = nullptr;

  std::map<std::pair<const CFuncDecl *, std::string>, QualVec> VarQuals;
  std::map<std::pair<const CStructDecl *, std::string>, QualVec> FieldQuals;
  std::map<const CFuncDecl *, QualVec> ReturnQuals;
  std::map<std::pair<const CFuncDecl *, unsigned>, QualVec> ParamQuals;
  std::set<const CFuncDecl *> AnalyzedFuncs;
  bool GlobalsAnalyzed = false;
};

} // namespace mix::c

#endif // MIX_QUAL_QUALINFERENCE_H
