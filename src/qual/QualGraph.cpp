//===--- QualGraph.cpp - Qualifier constraint graph -------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "qual/QualGraph.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace mix::c;

QualGraph::Node QualGraph::newNode(std::string Description, SourceLoc Loc) {
  Node N = (Node)Descriptions.size();
  Descriptions.push_back(std::move(Description));
  Locations.push_back(Loc);
  Successors.emplace_back();
  EdgeMeta.emplace_back();
  NullSource.push_back(false);
  NonnullBound.push_back(false);
  NullReachable.push_back(false);
  Parents.push_back(NoNode);
  ParentEdges.emplace_back();
  return N;
}

void QualGraph::addFlow(Node From, Node To) { addFlow(From, To, EdgeInfo()); }

void QualGraph::addFlow(Node From, Node To, EdgeInfo Info) {
  assert(From < numNodes() && To < numNodes() && "flow between bad nodes");
  if (From == To)
    return;
  auto &Succ = Successors[From];
  if (std::find(Succ.begin(), Succ.end(), To) != Succ.end())
    return;
  Succ.push_back(To);
  EdgeMeta[From].push_back(Info);
  ++NumEdges;
}

void QualGraph::markNullSource(Node N) { NullSource[N] = true; }

void QualGraph::markNonnullBound(Node N) { NonnullBound[N] = true; }

void QualGraph::solve() {
  std::fill(NullReachable.begin(), NullReachable.end(), false);
  std::fill(Parents.begin(), Parents.end(), NoNode);
  std::fill(ParentEdges.begin(), ParentEdges.end(), EdgeInfo());
  std::deque<Node> Work;
  for (Node N = 0; N != numNodes(); ++N) {
    if (NullSource[N]) {
      NullReachable[N] = true;
      Work.push_back(N);
    }
  }
  while (!Work.empty()) {
    Node N = Work.front();
    Work.pop_front();
    for (size_t I = 0; I != Successors[N].size(); ++I) {
      Node S = Successors[N][I];
      if (NullReachable[S])
        continue;
      NullReachable[S] = true;
      Parents[S] = N;
      ParentEdges[S] = EdgeMeta[N][I];
      Work.push_back(S);
    }
  }
}

std::vector<QualGraph::Node> QualGraph::violations() const {
  std::vector<Node> Out;
  for (Node N = 0; N != numNodes(); ++N)
    if (NonnullBound[N] && NullReachable[N])
      Out.push_back(N);
  return Out;
}

std::vector<QualGraph::Node> QualGraph::witnessPath(Node N) const {
  if (!NullReachable[N])
    return {};
  std::vector<Node> Path;
  for (Node Cur = N; Cur != NoNode; Cur = Parents[Cur])
    Path.push_back(Cur);
  std::reverse(Path.begin(), Path.end());
  return Path;
}

std::string QualGraph::describePath(const std::vector<Node> &Path) const {
  std::string Out;
  for (size_t I = 0; I != Path.size(); ++I) {
    if (I != 0)
      Out += " -> ";
    Out += Descriptions[Path[I]];
  }
  return Out;
}

mix::prov::FlowChain QualGraph::flowChain(Node N) const {
  prov::FlowChain Chain;
  std::vector<Node> Path = witnessPath(N);
  for (size_t I = 0; I != Path.size(); ++I) {
    prov::FlowStep Step;
    Step.Desc = Descriptions[Path[I]];
    Step.Loc = Locations[Path[I]];
    if (I != 0) {
      const EdgeInfo &E = ParentEdges[Path[I]];
      Step.EdgeFromPrev = E.Kind;
      if (E.Loc.isValid())
        Step.Loc = E.Loc;
    }
    Chain.Steps.push_back(std::move(Step));
  }
  return Chain;
}
