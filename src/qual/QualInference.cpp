//===--- QualInference.cpp - null/nonnull qualifier inference --------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "qual/QualInference.h"

using namespace mix::c;

unsigned QualInference::qualDepth(const CType *Ty) {
  unsigned Depth = 0;
  while (Ty->isPointer()) {
    ++Depth;
    Ty = Ty->pointee();
  }
  return Depth;
}

QualVec QualInference::makeQualsForType(const CType *Ty,
                                        const std::string &Description,
                                        SourceLoc Loc) {
  QualVec Out;
  unsigned Level = 0;
  while (Ty->isPointer()) {
    std::string Name = Description;
    if (Level != 0)
      Name += " @" + std::to_string(Level);
    QualGraph::Node N = Graph.newNode(Name, Loc);
    switch (Ty->qualifier()) {
    case QualAnnot::None:
      break;
    case QualAnnot::Null:
      Graph.markNullSource(N);
      break;
    case QualAnnot::Nonnull:
      Graph.markNonnullBound(N);
      break;
    }
    Out.push_back(N);
    Ty = Ty->pointee();
    ++Level;
  }
  return Out;
}

void QualInference::flowInto(const QualVec &From, const QualVec &To) {
  // The paper's CilQual generates equality constraints ("null = beta,
  // beta = gamma, gamma = delta, ..."), i.e. unification-style monomorphic
  // inference. We therefore add flows in both directions at every level;
  // this is exactly what produces the context-insensitive conflation of
  // Section 4.5, Case 2.
  size_t Levels = std::max(From.size(), To.size());
  for (size_t I = 0; I != Levels; ++I) {
    // Pad missing levels with fresh unconstrained variables so partial
    // information still propagates.
    QualGraph::Node F = I < From.size()
                            ? From[I]
                            : Graph.newNode("<fresh>", SourceLoc());
    QualGraph::Node T =
        I < To.size() ? To[I] : Graph.newNode("<fresh>", SourceLoc());
    Graph.addFlow(F, T);
    Graph.addFlow(T, F);
  }
}

const QualVec &QualInference::qualsOfVar(const CFuncDecl *Func,
                                         const std::string &Name) {
  auto Key = std::make_pair(Func, Name);
  auto It = VarQuals.find(Key);
  if (It != VarQuals.end())
    return It->second;

  const CType *Ty = nullptr;
  SourceLoc Loc;
  std::string Description;
  if (Func) {
    for (const auto &P : Func->params())
      if (P.Name == Name) {
        Ty = P.Ty;
        Loc = Func->loc();
      }
    Description = Func->name() + "::" + Name;
  }
  if (!Ty) {
    if (const CGlobalDecl *G = Program.findGlobal(Name)) {
      Ty = G->type();
      Loc = G->loc();
      Description = Name;
    }
  }
  // Locals are registered eagerly by analyzeStmt; reaching here with an
  // unknown name means the caller asked before analysis or the name is a
  // local not yet seen — create placeholder variables from no type.
  QualVec Quals =
      Ty ? makeQualsForType(Ty, Description, Loc) : QualVec();
  return VarQuals.emplace(Key, std::move(Quals)).first->second;
}

const QualVec &QualInference::qualsOfField(const CStructDecl *Struct,
                                           const std::string &Field) {
  auto Key = std::make_pair(Struct, Field);
  auto It = FieldQuals.find(Key);
  if (It != FieldQuals.end())
    return It->second;
  const CStructDecl::Field *F = Struct->findField(Field);
  QualVec Quals =
      F ? makeQualsForType(F->Ty, "struct " + Struct->name() + "." + Field,
                           Struct->loc())
        : QualVec();
  return FieldQuals.emplace(Key, std::move(Quals)).first->second;
}

const QualVec &QualInference::qualsOfReturn(const CFuncDecl *F) {
  auto It = ReturnQuals.find(F);
  if (It != ReturnQuals.end())
    return It->second;
  QualVec Quals = makeQualsForType(F->returnType(),
                                   "return of " + F->name(), F->loc());
  return ReturnQuals.emplace(F, std::move(Quals)).first->second;
}

const QualVec &QualInference::qualsOfParam(const CFuncDecl *F,
                                           unsigned Index) {
  auto Key = std::make_pair(F, Index);
  auto It = ParamQuals.find(Key);
  if (It != ParamQuals.end())
    return It->second;
  assert(Index < F->params().size() && "parameter index out of range");
  const auto &P = F->params()[Index];
  QualVec Quals = makeQualsForType(
      P.Ty, "param " + P.Name + " of " + F->name(), F->loc());
  // Parameters are storage too: unify with the variable slot so body
  // references see the same qualifiers.
  auto VarKey = std::make_pair(F, P.Name);
  auto VarIt = VarQuals.find(VarKey);
  if (VarIt == VarQuals.end())
    VarQuals.emplace(VarKey, Quals);
  else
    for (size_t I = 0; I < Quals.size() && I < VarIt->second.size(); ++I) {
      Graph.addFlow(Quals[I], VarIt->second[I]);
      Graph.addFlow(VarIt->second[I], Quals[I]);
    }
  return ParamQuals.emplace(Key, std::move(Quals)).first->second;
}

void QualInference::seedNull(QualGraph::Node N, const std::string &Reason,
                             SourceLoc Loc, prov::FlowEdgeKind Kind) {
  QualGraph::Node Source = Graph.newNode(Reason, Loc);
  Graph.markNullSource(Source);
  Graph.addFlow(Source, N, {Kind, Loc});
}

void QualInference::unifyAliasClass(
    const std::vector<std::pair<const CFuncDecl *, std::string>> &Vars,
    SourceLoc Loc) {
  // "We add constraints to require that all may-aliased expressions have
  // the same type" (Section 4.2): bidirectional flows pairwise through
  // the first member.
  const QualVec *First = nullptr;
  for (const auto &[Func, Name] : Vars) {
    const QualVec &Q = qualsOfVar(Func, Name);
    if (Q.empty())
      continue;
    if (!First) {
      First = &Q;
      continue;
    }
    for (size_t I = 0; I < Q.size() && I < First->size(); ++I) {
      Graph.addFlow(Q[I], (*First)[I], {prov::FlowEdgeKind::Alias, Loc});
      Graph.addFlow((*First)[I], Q[I], {prov::FlowEdgeKind::Alias, Loc});
    }
  }
}

void QualInference::analyzeAll() {
  analyzeGlobals();
  for (const CFuncDecl *F : Program.Funcs)
    if (F->isDefined())
      analyzeFunction(F);
}

void QualInference::analyzeGlobals() {
  if (GlobalsAnalyzed)
    return;
  GlobalsAnalyzed = true;
  CScope Empty;
  for (const CGlobalDecl *G : Program.Globals) {
    qualsOfVar(nullptr, G->name());
    if (G->init()) {
      QualVec Init = qualsOfExpr(G->init(), Empty);
      flowInto(Init, qualsOfVar(nullptr, G->name()));
    }
  }
}

void QualInference::analyzeFunction(const CFuncDecl *F) {
  if (!F->isDefined() || AnalyzedFuncs.count(F))
    return;
  AnalyzedFuncs.insert(F);
  // Materialize parameter and return qualifiers.
  for (unsigned I = 0; I != F->params().size(); ++I)
    qualsOfParam(F, I);
  qualsOfReturn(F);
  CScope Scope = CScope::forFunction(F);
  analyzeStmt(F->body(), Scope);
}

void QualInference::analyzeStmt(const CStmt *S, CScope &Scope) {
  switch (S->kind()) {
  case CStmtKind::Expr:
    qualsOfExpr(cast<CExprStmt>(S)->expr(), Scope);
    return;
  case CStmtKind::Decl: {
    const auto *D = cast<CDeclStmt>(S);
    Scope.Locals[D->name()] = D->type();
    // Register the local's qualifiers from its declared type.
    auto Key = std::make_pair(Scope.Func, D->name());
    if (!VarQuals.count(Key))
      VarQuals.emplace(Key,
                       makeQualsForType(D->type(),
                                        Scope.Func->name() + "::" + D->name(),
                                        D->loc()));
    if (D->init()) {
      QualVec Init = qualsOfExpr(D->init(), Scope);
      flowInto(Init, VarQuals[Key]);
    }
    return;
  }
  case CStmtKind::If: {
    // Flow-insensitive and path-insensitive: both branches contribute,
    // the condition constrains nothing.
    const auto *I = cast<CIfStmt>(S);
    qualsOfExpr(I->cond(), Scope);
    CScope ThenScope = Scope;
    analyzeStmt(I->thenStmt(), ThenScope);
    if (I->elseStmt()) {
      CScope ElseScope = Scope;
      analyzeStmt(I->elseStmt(), ElseScope);
    }
    return;
  }
  case CStmtKind::While: {
    const auto *W = cast<CWhileStmt>(S);
    qualsOfExpr(W->cond(), Scope);
    CScope BodyScope = Scope;
    analyzeStmt(W->body(), BodyScope);
    return;
  }
  case CStmtKind::Return: {
    const auto *R = cast<CReturnStmt>(S);
    if (R->value()) {
      QualVec V = qualsOfExpr(R->value(), Scope);
      flowInto(V, qualsOfReturn(Scope.Func));
    }
    return;
  }
  case CStmtKind::Block:
    for (const CStmt *Sub : cast<CBlockStmt>(S)->stmts())
      analyzeStmt(Sub, Scope);
    return;
  }
}

QualVec QualInference::analyzeCall(const CCall *Call, const CScope &Scope) {
  // malloc returns a fresh non-null pointer.
  if (const auto *Id = dyn_cast<CIdent>(Call->callee()))
    if (Id->name() == "malloc" && !Program.findFunc("malloc")) {
      for (const CExpr *Arg : Call->args())
        qualsOfExpr(Arg, Scope);
      QualVec Out;
      Out.push_back(Graph.newNode("malloc result", Call->loc()));
      return Out;
    }

  std::vector<QualVec> ArgQuals;
  for (const CExpr *Arg : Call->args())
    ArgQuals.push_back(qualsOfExpr(Arg, Scope));

  const CFuncDecl *Callee = Sema.directCallee(Call);
  if (Callee) {
    // MIXY's frontier: a call to a MIX(symbolic) function switches
    // analyses through the hook.
    if (Hook && Callee->mixAnnot() == MixAnnot::Symbolic) {
      QualVec Ret;
      if (Hook->handleSymbolicCall(*this, Call, Callee, ArgQuals, Ret))
        return Ret;
    }
    for (unsigned I = 0;
         I != ArgQuals.size() && I != Callee->params().size(); ++I)
      flowInto(ArgQuals[I], qualsOfParam(Callee, I));
    return qualsOfReturn(Callee);
  }

  // Indirect call: conservatively bind against every function whose
  // signature is compatible (the monomorphic approximation CilQual
  // makes with CIL's call-graph).
  const CType *CalleeTy = Sema.typeOf(Call->callee(), Scope);
  QualVec Ret;
  if (CalleeTy && CalleeTy->isPointer())
    CalleeTy = CalleeTy->pointee();
  for (const CFuncDecl *F : Program.Funcs) {
    if (!CalleeTy || !CalleeTy->isFunc())
      break;
    if (F->params().size() != CalleeTy->params().size())
      continue;
    for (unsigned I = 0;
         I != ArgQuals.size() && I != F->params().size(); ++I)
      flowInto(ArgQuals[I], qualsOfParam(F, I));
    const QualVec &FRet = qualsOfReturn(F);
    if (Ret.empty())
      Ret = FRet;
    else
      for (size_t I = 0; I < Ret.size() && I < FRet.size(); ++I)
        Graph.addFlow(FRet[I], Ret[I]);
  }
  return Ret;
}

QualVec QualInference::qualsOfExpr(const CExpr *E, const CScope &Scope) {
  switch (E->kind()) {
  case CExprKind::IntLit:
  case CExprKind::SizeOf:
    return {};
  case CExprKind::StrLit: {
    QualVec Out;
    Out.push_back(Graph.newNode("string literal", E->loc()));
    return Out;
  }
  case CExprKind::NullLit: {
    QualVec Out;
    QualGraph::Node N = Graph.newNode("NULL", E->loc());
    Graph.markNullSource(N);
    Out.push_back(N);
    return Out;
  }
  case CExprKind::Ident: {
    const auto *Id = cast<CIdent>(E);
    if (Scope.Locals.count(Id->name()))
      return qualsOfVar(Scope.Func, Id->name());
    if (Program.findGlobal(Id->name()))
      return qualsOfVar(nullptr, Id->name());
    if (Program.findFunc(Id->name())) {
      // A function name used as a value: a non-null function pointer.
      QualVec Out;
      Out.push_back(Graph.newNode("&" + Id->name(), E->loc()));
      return Out;
    }
    return {};
  }
  case CExprKind::Unary: {
    const auto *U = cast<CUnary>(E);
    QualVec Sub = qualsOfExpr(U->sub(), Scope);
    switch (U->op()) {
    case CUnaryOp::Deref: {
      if (Opts.WarnAllDereferences && !Sub.empty()) {
        QualGraph::Node Bound =
            Graph.newNode("dereference", E->loc());
        Graph.markNonnullBound(Bound);
        Graph.addFlow(Sub[0], Bound);
      }
      if (Sub.empty())
        return {};
      return QualVec(Sub.begin() + 1, Sub.end());
    }
    case CUnaryOp::AddrOf: {
      QualVec Out;
      Out.push_back(Graph.newNode("address-of", E->loc()));
      Out.insert(Out.end(), Sub.begin(), Sub.end());
      return Out;
    }
    case CUnaryOp::Not:
    case CUnaryOp::Neg:
      return {};
    }
    return {};
  }
  case CExprKind::Binary: {
    const auto *B = cast<CBinary>(E);
    QualVec L = qualsOfExpr(B->lhs(), Scope);
    QualVec R = qualsOfExpr(B->rhs(), Scope);
    if (B->op() == CBinaryOp::Add || B->op() == CBinaryOp::Sub) {
      // Pointer arithmetic preserves the pointer's qualifiers.
      if (!L.empty())
        return L;
      if (!R.empty())
        return R;
    }
    // Comparisons and logic: path-insensitive, no constraints.
    return {};
  }
  case CExprKind::Assign: {
    const auto *A = cast<CAssign>(E);
    QualVec Target = qualsOfExpr(A->target(), Scope);
    QualVec Value = qualsOfExpr(A->value(), Scope);
    flowInto(Value, Target);
    return Target;
  }
  case CExprKind::Call:
    return analyzeCall(cast<CCall>(E), Scope);
  case CExprKind::Member: {
    const auto *M = cast<CMember>(E);
    QualVec Base = qualsOfExpr(M->base(), Scope);
    if (M->isArrow() && Opts.WarnAllDereferences && !Base.empty()) {
      QualGraph::Node Bound = Graph.newNode("dereference", E->loc());
      Graph.markNonnullBound(Bound);
      Graph.addFlow(Base[0], Bound);
    }
    // Resolve the struct type to find the field's qualifier slot.
    const CType *BaseTy = Sema.typeOf(M->base(), Scope);
    if (!BaseTy)
      return {};
    const CType *StructTy = M->isArrow() ? BaseTy->pointee() : BaseTy;
    if (!StructTy->isStruct())
      return {};
    return qualsOfField(StructTy->structDecl(), M->field());
  }
  case CExprKind::Cast: {
    // Casts pass qualifiers through (the (T*)malloc(...) idiom).
    return qualsOfExpr(cast<CCast>(E)->sub(), Scope);
  }
  }
  return {};
}

unsigned QualInference::reportWarnings() {
  unsigned Count = 0;
  for (QualGraph::Node N : Graph.violations()) {
    ++Count;
    size_t Idx = Diags.report(DiagKind::Warning, Graph.location(N),
                              "null value may reach nonnull position '" +
                                  Graph.description(N) + "'",
                              DiagID::NullWarning);
    if (Opts.Prov) {
      auto P = std::make_shared<prov::DiagProvenance>();
      P->Flow = Graph.flowChain(N);
      Diags.attachProvenance(Idx, std::move(P));
      Opts.Prov->countFlow();
    }
    std::vector<QualGraph::Node> Path = Graph.witnessPath(N);
    if (!Path.empty())
      Diags.note(Graph.location(Path.front()),
                 "qualifier flow: " + Graph.describePath(Path),
                 DiagID::QualFlowNote);
  }
  return Count;
}
