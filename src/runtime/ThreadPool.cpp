//===--- ThreadPool.cpp - Work-stealing task pool ---------------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "runtime/ThreadPool.h"

using namespace mix::rt;

namespace {

/// Which pool (if any) the current thread works for, and its index.
/// Thread-local so nested submission and future-helping can find the
/// caller's own deque without a registry lookup.
thread_local const ThreadPool *CurrentPool = nullptr;
thread_local int CurrentWorkerIndex = -1;

} // namespace

ThreadPool::ThreadPool(unsigned WorkerCount, obs::TraceSink *TraceSink,
                       const char *Name)
    : Trace(TraceSink), PoolName(Name) {
  Queues.reserve(WorkerCount);
  for (unsigned I = 0; I != WorkerCount; ++I)
    Queues.push_back(std::make_unique<WorkerQueue>());
  Workers.reserve(WorkerCount);
  for (unsigned I = 0; I != WorkerCount; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(SleepM);
    Stopping = true;
  }
  SleepCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

int ThreadPool::currentWorker() const {
  return CurrentPool == this ? CurrentWorkerIndex : -1;
}

void ThreadPool::enqueue(Task T) {
  int Self = currentWorker();
  unsigned Target;
  if (Self >= 0) {
    Target = (unsigned)Self; // nested submission: stay local, run LIFO
  } else {
    std::lock_guard<std::mutex> Lock(SleepM);
    Target = NextQueue;
    NextQueue = (NextQueue + 1) % (unsigned)Queues.size();
  }
  {
    std::lock_guard<std::mutex> Lock(Queues[Target]->M);
    Queues[Target]->Tasks.push_back(std::move(T));
  }
  // Serialize with the sleepers' check-then-wait: a worker holds SleepM
  // from its empty re-scan until wait(), so acquiring it here means the
  // notify below cannot fall between a scan that missed this task and
  // the corresponding wait.
  {
    std::lock_guard<std::mutex> Lock(SleepM);
  }
  SleepCv.notify_one();
}

bool ThreadPool::popTask(Task &Out) {
  int Self = currentWorker();
  // Own deque first, newest task first (locality for nested submits).
  if (Self >= 0) {
    WorkerQueue &Q = *Queues[Self];
    std::lock_guard<std::mutex> Lock(Q.M);
    if (!Q.Tasks.empty()) {
      Out = std::move(Q.Tasks.back());
      Q.Tasks.pop_back();
      return true;
    }
  }
  // Steal oldest-first from the others, starting after our own slot so
  // thieves spread out instead of all hammering queue 0.
  size_t N = Queues.size();
  size_t Start = Self >= 0 ? (size_t)(Self + 1) : 0;
  for (size_t K = 0; K != N; ++K) {
    WorkerQueue &Q = *Queues[(Start + K) % N];
    std::lock_guard<std::mutex> Lock(Q.M);
    if (!Q.Tasks.empty()) {
      Out = std::move(Q.Tasks.front());
      Q.Tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::runTask(Task &T) {
  obs::TraceSpan Span(Trace, "pool.task", "pool");
  T();
}

bool ThreadPool::runOneTask() {
  Task T;
  if (!popTask(T))
    return false;
  runTask(T);
  return true;
}

void ThreadPool::workerLoop(unsigned Index) {
  CurrentPool = this;
  CurrentWorkerIndex = (int)Index;
  if (Trace)
    Trace->nameCurrentThread(std::string(PoolName) + " worker " +
                             std::to_string(Index));
  for (;;) {
    Task T;
    if (popTask(T)) {
      runTask(T);
      continue;
    }
    std::unique_lock<std::mutex> Lock(SleepM);
    if (Stopping)
      break;
    // Re-check under the lock: a submit may have raced our empty scan.
    bool AnyWork = false;
    for (auto &Q : Queues) {
      std::lock_guard<std::mutex> QLock(Q->M);
      if (!Q->Tasks.empty()) {
        AnyWork = true;
        break;
      }
    }
    if (AnyWork)
      continue;
    SleepCv.wait(Lock);
  }
  CurrentPool = nullptr;
  CurrentWorkerIndex = -1;
}

void ThreadPool::parallelFor(size_t N, const std::function<void(size_t)> &Body) {
  if (N == 0)
    return;
  if (Workers.empty()) {
    for (size_t I = 0; I != N; ++I)
      Body(I);
    return;
  }
  std::vector<TaskFuture<void>> Futures;
  Futures.reserve(N);
  for (size_t I = 0; I != N; ++I)
    Futures.push_back(submit([&Body, I] { Body(I); }));
  std::exception_ptr First;
  for (TaskFuture<void> &F : Futures) {
    try {
      F.get();
    } catch (...) {
      if (!First)
        First = std::current_exception();
    }
  }
  if (First)
    std::rethrow_exception(First);
}
