//===--- ThreadPool.h - Work-stealing task pool -----------------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for block-level parallelism. The
/// paper's analyses decompose into blocks that are independent at their
/// boundaries (typed regions exchange only calling contexts and block
/// summaries with symbolic blocks), so sibling blocks can be analyzed by
/// concurrent workers and joined at a barrier.
///
/// Design:
///  - one deque per worker; a task submitted from a worker goes to that
///    worker's own deque (LIFO for locality), tasks submitted from
///    outside go round-robin; idle workers steal FIFO from the others;
///  - futures propagate exceptions and, when awaited from a worker
///    thread, *help* by draining pending tasks instead of blocking, so
///    nested submission (a task awaiting its own subtasks) cannot
///    deadlock the pool;
///  - a pool with 0 workers degenerates to inline execution on the
///    calling thread — the serial path, byte-for-byte identical to not
///    having a pool at all.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_RUNTIME_THREADPOOL_H
#define MIX_RUNTIME_THREADPOOL_H

#include "observe/Trace.h"

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace mix::rt {

class ThreadPool;

namespace detail {

/// Shared state between a TaskFuture and the task that fulfills it.
template <typename T> struct FutureState {
  std::mutex M;
  std::condition_variable Cv;
  bool Ready = false;
  std::exception_ptr Error;
  // Default-constructed slot; assigned exactly once before Ready.
  alignas(T) unsigned char Storage[sizeof(T)];
  bool HasValue = false;

  ~FutureState() {
    if (HasValue)
      reinterpret_cast<T *>(Storage)->~T();
  }

  void setValue(T Value) {
    std::lock_guard<std::mutex> Lock(M);
    ::new (Storage) T(std::move(Value));
    HasValue = true;
    Ready = true;
    Cv.notify_all();
  }
  void setError(std::exception_ptr E) {
    std::lock_guard<std::mutex> Lock(M);
    Error = std::move(E);
    Ready = true;
    Cv.notify_all();
  }
};

template <> struct FutureState<void> {
  std::mutex M;
  std::condition_variable Cv;
  bool Ready = false;
  std::exception_ptr Error;

  void setValue() {
    std::lock_guard<std::mutex> Lock(M);
    Ready = true;
    Cv.notify_all();
  }
  void setError(std::exception_ptr E) {
    std::lock_guard<std::mutex> Lock(M);
    Error = std::move(E);
    Ready = true;
    Cv.notify_all();
  }
};

} // namespace detail

/// Handle to the eventual result of a submitted task. get() blocks (or
/// helps run queued tasks when called on a pool worker) and rethrows any
/// exception the task threw.
template <typename T> class TaskFuture {
public:
  TaskFuture() = default;

  /// True when a result or exception is available.
  bool ready() const {
    if (!State)
      return true;
    std::lock_guard<std::mutex> Lock(State->M);
    return State->Ready;
  }

  /// Blocks until the task completes; rethrows its exception. On a pool
  /// worker thread, runs queued tasks while waiting.
  T get();

  bool valid() const { return State != nullptr; }

private:
  friend class ThreadPool;
  TaskFuture(std::shared_ptr<detail::FutureState<T>> State, ThreadPool *Pool)
      : State(std::move(State)), Pool(Pool) {}

  std::shared_ptr<detail::FutureState<T>> State;
  ThreadPool *Pool = nullptr;
};

/// The pool. Construction spawns the workers; destruction joins them
/// after draining nothing (outstanding futures must be awaited first by
/// the owner — the analyses join at round barriers).
class ThreadPool {
public:
  /// \p Workers threads are spawned. 0 means inline execution: submit()
  /// runs the task immediately on the calling thread.
  ///
  /// With a trace sink attached, each worker names its timeline lane
  /// ("<name> worker N") and every executed task is recorded as a
  /// "pool.task" span on the worker that ran it; a null sink costs one
  /// branch per task.
  explicit ThreadPool(unsigned Workers, obs::TraceSink *Trace = nullptr,
                      const char *Name = "pool");
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned workerCount() const { return (unsigned)Workers.size(); }

  /// A sensible default worker count for "use all the hardware".
  static unsigned hardwareWorkers() {
    unsigned N = std::thread::hardware_concurrency();
    return N == 0 ? 1 : N;
  }

  /// Index of the calling pool worker (0-based), or -1 when the caller is
  /// not one of this pool's workers.
  int currentWorker() const;

  /// Submits \p Fn; returns a future for its result. Exceptions thrown by
  /// \p Fn surface from TaskFuture::get().
  template <typename Fn, typename R = std::invoke_result_t<Fn>>
  TaskFuture<R> submit(Fn Fn_) {
    auto State = std::make_shared<detail::FutureState<R>>();
    if (Workers.empty()) {
      runInline<R>(*State, std::move(Fn_));
      return TaskFuture<R>(std::move(State), this);
    }
    enqueue([State, Body = std::move(Fn_)]() mutable {
      runInline<R>(*State, std::move(Body));
    });
    return TaskFuture<R>(std::move(State), this);
  }

  /// Applies \p Body to every index in [0, N) using the pool, blocking
  /// until all are done. Exceptions from any index are rethrown (one of
  /// them) after all indices finished or were abandoned by their thrower.
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

  /// Runs one queued task if any is available; returns false when the
  /// queues were all empty. Used by futures to help while waiting.
  bool runOneTask();

private:
  template <typename R, typename Fn>
  static void runInline(detail::FutureState<R> &State, Fn Fn_) {
    try {
      if constexpr (std::is_void_v<R>) {
        Fn_();
        State.setValue();
      } else {
        State.setValue(Fn_());
      }
    } catch (...) {
      State.setError(std::current_exception());
    }
  }

  using Task = std::function<void()>;

  /// One worker's deque. The owner pushes/pops at the back (LIFO);
  /// thieves take from the front (FIFO) — the classic Chase-Lev shape,
  /// with a mutex instead of a lock-free deque (queue operations are
  /// vastly cheaper than the solver-bound tasks they carry).
  struct WorkerQueue {
    std::mutex M;
    std::deque<Task> Tasks;
  };

  void enqueue(Task T);
  bool popTask(Task &Out);
  void workerLoop(unsigned Index);
  void runTask(Task &T);

  obs::TraceSink *Trace = nullptr;
  const char *PoolName = "pool";
  std::vector<std::unique_ptr<WorkerQueue>> Queues;
  std::vector<std::thread> Workers;

  std::mutex SleepM;
  std::condition_variable SleepCv;
  bool Stopping = false;
  unsigned NextQueue = 0; ///< round-robin target for external submits

  template <typename T> friend class TaskFuture;
};

template <typename T> T TaskFuture<T>::get() {
  if (!State) {
    if constexpr (std::is_void_v<T>)
      return;
    else
      return T();
  }
  // Help run tasks while the result is pending (only meaningful on a
  // worker thread, but harmless — and deadlock-free — anywhere).
  if (Pool && Pool->currentWorker() >= 0) {
    for (;;) {
      {
        std::unique_lock<std::mutex> Lock(State->M);
        if (State->Ready)
          break;
      }
      if (!Pool->runOneTask())
        std::this_thread::yield();
    }
  }
  std::unique_lock<std::mutex> Lock(State->M);
  State->Cv.wait(Lock, [&] { return State->Ready; });
  if (State->Error)
    std::rethrow_exception(State->Error);
  if constexpr (!std::is_void_v<T>)
    return std::move(*reinterpret_cast<T *>(State->Storage));
}

} // namespace mix::rt

#endif // MIX_RUNTIME_THREADPOOL_H
