//===--- Protocol.cpp - Wire codec for the analysis service -----------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "service/Protocol.h"

#include "observe/Phase.h"
#include "support/StringExtras.h"

#include <cmath>
#include <functional>
#include <initializer_list>
#include <limits>
#include <set>

using namespace mix;
using namespace mix::service;

// === Encoding ================================================================

namespace {

/// Appends one "key": value member, comma-separating after the first.
class ObjectWriter {
public:
  std::string take() { return Out + "}"; }

  ObjectWriter &str(const char *Key, const std::string &V) {
    return raw(Key, "\"" + jsonEscape(V) + "\"");
  }
  ObjectWriter &num(const char *Key, uint64_t V) {
    return raw(Key, std::to_string(V));
  }
  ObjectWriter &boolean(const char *Key, bool V) {
    return raw(Key, V ? "true" : "false");
  }
  ObjectWriter &raw(const char *Key, const std::string &Json) {
    Out += First ? "{" : ", ";
    First = false;
    Out += "\"" + std::string(Key) + "\": " + Json;
    return *this;
  }

private:
  std::string Out;
  bool First = true;
};

const char *toolName(Tool T) {
  return T == Tool::MixCheck ? "mixcheck" : "mixy";
}

const char *formatName(Format F) {
  switch (F) {
  case Format::Text:
    return "text";
  case Format::Json:
    return "json";
  case Format::Sarif:
    return "sarif";
  }
  return "text";
}

} // namespace

std::string mix::service::encodeRequest(const AnalysisRequest &Req) {
  ObjectWriter W;
  W.num("version", (uint64_t)Req.Version).str("tool", toolName(Req.ToolKind));

  if (Req.HasSource)
    W.str("source", Req.Source);
  if (!Req.Corpus.empty())
    W.str("corpus", Req.Corpus);
  if (!Req.Path.empty())
    W.str("path", Req.Path);
  if (!Req.InputName.empty())
    W.str("input_name", Req.InputName);

  if (Req.OutputFormat != Format::Text)
    W.str("format", formatName(Req.OutputFormat));
  if (Req.Explain)
    W.boolean("explain", true);
  if (Req.Jobs != 1)
    W.num("jobs", Req.Jobs);
  if (Req.Solver.Backend != smt::SolverSpec().Backend)
    W.str("solver", Req.Solver.Backend);
  if (Req.Solver.Portfolio)
    W.boolean("solver_portfolio", true);
  if (Req.Trace)
    W.boolean("trace", true);
  if (!Req.CacheDir.empty())
    W.str("cache_dir", Req.CacheDir);
  if (Req.Incremental)
    W.boolean("incremental", true);
  if (Req.ExecMode != SymExecOptions::Engine::Ast)
    W.str("exec", "ir");

  // mixcheck knobs (wire values mirror the CLI flag values).
  if (Req.Symbolic)
    W.str("mode", "symbolic");
  if (Req.AutoPlace)
    W.boolean("auto_place", true);
  if (Req.PrintProgram)
    W.boolean("print_program", true);
  if (Req.Strategy != SymExecOptions::Strategy::Fork)
    W.str("strategy", "defer");
  if (Req.Havoc != SymExecOptions::HavocPolicy::FullMemory)
    W.str("havoc", "effects");
  if (Req.PreciseDeref)
    W.boolean("precise_deref", true);
  if (Req.AssumeComplete)
    W.boolean("assume_complete", true);
  if (Req.Explore != MixOptions::Exploration::AllPaths)
    W.str("explore", "concolic");
  if (!Req.Vars.empty()) {
    std::string Arr = "[";
    for (size_t I = 0; I != Req.Vars.size(); ++I) {
      if (I)
        Arr += ", ";
      Arr += "{\"name\": \"" + jsonEscape(Req.Vars[I].first) +
             "\", \"type\": \"" + jsonEscape(Req.Vars[I].second) + "\"}";
    }
    W.raw("vars", Arr + "]");
  }

  // mixy knobs.
  if (Req.Baseline)
    W.boolean("baseline", true);
  if (Req.Entry != "main")
    W.str("entry", Req.Entry);
  if (Req.StartSymbolic)
    W.str("start", "symbolic");
  if (Req.NoCache)
    W.boolean("no_cache", true);
  if (Req.NoAliasRestore)
    W.boolean("no_alias_restore", true);
  if (Req.WarnDerefs)
    W.boolean("warn_derefs", true);

  return W.take();
}

std::string mix::service::encodeResponse(const AnalysisResponse &Resp) {
  ObjectWriter W;
  W.num("version", (uint64_t)Resp.Version).num("exit", (uint64_t)Resp.Exit);

  if (!Resp.Payload.empty())
    W.str("payload", Resp.Payload);
  if (!Resp.ErrorText.empty())
    W.str("error_text", Resp.ErrorText);
  if (Resp.Warnings)
    W.num("warnings", Resp.Warnings);
  if (Resp.Errors)
    W.num("errors", Resp.Errors);
  if (Resp.Accepted)
    W.boolean("accepted", true);
  if (!Resp.ResultType.empty())
    W.str("result_type", Resp.ResultType);
  if (!Resp.AutoPlaceNote.empty())
    W.str("auto_place_note", Resp.AutoPlaceNote);
  if (!Resp.PrintedProgram.empty())
    W.str("printed_program", Resp.PrintedProgram);
  if (!Resp.SymCacheStats.empty())
    W.str("sym_cache_stats", Resp.SymCacheStats);
  if (!Resp.TypedCacheStats.empty())
    W.str("typed_cache_stats", Resp.TypedCacheStats);

  if (!Resp.Diagnostics.empty()) {
    std::string Arr = "[";
    for (size_t I = 0; I != Resp.Diagnostics.size(); ++I) {
      const DiagnosticSummary &D = Resp.Diagnostics[I];
      if (I)
        Arr += ", ";
      Arr += "{\"id\": \"" + jsonEscape(D.Id) + "\", \"severity\": \"" +
             jsonEscape(D.Severity) + "\", \"line\": " +
             std::to_string(D.Line) + ", \"column\": " +
             std::to_string(D.Column) + ", \"message\": \"" +
             jsonEscape(D.Message) + "\"}";
    }
    W.raw("diagnostics", Arr + "]");
  }

  if (!Resp.Metrics.empty()) {
    std::string Obj = "{";
    for (size_t I = 0; I != Resp.Metrics.size(); ++I) {
      if (I)
        Obj += ", ";
      Obj += "\"" + jsonEscape(Resp.Metrics[I].first) +
             "\": " + std::to_string(Resp.Metrics[I].second);
    }
    W.raw("metrics", Obj + "}");
  }

  if (!Resp.RequestId.empty())
    W.str("request_id", Resp.RequestId);
  if (Resp.TotalUs)
    W.num("total_us", Resp.TotalUs);
  {
    std::string Obj;
    for (unsigned I = 0; I != obs::NumPhases; ++I) {
      if (!Resp.PhaseUs[I])
        continue;
      Obj += Obj.empty() ? "{" : ", ";
      Obj += "\"" + std::string(obs::phaseName((obs::Phase)I)) +
             "\": " + std::to_string(Resp.PhaseUs[I]);
    }
    if (!Obj.empty())
      W.raw("phases", Obj + "}");
  }
  if (!Resp.Spans.empty()) {
    // Span args are pre-rendered JSON whose decode would need a value
    // re-renderer; the wire span tree carries the structural fields only
    // (the server-side global trace keeps the full events).
    std::string Arr = "[";
    for (size_t I = 0; I != Resp.Spans.size(); ++I) {
      const obs::TraceEvent &E = Resp.Spans[I];
      if (I)
        Arr += ", ";
      Arr += "{\"name\": \"" + jsonEscape(E.Name) + "\", \"cat\": \"" +
             jsonEscape(E.Cat) + "\"";
      if (E.Ph != obs::TracePhase::Complete) {
        Arr += ", \"ph\": \"";
        Arr += (char)E.Ph;
        Arr += "\"";
      }
      Arr += ", \"ts\": " + std::to_string(E.Ts);
      if (E.Dur)
        Arr += ", \"dur\": " + std::to_string(E.Dur);
      if (E.Tid)
        Arr += ", \"tid\": " + std::to_string(E.Tid);
      Arr += "}";
    }
    W.raw("spans", Arr + "]");
  }

  if (Resp.FromCache)
    W.boolean("from_cache", true);
  if (Resp.Deduped)
    W.boolean("deduped", true);

  return W.take();
}

// === Decoding ================================================================

namespace {

/// Strict field walk: every member must name a known field of the right
/// type; the first violation aborts with an error naming the field.
class Decoder {
public:
  Decoder(const json::Value &V, std::string &Error) : V(V), Error(Error) {}

  bool str(const char *Name, std::string &Out) {
    return field(Name, [&](const json::Value &F) {
      if (!F.isString())
        return fail(Name, "a string");
      Out = F.Str;
      return true;
    });
  }

  bool boolean(const char *Name, bool &Out) {
    return field(Name, [&](const json::Value &F) {
      if (!F.isBool())
        return fail(Name, "a boolean");
      Out = F.B;
      return true;
    });
  }

  template <typename IntT> bool num(const char *Name, IntT &Out) {
    return field(Name, [&](const json::Value &F) {
      // 2^digits is exactly representable as a double, so this bound also
      // rejects values the double-to-IntT cast could not represent (that
      // conversion would be undefined behavior, not saturation).
      if (!F.isNumber() || F.Num != std::floor(F.Num) || F.Num < 0 ||
          F.Num >= std::ldexp(1.0, std::numeric_limits<IntT>::digits))
        return fail(Name, "a non-negative integer");
      Out = (IntT)F.Num;
      return true;
    });
  }

  /// One-of-strings field, e.g. mode("format", {{"text", ...}, ...}).
  bool keyword(const char *Name,
               std::initializer_list<std::pair<const char *,
                                               std::function<void()>>> Cases) {
    return field(Name, [&](const json::Value &F) {
      if (F.isString())
        for (const auto &[Word, Apply] : Cases)
          if (F.Str == Word) {
            Apply();
            return true;
          }
      std::string Expected;
      for (const auto &[Word, Apply] : Cases)
        Expected += (Expected.empty() ? "" : "|") + std::string(Word);
      return fail(Name, "one of " + Expected);
    });
  }

  bool raw(const char *Name,
           const std::function<bool(const json::Value &)> &Apply) {
    return field(Name, Apply);
  }

  /// After all known fields are declared: reject anything left over.
  bool finish(const char *What) {
    if (!Ok)
      return false;
    for (const auto &[Key, F] : V.Fields)
      if (!Known.count(Key)) {
        Error = std::string("unknown ") + What + " field '" + Key + "'";
        return false;
      }
    return true;
  }

private:
  bool field(const char *Name,
             const std::function<bool(const json::Value &)> &Apply) {
    if (!Ok)
      return false;
    Known.insert(Name);
    if (!V.has(Name))
      return true;
    Ok = Apply(V[Name]);
    return Ok;
  }

  bool fail(const char *Name, const std::string &Expected) {
    Error = "field '" + std::string(Name) + "' must be " + Expected;
    return false;
  }

  const json::Value &V;
  std::string &Error;
  std::set<std::string> Known;
  bool Ok = true;
};

bool checkVersion(const json::Value &V, std::string &Error) {
  if (!V.isObject()) {
    Error = "expected a JSON object";
    return false;
  }
  if (!V.has("version")) {
    Error = "missing 'version'";
    return false;
  }
  const json::Value &Ver = V["version"];
  if (!Ver.isNumber() || (int)Ver.Num != ProtocolVersion) {
    Error = "unsupported protocol version (this build speaks version " +
            std::to_string(ProtocolVersion) + ")";
    return false;
  }
  return true;
}

} // namespace

bool mix::service::decodeRequest(const json::Value &V, AnalysisRequest &Out,
                                 std::string &Error) {
  if (!checkVersion(V, Error))
    return false;
  Out = AnalysisRequest();

  Decoder D(V, Error);
  int Version = ProtocolVersion;
  D.num("version", Version);

  if (!V.has("tool")) {
    Error = "missing 'tool'";
    return false;
  }
  D.keyword("tool", {{"mixcheck", [&] { Out.ToolKind = Tool::MixCheck; }},
                     {"mixy", [&] { Out.ToolKind = Tool::Mixy; }}});

  D.raw("source", [&](const json::Value &F) {
    if (!F.isString()) {
      Error = "field 'source' must be a string";
      return false;
    }
    Out.Source = F.Str;
    Out.HasSource = true;
    return true;
  });
  D.str("corpus", Out.Corpus);
  D.str("path", Out.Path);
  D.str("input_name", Out.InputName);

  D.keyword("format", {{"text", [&] { Out.OutputFormat = Format::Text; }},
                       {"json", [&] { Out.OutputFormat = Format::Json; }},
                       {"sarif", [&] { Out.OutputFormat = Format::Sarif; }}});
  D.boolean("explain", Out.Explain);
  D.num("jobs", Out.Jobs);
  D.str("solver", Out.Solver.Backend);
  D.boolean("solver_portfolio", Out.Solver.Portfolio);
  D.boolean("trace", Out.Trace);
  D.str("cache_dir", Out.CacheDir);
  D.boolean("incremental", Out.Incremental);
  D.keyword("exec",
            {{"ast", [&] { Out.ExecMode = SymExecOptions::Engine::Ast; }},
             {"ir", [&] { Out.ExecMode = SymExecOptions::Engine::Ir; }}});

  D.keyword("mode", {{"typed", [&] { Out.Symbolic = false; }},
                     {"symbolic", [&] { Out.Symbolic = true; }}});
  D.boolean("auto_place", Out.AutoPlace);
  D.boolean("print_program", Out.PrintProgram);
  D.keyword("strategy",
            {{"fork", [&] { Out.Strategy = SymExecOptions::Strategy::Fork; }},
             {"defer",
              [&] { Out.Strategy = SymExecOptions::Strategy::Defer; }}});
  D.keyword(
      "havoc",
      {{"full", [&] { Out.Havoc = SymExecOptions::HavocPolicy::FullMemory; }},
       {"effects",
        [&] { Out.Havoc = SymExecOptions::HavocPolicy::WriteEffects; }}});
  D.boolean("precise_deref", Out.PreciseDeref);
  D.boolean("assume_complete", Out.AssumeComplete);
  D.keyword("explore",
            {{"all", [&] { Out.Explore = MixOptions::Exploration::AllPaths; }},
             {"concolic",
              [&] { Out.Explore = MixOptions::Exploration::Concolic; }}});
  D.raw("vars", [&](const json::Value &F) {
    if (!F.isArray()) {
      Error = "field 'vars' must be an array";
      return false;
    }
    for (size_t I = 0; I != F.size(); ++I) {
      const json::Value &E = F[I];
      if (!E.isObject() || !E["name"].isString() || !E["type"].isString()) {
        Error = "field 'vars' entries must be {\"name\", \"type\"} objects";
        return false;
      }
      Out.Vars.emplace_back(E["name"].Str, E["type"].Str);
    }
    return true;
  });

  D.boolean("baseline", Out.Baseline);
  D.raw("entry", [&](const json::Value &F) {
    if (!F.isString() || F.Str.empty()) {
      Error = "field 'entry' must be a non-empty string";
      return false;
    }
    Out.Entry = F.Str;
    return true;
  });
  D.keyword("start", {{"typed", [&] { Out.StartSymbolic = false; }},
                      {"symbolic", [&] { Out.StartSymbolic = true; }}});
  D.boolean("no_cache", Out.NoCache);
  D.boolean("no_alias_restore", Out.NoAliasRestore);
  D.boolean("warn_derefs", Out.WarnDerefs);

  return D.finish("request");
}

bool mix::service::decodeRequest(const std::string &Text, AnalysisRequest &Out,
                                 std::string &Error) {
  json::Value V;
  if (!json::parseDocument(Text, V, &Error))
    return false;
  return decodeRequest(V, Out, Error);
}

bool mix::service::decodeResponse(const json::Value &V, AnalysisResponse &Out,
                                  std::string &Error) {
  if (!checkVersion(V, Error))
    return false;
  Out = AnalysisResponse();

  Decoder D(V, Error);
  int Version = ProtocolVersion;
  D.num("version", Version);
  D.num("exit", Out.Exit);
  D.str("payload", Out.Payload);
  D.str("error_text", Out.ErrorText);
  D.num("warnings", Out.Warnings);
  D.num("errors", Out.Errors);
  D.boolean("accepted", Out.Accepted);
  D.str("result_type", Out.ResultType);
  D.str("auto_place_note", Out.AutoPlaceNote);
  D.str("printed_program", Out.PrintedProgram);
  D.str("sym_cache_stats", Out.SymCacheStats);
  D.str("typed_cache_stats", Out.TypedCacheStats);

  D.raw("diagnostics", [&](const json::Value &F) {
    if (!F.isArray()) {
      Error = "field 'diagnostics' must be an array";
      return false;
    }
    for (size_t I = 0; I != F.size(); ++I) {
      const json::Value &E = F[I];
      if (!E.isObject() || !E["id"].isString() || !E["severity"].isString() ||
          !E["line"].isNumber() || !E["column"].isNumber() ||
          !E["message"].isString()) {
        Error = "field 'diagnostics' entries are malformed";
        return false;
      }
      DiagnosticSummary S;
      S.Id = E["id"].Str;
      S.Severity = E["severity"].Str;
      S.Line = (unsigned)E["line"].Num;
      S.Column = (unsigned)E["column"].Num;
      S.Message = E["message"].Str;
      Out.Diagnostics.push_back(std::move(S));
    }
    return true;
  });

  D.raw("metrics", [&](const json::Value &F) {
    if (!F.isObject()) {
      Error = "field 'metrics' must be an object";
      return false;
    }
    for (const auto &[Name, MV] : F.Fields) {
      if (!MV.isNumber()) {
        Error = "field 'metrics' values must be numbers";
        return false;
      }
      Out.Metrics.emplace_back(Name, (uint64_t)MV.Num);
    }
    return true;
  });

  D.str("request_id", Out.RequestId);
  D.num("total_us", Out.TotalUs);

  D.raw("phases", [&](const json::Value &F) {
    if (!F.isObject()) {
      Error = "field 'phases' must be an object";
      return false;
    }
    for (const auto &[Name, PV] : F.Fields) {
      unsigned I = 0;
      while (I != obs::NumPhases && Name != obs::phaseName((obs::Phase)I))
        ++I;
      if (I == obs::NumPhases) {
        Error = "field 'phases' has unknown phase '" + Name + "'";
        return false;
      }
      if (!PV.isNumber() || PV.Num != std::floor(PV.Num) || PV.Num < 0) {
        Error = "field 'phases' values must be non-negative integers";
        return false;
      }
      Out.PhaseUs[I] = (uint64_t)PV.Num;
    }
    return true;
  });

  D.raw("spans", [&](const json::Value &F) {
    if (!F.isArray()) {
      Error = "field 'spans' must be an array";
      return false;
    }
    for (size_t I = 0; I != F.size(); ++I) {
      const json::Value &E = F[I];
      if (!E.isObject() || !E["name"].isString() || !E["cat"].isString() ||
          !E["ts"].isNumber()) {
        Error = "field 'spans' entries are malformed";
        return false;
      }
      obs::TraceEvent Ev;
      Ev.Name = E["name"].Str;
      Ev.Cat = E["cat"].Str;
      Ev.Ts = (uint64_t)E["ts"].Num;
      if (E.has("ph")) {
        const json::Value &P = E["ph"];
        if (!P.isString() || P.Str.size() != 1 ||
            (P.Str[0] != 'X' && P.Str[0] != 'i' && P.Str[0] != 'M')) {
          Error = "field 'spans' entries have a malformed 'ph'";
          return false;
        }
        Ev.Ph = (obs::TracePhase)P.Str[0];
      }
      if (E.has("dur")) {
        if (!E["dur"].isNumber()) {
          Error = "field 'spans' entries are malformed";
          return false;
        }
        Ev.Dur = (uint64_t)E["dur"].Num;
      }
      if (E.has("tid")) {
        if (!E["tid"].isNumber()) {
          Error = "field 'spans' entries are malformed";
          return false;
        }
        Ev.Tid = (unsigned)E["tid"].Num;
      }
      Out.Spans.push_back(std::move(Ev));
    }
    return true;
  });

  D.boolean("from_cache", Out.FromCache);
  D.boolean("deduped", Out.Deduped);

  return D.finish("response");
}

bool mix::service::decodeResponse(const std::string &Text,
                                  AnalysisResponse &Out, std::string &Error) {
  json::Value V;
  if (!json::parseDocument(Text, V, &Error))
    return false;
  return decodeResponse(V, Out, Error);
}

// === JSON-RPC envelopes ======================================================

std::string mix::service::encodeRpcId(const json::Value &Id) {
  if (Id.isString())
    return "\"" + jsonEscape(Id.Str) + "\"";
  if (Id.isNumber()) {
    // Ids are integral in practice; render without a trailing ".000000".
    if (Id.Num == std::floor(Id.Num))
      return std::to_string((long long)Id.Num);
    return std::to_string(Id.Num);
  }
  return "null";
}

std::string mix::service::rpcResult(const std::string &Id,
                                    const std::string &ResultJson) {
  return "{\"jsonrpc\": \"2.0\", \"id\": " + Id + ", \"result\": " +
         ResultJson + "}";
}

std::string mix::service::rpcError(const std::string &Id, int Code,
                                   const std::string &Message) {
  return "{\"jsonrpc\": \"2.0\", \"id\": " + Id + ", \"error\": {\"code\": " +
         std::to_string(Code) + ", \"message\": \"" + jsonEscape(Message) +
         "\"}}";
}

std::string mix::service::rpcNotification(const std::string &Method,
                                          const std::string &ParamsJson) {
  return "{\"jsonrpc\": \"2.0\", \"method\": \"" + jsonEscape(Method) +
         "\", \"params\": " + ParamsJson + "}";
}
