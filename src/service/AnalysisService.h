//===--- AnalysisService.h - Analysis as a library API ----------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Run an analysis" as a first-class library call. This layer carves the
/// request path out of the two CLIs: a versioned AnalysisRequest names the
/// tool, the input, and every semantic knob the CLIs expose; run() executes
/// it against the paper's analyses and returns an AnalysisResponse with the
/// rendered diagnostics payload, structured diagnostics, per-request metric
/// deltas, and the exit classification — it never writes to stdout/stderr.
///
/// Two consumers sit on top:
///  - mixcheck/mixyc stay thin clients: parse flags, build a request, call
///    run(), and copy the response pieces to the historical streams in the
///    historical order, so their output is byte-identical to the pre-service
///    tools (ServiceTest and the CI daemon smoke enforce this).
///  - mixyd keeps one AnalysisService hot and calls serve(), which adds
///    what a long-lived server needs: in-flight deduplication by request
///    key, a bounded response cache (a warm repeat answers without
///    re-running the fixpoint — its metric deltas are empty), and persist
///    sessions (on-disk or in-memory) kept warm across requests.
///
/// Payload contract (the byte-identity anchor): Payload holds exactly what
/// the CLI writes for the chosen format — text renders each diagnostic per
/// line (with --explain evidence when requested) as the CLI sends to
/// stderr; json is DiagnosticEngine::renderJSON(sorted) plus "\n"; sarif is
/// the SARIF 2.1.0 log plus "\n". Everything else the CLIs print (stats,
/// auto-place notes, the final ok/rejected/warning-count line) is carried
/// as separate structured fields so clients control stream interleaving.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SERVICE_ANALYSISSERVICE_H
#define MIX_SERVICE_ANALYSISSERVICE_H

#include "mix/MixChecker.h"
#include "observe/Metrics.h"
#include "observe/Phase.h"
#include "observe/Trace.h"
#include "persist/PersistSession.h"
#include "provenance/Provenance.h"
#include "solver/SolverFactory.h"
#include "support/Diagnostics.h"
#include "symexec/SymExecutor.h"

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mix::service {

/// Version of the request/response model (and of the mixyd wire protocol,
/// which serializes exactly these structs). Bump on any incompatible
/// change; decodeRequest rejects other versions.
inline constexpr int ProtocolVersion = 1;

enum class Tool { MixCheck, Mixy };
enum class Format { Text, Json, Sarif };

/// One analysis to run. Plain data: everything the two CLIs can express
/// (minus their output plumbing), so a request built from argv and one
/// decoded from JSON-RPC take the identical path through the engines.
struct AnalysisRequest {
  int Version = ProtocolVersion;
  Tool ToolKind = Tool::Mixy;

  /// Input, one of three shapes (first non-empty wins in this order):
  /// inline source text (Source with HasSource), a built-in corpus spec
  /// ("case1".."case4" / "vsftpd", optionally ":baseline"), or a file
  /// path read when the request runs.
  std::string Source;
  bool HasSource = false;
  std::string Corpus;
  std::string Path;
  /// Artifact name cited by SARIF output; defaults to the path or
  /// "@corpus" spec when empty (stdin/inline stays unnamed).
  std::string InputName;

  Format OutputFormat = Format::Text;
  bool Explain = false;
  unsigned Jobs = 1;
  smt::SolverSpec Solver;
  /// Record a trace of this request into the service's trace sink.
  bool Trace = false;
  /// Persistent cache directory; empty uses no on-disk cache (the daemon
  /// may still attach a warm in-memory session, which cannot change
  /// output — see DESIGN.md section 15).
  std::string CacheDir;
  bool Incremental = false;

  // --- mixcheck knobs ---
  bool Symbolic = false;
  bool AutoPlace = false;
  bool PrintProgram = false;
  SymExecOptions::Strategy Strategy = SymExecOptions::Strategy::Fork;
  SymExecOptions::HavocPolicy Havoc = SymExecOptions::HavocPolicy::FullMemory;
  /// Which execution engine runs symbolic code (--exec=ast|ir).
  /// Diagnostics are byte-identical between engines (enforced by
  /// IrDiffTest); mixy's mini-C executor has no IR lowering yet, so for
  /// Tool::Mixy the value is accepted and recorded but the AST engine
  /// runs either way.
  SymExecOptions::Engine ExecMode = SymExecOptions::Engine::Ast;
  bool PreciseDeref = false;
  bool AssumeComplete = false;
  MixOptions::Exploration Explore = MixOptions::Exploration::AllPaths;
  /// Free variables for Gamma: (name, type spec like "int ref").
  std::vector<std::pair<std::string, std::string>> Vars;

  // --- mixy knobs ---
  bool Baseline = false;
  std::string Entry = "main";
  bool StartSymbolic = false;
  bool NoCache = false;
  bool NoAliasRestore = false;
  bool WarnDerefs = false;
};

/// One top-level diagnostic (or attached note) in render order — the
/// structured twin of the payload, which the daemon streams incrementally.
struct DiagnosticSummary {
  std::string Id;       ///< "MIX401"
  std::string Severity; ///< "error" | "warning" | "note"
  unsigned Line = 0;
  unsigned Column = 0;
  std::string Message;
};

/// What running a request produced. Exit follows the CLI contract
/// (0 clean, 1 findings, 2 usage/parse error).
struct AnalysisResponse {
  int Version = ProtocolVersion;
  int Exit = 0;

  /// The diagnostics bytes for the requested format (see file comment).
  std::string Payload;
  /// Usage-error text without the tool prefix (e.g. "bad type 'intt' for
  /// variable x", or the input-resolution failure); empty when none. The
  /// CLIs print "<tool>: <ErrorText>" to stderr.
  std::string ErrorText;

  unsigned Warnings = 0; ///< mixyc's "N warning(s)" count
  unsigned Errors = 0;

  // mixcheck results.
  bool Accepted = false;
  std::string ResultType; ///< accepted type's str(), empty on rejection
  /// "auto-placement inserted N symbolic block(s) in M refinement(s)\n"
  /// when --auto-place changed the program, else empty.
  std::string AutoPlaceNote;
  /// printExpr(program) + "\n" when PrintProgram, else empty.
  std::string PrintedProgram;

  // mixy block-cache summaries (Jobs > 1 stats lines), else empty.
  std::string SymCacheStats;
  std::string TypedCacheStats;

  /// Structured diagnostics in sorted render order (notes follow their
  /// parent), mirroring the sorted JSON/SARIF payload order.
  std::vector<DiagnosticSummary> Diagnostics;

  /// Name-sorted metric deltas this request added ("engine.*",
  /// "persist.*", "solver.*", ...). With ServiceConfig::PerRequestMetrics
  /// the engine-side counters are exact per request (each request runs
  /// against its own registry); the shared "persist.*" counters are exact
  /// when requests are sequential and approximate under concurrency.
  /// Empty on a response-cache hit — the observable proof that no engine
  /// work ran.
  std::vector<std::pair<std::string, uint64_t>> Metrics;

  bool FromCache = false; ///< served from the response cache (serve())
  bool Deduped = false;   ///< coalesced onto an identical in-flight run

  // --- request telemetry (ServiceConfig::RequestTelemetry) ---

  /// Stable per-request id ("r-17"); empty when telemetry is off. Cache
  /// and dedup hits get their own fresh id.
  std::string RequestId;
  /// End-to-end wall time of the execution, microseconds; 0 when
  /// telemetry is off or the response came from the cache.
  uint64_t TotalUs = 0;
  /// Inclusive per-phase wall microseconds, indexed by obs::Phase (the
  /// phase breakdown: typecheck contains fixpoint contains block-exec
  /// contains solver). All zero when telemetry is off.
  std::array<uint64_t, obs::NumPhases> PhaseUs{};
  /// This request's span tree (telemetry on and Trace requested), sorted
  /// by (ts, tid, name); empty otherwise.
  std::vector<obs::TraceEvent> Spans;
};

/// Service-level behavior switches.
struct ServiceConfig {
  /// Keep persist sessions warm across requests (daemon mode): on-disk
  /// sessions stay open (reopened when another writer bumps the cache
  /// generation), and requests without a CacheDir share in-memory
  /// sessions so summaries and solver verdicts survive between requests.
  bool KeepWarm = false;
  /// Run each request against a private metrics registry so its response
  /// carries exact engine/solver deltas even under concurrency (daemon
  /// mode). Off, every request records into metrics() — what the CLIs
  /// need for --stats and --metrics.
  bool PerRequestMetrics = false;
  /// serve() response-cache capacity (FIFO eviction); 0 disables caching.
  size_t ResponseCacheCap = 128;
  /// Attach a RequestTelemetry context to every executed request: stable
  /// request ids, a phase breakdown in the response, per-phase and
  /// whole-request histograms in metrics(), the slow-request log, and —
  /// when the request also sets Trace — a request-scoped span tree.
  /// Costs nothing on engine hot paths when off (null-handle discipline).
  bool RequestTelemetry = false;
  /// Capacity of the slow-request log (the slowest requests by wall
  /// time); 0 disables it.
  size_t SlowLogCap = 32;
};

/// One slow-request log entry: enough to answer "which request was slow,
/// and where did its time go" without a trace.
struct SlowRequest {
  std::string Id;
  uint64_t Key = 0; ///< requestKey() of the request
  uint64_t TotalUs = 0;
  std::array<uint64_t, obs::NumPhases> PhaseUs{};
  int Exit = 0;
  unsigned Warnings = 0;
  unsigned Errors = 0;
};

/// The service: owns the observability surfaces and warm state, turns
/// AnalysisRequests into AnalysisResponses. Thread-safe: serve() may be
/// called from many threads (mixyd does); requests that share a persist
/// session serialize on it, everything else runs concurrently.
class AnalysisService {
public:
  explicit AnalysisService(ServiceConfig Config = ServiceConfig());
  ~AnalysisService();

  /// The registry every request (in CLI mode) and all shared stores
  /// report into; --stats and --metrics render from it.
  obs::MetricsRegistry &metrics() { return Registry; }

  /// The trace sink requests with Trace=true record into.
  obs::TraceSink &traceSink() { return Sink; }

  /// The provenance sink used for requests that render evidence; counts
  /// into metrics() (attached lazily, once).
  prov::ProvenanceSink *provenanceSink();

  /// Turns on per-request telemetry after construction (the driver does
  /// this when --stats or --profile asks for a phase breakdown). Call
  /// before the first request.
  void enableRequestTelemetry() { Config.RequestTelemetry = true; }

  /// Whether requests get telemetry contexts.
  bool requestTelemetryEnabled() const { return Config.RequestTelemetry; }

  /// The slowest requests seen so far, slowest first (bounded by
  /// ServiceConfig::SlowLogCap).
  std::vector<SlowRequest> slowRequests() const;

  /// Executes the request unconditionally (no dedup, no response cache;
  /// warm sessions still apply under KeepWarm). What the CLIs call.
  AnalysisResponse run(const AnalysisRequest &Req);

  /// The daemon entry point: answers identical requests from the response
  /// cache, coalesces identical in-flight requests onto one execution,
  /// otherwise runs. Identity is requestKey() — resolved source bytes
  /// plus every semantic knob, excluding Jobs (results are
  /// jobs-invariant by the PR-1 determinism contract).
  AnalysisResponse serve(const AnalysisRequest &Req);

  /// A client reports that \p Path changed: cached responses that were
  /// computed from that path are dropped and every warm session forgets
  /// its block summaries and manifest (solver verdicts survive — they
  /// are keyed by the formula, not the file). Correctness does not
  /// depend on this call: path inputs are re-read and content-hashed per
  /// request; this reclaims warm state eagerly.
  void fileChanged(const std::string &Path);

  /// Saves every open persist session (no-op for in-memory ones).
  /// Returns false with \p Error set on the first failing session; true
  /// when there is nothing to save.
  bool save(std::string *Error = nullptr);

  /// Resolves the request input to source text (inline > corpus > path).
  /// Returns false with \p Error set ("unknown corpus 'x'", "cannot read
  /// 'p'", "no input") — ErrorText shape, no tool prefix.
  static bool resolveInput(const AnalysisRequest &Req, std::string &SourceOut,
                           std::string &Error);

  /// The dependency-closure identity serve() dedups and caches by:
  /// a stable digest of the resolved source bytes and every
  /// output-affecting request field (format, explain, knobs, solver,
  /// cache configuration) — excluding Jobs.
  uint64_t requestKey(const AnalysisRequest &Req,
                      const std::string &Source) const;

  /// Renders \p Diags exactly as the CLIs do for \p F (see the payload
  /// contract above). Exposed so clients and tests can cross-check
  /// payloads against a DiagnosticEngine they ran themselves.
  static std::string renderPayload(const DiagnosticEngine &Diags, Format F,
                                   bool Explain, const std::string &ToolName,
                                   const std::string &InputName);

private:
  struct SessionEntry {
    /// Shared so a request keeps its session alive even if a concurrent
    /// reopen (externallyModified) swaps the map entry underneath it.
    std::shared_ptr<persist::PersistSession> Session;
    /// Present when concurrent requests may share the session and it has
    /// state that is not internally synchronized (the mixy manifest);
    /// such requests serialize on it.
    std::unique_ptr<std::mutex> Lock;
    std::string Path; ///< cache directory ("" for in-memory)
  };
  struct Pending {
    std::mutex M;
    std::condition_variable CV;
    bool Done = false;
    AnalysisResponse Response;
  };

  AnalysisResponse execute(const AnalysisRequest &Req,
                           const std::string &Source);
  void runMixCheck(const AnalysisRequest &Req, const std::string &Source,
                   DiagnosticEngine &Diags, obs::MetricsRegistry &Reg,
                   obs::RequestTelemetry *T, AnalysisResponse &Resp);
  void runMixy(const AnalysisRequest &Req, const std::string &Source,
               DiagnosticEngine &Diags, obs::MetricsRegistry &Reg,
               obs::RequestTelemetry *T, AnalysisResponse &Resp);

  /// Fresh "r-<n>" id (telemetry mode only).
  std::string nextRequestId() {
    return "r-" + std::to_string(
                      NextRequestId.fetch_add(1, std::memory_order_relaxed) + 1);
  }

  /// Records a finished request into the bounded slow-request log.
  void noteSlowRequest(const AnalysisResponse &Resp, uint64_t Key);

  /// Finds or opens the persist session for this request (null when the
  /// request gets none), emitting the MIX502 degradation note exactly as
  /// the CLI driver did. When the session is shared and lockable, \p
  /// SessionLock is locked before return.
  std::shared_ptr<persist::PersistSession>
  openSession(const AnalysisRequest &Req, bool Incremental,
              uint64_t Fingerprint, DiagnosticEngine &Diags,
              std::unique_lock<std::mutex> &SessionLock);

  void fillStructured(const DiagnosticEngine &Diags, AnalysisResponse &Resp);

  ServiceConfig Config;
  obs::MetricsRegistry Registry;
  obs::TraceSink Sink;
  prov::ProvenanceSink Prov;
  bool ProvAttached = false;

  std::atomic<uint64_t> NextRequestId{0};

  std::mutex M; ///< guards everything below (cold path only)
  std::vector<SlowRequest> SlowLog; ///< sorted slowest-first, bounded
  std::map<std::string, SessionEntry> Sessions;
  std::map<uint64_t, std::shared_ptr<Pending>> InFlight;
  std::map<uint64_t, AnalysisResponse> ResponseCache;
  std::deque<uint64_t> ResponseOrder; ///< FIFO eviction order
  std::map<uint64_t, std::string> ResponsePath; ///< key -> source path
};

} // namespace mix::service

#endif // MIX_SERVICE_ANALYSISSERVICE_H
