//===--- AnalysisService.cpp - Analysis as a library API --------------------===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//

#include "service/AnalysisService.h"

#include "cfront/CParser.h"
#include "lang/AstPrinter.h"
#include "lang/Parser.h"
#include "mix/AutoPlacement.h"
#include "mixy/Mixy.h"
#include "mixy/VsftpdMini.h"
#include "provenance/Sarif.h"
#include "qual/QualInference.h"
#include "support/Hash.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

using namespace mix;
using namespace mix::service;

//===----------------------------------------------------------------------===//
// Input resolution
//===----------------------------------------------------------------------===//

namespace {

/// The built-in corpus behind '@' specs ("case1".."case4" and "vsftpd",
/// with an optional ":baseline" suffix for the un-annotated variants).
/// The single implementation — mixyc resolves through this too.
bool resolveCorpusSpec(const std::string &Spec, std::string &SourceOut) {
  bool Annotated = Spec.find(":baseline") == std::string::npos;
  std::string Corpus = Spec.substr(0, Spec.find(':'));
  if (Corpus == "vsftpd") {
    SourceOut = c::corpus::vsftpdFull(Annotated);
    return true;
  }
  if (Corpus.size() == 5 && Corpus.rfind("case", 0) == 0 && Corpus[4] >= '1' &&
      Corpus[4] <= '4') {
    SourceOut = c::corpus::vsftpdCase(Corpus[4] - '0', Annotated);
    return true;
  }
  return false;
}

/// Parses a type spelled in a request, e.g. "int ref ref" (the --var
/// grammar mixcheck has always accepted).
const Type *parseTypeSpec(TypeContext &Types, const std::string &Spec) {
  std::istringstream In(Spec);
  std::string Word;
  if (!(In >> Word))
    return nullptr;
  const Type *T = nullptr;
  if (Word == "int")
    T = Types.intType();
  else if (Word == "bool")
    T = Types.boolType();
  else
    return nullptr;
  while (In >> Word) {
    if (Word != "ref")
      return nullptr;
    T = Types.refType(T);
  }
  return T;
}

const char *severityName(DiagKind K) {
  switch (K) {
  case DiagKind::Error:
    return "error";
  case DiagKind::Warning:
    return "warning";
  case DiagKind::Note:
    return "note";
  }
  return "?";
}

} // namespace

bool AnalysisService::resolveInput(const AnalysisRequest &Req,
                                   std::string &SourceOut,
                                   std::string &Error) {
  if (Req.HasSource) {
    SourceOut = Req.Source;
    return true;
  }
  if (!Req.Corpus.empty()) {
    if (resolveCorpusSpec(Req.Corpus, SourceOut))
      return true;
    Error = "unknown corpus '" + Req.Corpus + "'";
    return false;
  }
  if (!Req.Path.empty()) {
    std::ifstream In(Req.Path);
    if (!In) {
      Error = "cannot read '" + Req.Path + "'";
      return false;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    SourceOut = Buf.str();
    return true;
  }
  Error = "no input";
  return false;
}

//===----------------------------------------------------------------------===//
// Request identity
//===----------------------------------------------------------------------===//

uint64_t AnalysisService::requestKey(const AnalysisRequest &Req,
                                     const std::string &Source) const {
  StableHasher H;
  H.u32((uint32_t)Req.Version);
  H.u8(Req.ToolKind == Tool::MixCheck ? 0 : 1);
  // The resolved content, not the spelling of the input: a path request
  // and an inline request for the same bytes are the same analysis, and a
  // path whose file changed is a different one (so staleness is
  // structurally impossible, with or without fileChanged()).
  H.str(Source);
  H.str(Req.InputName);
  H.u8((uint8_t)Req.OutputFormat);
  H.boolean(Req.Explain);
  H.boolean(Req.Trace);
  H.str(Req.Solver.Backend);
  H.boolean(Req.Solver.Portfolio);
  H.str(Req.CacheDir);
  H.boolean(Req.Incremental);
  // Jobs is deliberately excluded: results are jobs-invariant.
  H.boolean(Req.Symbolic).boolean(Req.AutoPlace).boolean(Req.PrintProgram);
  H.u8((uint8_t)Req.Strategy).u8((uint8_t)Req.Havoc);
  H.u8((uint8_t)Req.ExecMode);
  H.boolean(Req.PreciseDeref).boolean(Req.AssumeComplete);
  H.u8((uint8_t)Req.Explore);
  H.u64(Req.Vars.size());
  for (const auto &[Name, Spec] : Req.Vars)
    H.str(Name).str(Spec);
  H.boolean(Req.Baseline);
  H.str(Req.Entry);
  H.boolean(Req.StartSymbolic).boolean(Req.NoCache);
  H.boolean(Req.NoAliasRestore).boolean(Req.WarnDerefs);
  return H.digest();
}

//===----------------------------------------------------------------------===//
// Rendering
//===----------------------------------------------------------------------===//

std::string AnalysisService::renderPayload(const DiagnosticEngine &Diags,
                                           Format F, bool Explain,
                                           const std::string &ToolName,
                                           const std::string &InputName) {
  switch (F) {
  case Format::Sarif: {
    prov::SarifOptions SO;
    SO.ToolName = ToolName;
    SO.ArtifactUri = InputName;
    return prov::renderSarif(Diags, SO) + "\n";
  }
  case Format::Json:
    return Diags.renderJSON(/*Sorted=*/true) + "\n";
  case Format::Text:
    return Explain ? prov::renderExplainText(Diags) : Diags.str();
  }
  return std::string();
}

void AnalysisService::fillStructured(const DiagnosticEngine &Diags,
                                     AnalysisResponse &Resp) {
  const std::vector<Diagnostic> &All = Diags.diagnostics();
  auto push = [&](size_t I) {
    const Diagnostic &D = All[I];
    DiagnosticSummary S;
    S.Id = diagIdString(D.ID);
    S.Severity = severityName(D.Kind);
    S.Line = D.Loc.Line;
    S.Column = D.Loc.Column;
    S.Message = D.Message;
    Resp.Diagnostics.push_back(std::move(S));
  };
  for (size_t I : Diags.sortedTopLevelIndices()) {
    push(I);
    for (size_t N : Diags.notesFor(I))
      push(N);
  }
  Resp.Errors = Diags.errorCount();
}

//===----------------------------------------------------------------------===//
// Sessions
//===----------------------------------------------------------------------===//

AnalysisService::AnalysisService(ServiceConfig C) : Config(C) {}
AnalysisService::~AnalysisService() = default;

prov::ProvenanceSink *AnalysisService::provenanceSink() {
  std::lock_guard<std::mutex> Lock(M);
  if (!ProvAttached) {
    Prov.attachMetrics(Registry);
    ProvAttached = true;
  }
  return &Prov;
}

std::shared_ptr<mix::persist::PersistSession>
AnalysisService::openSession(const AnalysisRequest &Req, bool Incremental,
                             uint64_t Fingerprint, DiagnosticEngine &Diags,
                             std::unique_lock<std::mutex> &SessionLock) {
  bool InMemory = Req.CacheDir.empty();
  // CLI parity: without --cache-dir (and without a warm daemon) there is
  // no session at all.
  if (InMemory && !Config.KeepWarm)
    return nullptr;

  std::string Key = (InMemory ? std::string("<memory>") : Req.CacheDir) + "|" +
                    (Incremental ? "1" : "0") + "|" +
                    std::to_string(Fingerprint);

  std::shared_ptr<persist::PersistSession> Session;
  std::mutex *SharedLock = nullptr;
  {
    std::lock_guard<std::mutex> Lock(M);
    SessionEntry &Entry = Sessions[Key];
    // A warm on-disk session is only reusable while this process is still
    // the directory's latest writer; when some other process published
    // into it (generation moved), drop the loaded state and reload rather
    // than replaying a stale manifest. Requests already running against
    // the old session keep it alive through their shared_ptr.
    if (Entry.Session && !InMemory && Entry.Session->externallyModified()) {
      Entry.Session.reset();
      Registry.counter("service.session.reopened").inc();
    }
    if (!Entry.Session) {
      persist::PersistOptions PO;
      PO.Dir = Req.CacheDir;
      PO.Incremental = Incremental;
      PO.BlockFingerprint = Fingerprint;
      PO.Metrics = &Registry;
      PO.InMemory = InMemory;
      Entry.Session = std::make_shared<persist::PersistSession>(std::move(PO));
      Entry.Path = Req.CacheDir;
      // Sessions shared by concurrent requests serialize when they carry
      // state without internal synchronization (the mixy manifest); the
      // per-entry solver/block stores are already thread-safe, so
      // mixcheck sessions stay lock-free.
      if (Config.KeepWarm && Incremental && !Entry.Lock)
        Entry.Lock = std::make_unique<std::mutex>();
    }
    Session = Entry.Session;
    SharedLock = Entry.Lock.get();
  }
  if (SharedLock)
    SessionLock = std::unique_lock<std::mutex>(*SharedLock);
  // The degradation note is per-run, matching a CLI that reopens the
  // directory every time.
  if (!Session->degradedReason().empty())
    Diags.note(SourceLoc(),
               "persistent cache unusable (" + Session->degradedReason() +
                   "); analysis starts cold",
               DiagID::CacheDegraded);
  return Session;
}

bool AnalysisService::save(std::string *Error) {
  std::lock_guard<std::mutex> Lock(M);
  for (auto &[Key, Entry] : Sessions) {
    (void)Key;
    if (!Entry.Session)
      continue;
    if (!Entry.Session->save(Error))
      return false;
  }
  return true;
}

void AnalysisService::fileChanged(const std::string &Path) {
  std::lock_guard<std::mutex> Lock(M);
  Registry.counter("service.file_changed").inc();
  // Drop cached responses computed from that path (content hashing would
  // catch this on the next run anyway; this frees the memory now). The
  // eviction queue must forget the keys too, or a re-cached key is queued
  // twice and its stale front entry later evicts the fresh response.
  std::set<uint64_t> Dropped;
  for (auto It = ResponseCache.begin(); It != ResponseCache.end();) {
    auto P = ResponsePath.find(It->first);
    if (P != ResponsePath.end() && P->second == Path) {
      Dropped.insert(It->first);
      ResponsePath.erase(P);
      It = ResponseCache.erase(It);
    } else {
      ++It;
    }
  }
  if (!Dropped.empty())
    ResponseOrder.erase(
        std::remove_if(ResponseOrder.begin(), ResponseOrder.end(),
                       [&](uint64_t K) { return Dropped.count(K) != 0; }),
        ResponseOrder.end());
  // Warm sessions forget their summaries and manifests; solver verdicts
  // are formula-keyed and survive.
  for (auto &[Key, Entry] : Sessions) {
    (void)Key;
    if (!Entry.Session)
      continue;
    std::unique_lock<std::mutex> SL;
    if (Entry.Lock)
      SL = std::unique_lock<std::mutex>(*Entry.Lock);
    Entry.Session->invalidateSummaries();
  }
}

//===----------------------------------------------------------------------===//
// Execution
//===----------------------------------------------------------------------===//

void AnalysisService::runMixCheck(const AnalysisRequest &Req,
                                  const std::string &Source,
                                  DiagnosticEngine &Diags,
                                  obs::MetricsRegistry &Reg,
                                  obs::RequestTelemetry *T,
                                  AnalysisResponse &Resp) {
  MixOptions Opts;
  Opts.Exec.Strat = Req.Strategy;
  Opts.Exec.Havoc = Req.Havoc;
  Opts.Exec.ExecMode = Req.ExecMode;
  Opts.Exec.PreciseDeref = Req.PreciseDeref;
  if (Req.AssumeComplete)
    Opts.Exhaustive = MixOptions::Exhaustiveness::AssumeComplete;
  Opts.Explore = Req.Explore;
  Opts.Jobs = Req.Jobs;
  Opts.Metrics = &Reg;
  // A traced request with telemetry records into its own sink; the events
  // fold back into the global trace at request end (shared epoch).
  Opts.Trace =
      Req.Trace ? (T && T->sink() ? T->sink() : &Sink) : nullptr;
  Opts.Telemetry = T;
  Opts.Prov = (Req.Explain || Req.OutputFormat == Format::Sarif)
                  ? provenanceSink()
                  : nullptr;
  Opts.Solver = Req.Solver;

  AstContext Ctx;

  // The session (solver verdicts only for this tool) opens before the
  // parse, so a degradation note precedes any parse diagnostics — the
  // byte order the CLI always had.
  std::unique_lock<std::mutex> SessionLock;
  std::shared_ptr<persist::PersistSession> Session = openSession(
      Req, /*Incremental=*/false, /*Fingerprint=*/0, Diags, SessionLock);
  if (Session)
    Opts.Smt.Cache = &Session->solverCache();

  auto finish = [&](int Exit) {
    {
      obs::PhaseTimer Render(T, obs::Phase::Render);
      Resp.Payload = renderPayload(Diags, Req.OutputFormat, Req.Explain,
                                   "mixcheck", Req.InputName);
    }
    fillStructured(Diags, Resp);
    Resp.Warnings = Diags.warningCount();
    Resp.Exit = Exit;
  };

  const Expr *Program;
  {
    obs::PhaseTimer Parse(T, obs::Phase::Parse);
    Program = parseExpression(Source, Ctx, Diags);
  }
  if (!Program)
    return finish(2);

  TypeEnv Gamma;
  for (const auto &[Name, Spec] : Req.Vars) {
    const Type *VarType = parseTypeSpec(Ctx.types(), Spec);
    if (!VarType) {
      Resp.ErrorText = "bad type '" + Spec + "' for variable " + Name;
      return finish(2);
    }
    Gamma[Name] = VarType;
  }

  const Type *ResultType = nullptr;
  {
    obs::PhaseTimer Check(T, obs::Phase::Typecheck);
    if (Req.AutoPlace) {
      AutoPlacementOptions APOpts;
      APOpts.Mix = Opts;
      APOpts.Jobs = Opts.Jobs;
      AutoPlacementResult R =
          autoPlaceSymbolicBlocks(Ctx, Program, Gamma, Diags, APOpts);
      ResultType = R.ResultType;
      Program = R.Program;
      if (R.BlocksInserted)
        Resp.AutoPlaceNote = "auto-placement inserted " +
                             std::to_string(R.BlocksInserted) +
                             " symbolic block(s) in " +
                             std::to_string(R.Refinements) + " refinement(s)\n";
    } else {
      MixChecker Mix(Ctx.types(), Diags, Opts);
      ResultType = Req.Symbolic ? Mix.checkSymbolic(Program, Gamma)
                                : Mix.checkTyped(Program, Gamma);
    }
  }

  if (Req.PrintProgram)
    Resp.PrintedProgram = printExpr(Program) + "\n";

  Resp.Accepted = ResultType != nullptr;
  if (ResultType)
    Resp.ResultType = ResultType->str();
  finish(ResultType ? 0 : 1);
}

void AnalysisService::runMixy(const AnalysisRequest &Req,
                              const std::string &Source,
                              DiagnosticEngine &Diags,
                              obs::MetricsRegistry &Reg,
                              obs::RequestTelemetry *T,
                              AnalysisResponse &Resp) {
  c::MixyOptions Opts;
  Opts.EnableCache = !Req.NoCache;
  Opts.RestoreAliasing = !Req.NoAliasRestore;
  if (Req.WarnDerefs) {
    Opts.Qual.WarnAllDereferences = true;
    Opts.Sym.CheckDereferences = true;
  }
  Opts.Jobs = Req.Jobs;
  Opts.Metrics = &Reg;
  Opts.Trace = Req.Trace ? (T && T->sink() ? T->sink() : &Sink) : nullptr;
  Opts.Telemetry = T;
  Opts.Prov = (Req.Explain || Req.OutputFormat == Format::Sarif)
                  ? provenanceSink()
                  : nullptr;
  // Before the fingerprint: the backend choice and provenance attachment
  // are part of the persisted-summary identity. ExecMode is not (the
  // engines are byte-identical), but the analysis needs it either way.
  Opts.Solver = Req.Solver;
  Opts.ExecMode = Req.ExecMode;

  c::CAstContext Ctx;

  // With a cache directory the request's Incremental flag decides whether
  // block summaries persist (mixyc --incremental); warm in-memory daemon
  // sessions always keep summaries — that is their whole point.
  bool Incremental = Req.CacheDir.empty() ? true : Req.Incremental;
  std::unique_lock<std::mutex> SessionLock;
  std::shared_ptr<persist::PersistSession> Session = openSession(
      Req, Incremental, c::mixyPersistFingerprint(Opts), Diags, SessionLock);
  Opts.Persist = Session.get();

  auto finish = [&](int Exit) {
    {
      obs::PhaseTimer Render(T, obs::Phase::Render);
      Resp.Payload = renderPayload(Diags, Req.OutputFormat, Req.Explain,
                                   "mixyc", Req.InputName);
    }
    fillStructured(Diags, Resp);
    Resp.Exit = Exit;
  };

  const c::CProgram *Program;
  {
    obs::PhaseTimer Parse(T, obs::Phase::Parse);
    Program = c::parseC(Source, Ctx, Diags);
  }
  if (!Program) {
    Resp.Warnings = Diags.warningCount();
    return finish(2);
  }

  unsigned Warnings = 0;
  {
    obs::PhaseTimer Check(T, obs::Phase::Typecheck);
    if (Req.Baseline) {
      // Baseline inference runs outside MixyAnalysis, so the provenance
      // sink is pushed into the qualifier options here.
      Opts.Qual.Prov = Opts.Prov;
      c::QualInference Inference(*Program, Ctx, Diags, Opts.Qual);
      Inference.analyzeAll();
      Inference.solve();
      Warnings = Inference.reportWarnings();
      Reg.counter("qual.variables").add(Inference.graph().numNodes());
      Reg.counter("qual.flow_edges").add(Inference.graph().numEdges());
    } else {
      c::MixyAnalysis Analysis(*Program, Ctx, Diags, Opts);
      Warnings = Analysis.run(Req.StartSymbolic
                                  ? c::MixyAnalysis::StartMode::Symbolic
                                  : c::MixyAnalysis::StartMode::Typed,
                              Req.Entry);
      Resp.SymCacheStats = Analysis.symCacheStats().str();
      Resp.TypedCacheStats = Analysis.typedCacheStats().str();
    }
  }

  Resp.Warnings = Warnings;
  finish(Warnings == 0 ? 0 : 1);
}

AnalysisResponse AnalysisService::execute(const AnalysisRequest &Req,
                                          const std::string &Source) {
  AnalysisResponse Resp;
  Registry.counter("service.requests").inc();

  // Request telemetry: a per-request context the engines see only as a
  // nullable pointer. Span recording is opt-in per request (Trace), with
  // the request sink sharing the global sink's epoch so its events can be
  // folded back with comparable timestamps.
  std::unique_ptr<obs::RequestTelemetry> Telemetry;
  std::chrono::steady_clock::time_point StartTime;
  if (Config.RequestTelemetry) {
    Telemetry = std::make_unique<obs::RequestTelemetry>();
    Telemetry->Id = nextRequestId();
    if (Req.Trace)
      Telemetry->enableSpans(Sink.epoch());
    StartTime = std::chrono::steady_clock::now();
  }

  // Metrics isolation: in daemon mode each request records into a private
  // registry so its deltas are exact under concurrency; the shared
  // persist stores still count into the service registry, so their
  // per-request share is recovered as a snapshot delta (exact when
  // requests are sequential). In CLI mode everything lands in the one
  // registry --stats reads.
  obs::MetricsRegistry Local;
  obs::MetricsRegistry &Reg = Config.PerRequestMetrics ? Local : Registry;
  obs::MetricsSnapshot Before = Registry.snapshot();

  DiagnosticEngine Diags;
  if (Req.ToolKind == Tool::MixCheck)
    runMixCheck(Req, Source, Diags, Reg, Telemetry.get(), Resp);
  else
    runMixy(Req, Source, Diags, Reg, Telemetry.get(), Resp);

  if (Config.PerRequestMetrics) {
    for (const auto &[Name, Value] : Local.counters())
      if (Value)
        Resp.Metrics.emplace_back(Name, Value);
    for (auto &[Name, Delta] : Registry.deltaSince(Before))
      if (Name.rfind("persist.", 0) == 0)
        Resp.Metrics.emplace_back(Name, Delta);
    std::sort(Resp.Metrics.begin(), Resp.Metrics.end());
  } else {
    Resp.Metrics = Registry.deltaSince(Before);
  }

  if (Telemetry) {
    Resp.RequestId = Telemetry->Id;
    Resp.TotalUs =
        (uint64_t)std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - StartTime)
            .count();
    for (unsigned I = 0; I != obs::NumPhases; ++I)
      Resp.PhaseUs[I] = Telemetry->phaseUs((obs::Phase)I);
    // One sample per request into the global histograms — exact even
    // under concurrency (the request total is accumulated privately and
    // recorded once, at this barrier).
    Registry.histogram("service.request.us").record(Resp.TotalUs);
    for (unsigned I = 0; I != obs::NumPhases; ++I)
      if (Resp.PhaseUs[I])
        Registry
            .histogram(std::string("phase.") +
                       obs::phaseName((obs::Phase)I) + ".us")
            .record(Resp.PhaseUs[I]);
    if (obs::TraceSink *RS = Telemetry->sink()) {
      Resp.Spans = RS->snapshotEvents();
      Sink.import(Resp.Spans);
    }
    noteSlowRequest(Resp, requestKey(Req, Source));
  }
  return Resp;
}

void AnalysisService::noteSlowRequest(const AnalysisResponse &Resp,
                                      uint64_t Key) {
  if (Config.SlowLogCap == 0)
    return;
  SlowRequest S;
  S.Id = Resp.RequestId;
  S.Key = Key;
  S.TotalUs = Resp.TotalUs;
  S.PhaseUs = Resp.PhaseUs;
  S.Exit = Resp.Exit;
  S.Warnings = Resp.Warnings;
  S.Errors = Resp.Errors;
  std::lock_guard<std::mutex> Lock(M);
  // Keep the log sorted slowest-first; the fastest entry falls off when
  // the cap is hit.
  auto It = std::upper_bound(SlowLog.begin(), SlowLog.end(), S.TotalUs,
                             [](uint64_t V, const SlowRequest &E) {
                               return V > E.TotalUs;
                             });
  SlowLog.insert(It, std::move(S));
  if (SlowLog.size() > Config.SlowLogCap)
    SlowLog.pop_back();
}

std::vector<SlowRequest> AnalysisService::slowRequests() const {
  std::lock_guard<std::mutex> Lock(const_cast<std::mutex &>(M));
  return SlowLog;
}

AnalysisResponse AnalysisService::run(const AnalysisRequest &Req) {
  AnalysisResponse Resp;
  std::string Source, Error;
  if (!resolveInput(Req, Source, Error)) {
    Resp.Exit = 2;
    Resp.ErrorText = Error;
    return Resp;
  }
  return execute(Req, Source);
}

AnalysisResponse AnalysisService::serve(const AnalysisRequest &Req) {
  AnalysisResponse Resp;
  std::string Source, Error;
  if (!resolveInput(Req, Source, Error)) {
    Resp.Exit = 2;
    Resp.ErrorText = Error;
    return Resp;
  }
  uint64_t Key = requestKey(Req, Source);

  std::shared_ptr<Pending> Mine, Theirs;
  {
    std::lock_guard<std::mutex> Lock(M);
    auto Hit = ResponseCache.find(Key);
    if (Hit != ResponseCache.end()) {
      Registry.counter("service.cache.hits").inc();
      AnalysisResponse R = Hit->second;
      R.FromCache = true;
      // A cache hit did no engine work; its deltas and phase breakdown
      // say exactly that. It is still its own request, so it gets a
      // fresh id.
      R.Metrics.clear();
      R.TotalUs = 0;
      R.PhaseUs = {};
      R.Spans.clear();
      R.RequestId = Config.RequestTelemetry ? nextRequestId() : std::string();
      return R;
    }
    auto In = InFlight.find(Key);
    if (In != InFlight.end()) {
      Theirs = In->second;
    } else {
      Mine = std::make_shared<Pending>();
      InFlight.emplace(Key, Mine);
    }
  }

  if (Theirs) {
    // An identical request is already running: ride it instead of doing
    // the same work twice.
    Registry.counter("service.dedup.hits").inc();
    std::unique_lock<std::mutex> Lock(Theirs->M);
    Theirs->CV.wait(Lock, [&] { return Theirs->Done; });
    AnalysisResponse R = Theirs->Response;
    R.Deduped = true;
    R.Metrics.clear();
    R.TotalUs = 0;
    R.PhaseUs = {};
    R.Spans.clear();
    R.RequestId = Config.RequestTelemetry ? nextRequestId() : std::string();
    return R;
  }

  Resp = execute(Req, Source);

  {
    std::lock_guard<std::mutex> Lock(M);
    InFlight.erase(Key);
    // Only successful analyses are worth memoizing; usage errors are
    // cheap to reproduce and should not occupy cache slots.
    if (Config.ResponseCacheCap && Resp.Exit != 2) {
      while (ResponseOrder.size() >= Config.ResponseCacheCap) {
        uint64_t Evict = ResponseOrder.front();
        ResponseOrder.pop_front();
        ResponseCache.erase(Evict);
        ResponsePath.erase(Evict);
      }
      // emplace and the order queue must stay in lockstep: a key that is
      // somehow already cached must not be queued a second time. The
      // cached copy drops its span tree — hits never serve spans, so
      // there is no reason to hold them.
      auto Cached = ResponseCache.emplace(Key, Resp);
      if (Cached.second) {
        Cached.first->second.Spans.clear();
        ResponseOrder.push_back(Key);
      }
      if (!Req.HasSource && Req.Corpus.empty() && !Req.Path.empty())
        ResponsePath.emplace(Key, Req.Path);
    }
  }
  {
    std::lock_guard<std::mutex> Lock(Mine->M);
    Mine->Response = Resp;
    Mine->Done = true;
  }
  Mine->CV.notify_all();
  return Resp;
}
