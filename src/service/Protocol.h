//===--- Protocol.h - Wire codec for the analysis service -------*- C++ -*-===//
//
// Part of the Mix reproduction of "Mixing Type Checking and Symbolic
// Execution" (PLDI 2010).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned JSON wire form of AnalysisRequest/AnalysisResponse, plus
/// the JSON-RPC 2.0 envelope helpers mixyd frames them in. One line per
/// message (newline-delimited JSON): encoders never emit '\n' inside a
/// document, so framing is exactly "split on newline".
///
/// Requests decode strictly: an unsupported "version" and any unknown
/// field are errors, so a client typo ("formt") fails loudly instead of
/// silently running with defaults — the wire analogue of the CLI's
/// unknown-option exit 2. Optional fields encode only when they differ
/// from their defaults, which keeps the golden protocol files readable.
///
//===----------------------------------------------------------------------===//

#ifndef MIX_SERVICE_PROTOCOL_H
#define MIX_SERVICE_PROTOCOL_H

#include "service/AnalysisService.h"
#include "support/Json.h"

#include <string>

namespace mix::service {

/// JSON-RPC 2.0 error codes mixyd responds with. The -327xx ones are the
/// spec's; the -320xx ones are this server's (spec-reserved range).
enum RpcErrorCode : int {
  RpcParseError = -32700,     ///< line was not valid JSON
  RpcInvalidRequest = -32600, ///< not a valid jsonrpc-2.0 request object
  RpcMethodNotFound = -32601, ///< unknown "method"
  RpcInvalidParams = -32602,  ///< params failed decodeRequest
  RpcDeadlineExceeded = -32000, ///< request ran past --deadline-ms
  RpcServerBusy = -32001,       ///< admission control: max in-flight reached
};

/// Encodes \p Req as one line of JSON (no trailing newline). Fields at
/// their default value are omitted; "version" and "tool" always appear.
std::string encodeRequest(const AnalysisRequest &Req);

/// Decodes a request object (already-parsed JSON). Returns false with
/// \p Error set on a version mismatch, a missing/bad "tool", any unknown
/// field, or a type mismatch.
bool decodeRequest(const json::Value &V, AnalysisRequest &Out,
                   std::string &Error);

/// Convenience: parse + decode one request line.
bool decodeRequest(const std::string &Text, AnalysisRequest &Out,
                   std::string &Error);

/// Encodes \p Resp as one line of JSON (no trailing newline). Same
/// omission rule; "version" and "exit" always appear.
std::string encodeResponse(const AnalysisResponse &Resp);

/// Decodes a response object. Strict like decodeRequest.
bool decodeResponse(const json::Value &V, AnalysisResponse &Out,
                    std::string &Error);
bool decodeResponse(const std::string &Text, AnalysisResponse &Out,
                    std::string &Error);

/// Re-encodes a JSON-RPC "id" member (number, string, or null — anything
/// else encodes as null, which is also what an absent id yields).
std::string encodeRpcId(const json::Value &Id);

/// {"jsonrpc": "2.0", "id": <Id>, "result": <ResultJson>} — \p Id and
/// \p ResultJson are already-encoded JSON fragments.
std::string rpcResult(const std::string &Id, const std::string &ResultJson);

/// {"jsonrpc": "2.0", "id": <Id>, "error": {"code": ..., "message": ...}}
std::string rpcError(const std::string &Id, int Code,
                     const std::string &Message);

/// {"jsonrpc": "2.0", "method": <Method>, "params": <ParamsJson>} — how
/// mixyd streams per-diagnostic notifications.
std::string rpcNotification(const std::string &Method,
                            const std::string &ParamsJson);

} // namespace mix::service

#endif // MIX_SERVICE_PROTOCOL_H
